//! Offline stub of `serde_derive`.
//!
//! The build container has no access to crates.io, so this crate provides
//! no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros: they
//! accept the same syntax (including `#[serde(...)]` helper attributes) and
//! expand to nothing.  The matching trait impls come from blanket impls in
//! the sibling `serde` stub, so generic bounds like `T: Serialize` still
//! hold.  Replace both stubs with the real crates once a registry is
//! reachable — no source changes are required.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
