//! Offline stub of the `rand` crate (the subset of the 0.9 API this
//! workspace uses).
//!
//! The workspace only needs seeded, reproducible pseudo-randomness for
//! workload generation and tests — never cryptographic strength — so this
//! stub backs [`rngs::StdRng`] with SplitMix64, a well-tested 64-bit mixer
//! with full period over its state.  The surface mirrors rand 0.9:
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over integer and
//! float ranges (half-open and inclusive).
//!
//! Determinism is part of the contract: the same seed yields the same
//! sequence on every platform, which the experiment drivers rely on for
//! reproducible tables.

/// Low-level source of 64-bit randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64` (mirror of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Mirrors `rand 0.9`'s `Rng::random_range`: accepts `a..b` and `a..=b`
    /// for the integer and float types used in this workspace.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a uniform value of type `T` over its natural unit domain
    /// (`[0, 1)` for floats, the full domain for integers and `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over a natural default domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// A range that can produce a single uniform sample (mirror of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                // The closed upper endpoint has measure zero; sampling the
                // half-open interval is indistinguishable in practice.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_float_range!(f64, f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stub's `SmallRng` is the same SplitMix64 generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.random_range(1..=6usize);
            assert!((1..=6).contains(&v));
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces of a d6 appear");
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&v));
        }
    }
}
