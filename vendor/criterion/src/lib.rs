//! Offline stub of `criterion` — enough of the API to compile and run this
//! workspace's benches without crates.io access.
//!
//! Each benchmark is timed with `std::time::Instant`: a short warm-up, then
//! batches of iterations until a time budget is spent, reporting the best
//! (minimum) per-iteration time, which is the most noise-robust point
//! statistic for comparing implementations.  There are no statistical
//! analyses, plots or baselines; output is one line per benchmark on stdout:
//!
//! ```text
//! bench group/id ... 1234.5 ns/iter (n iters)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_bench_id(), &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, &mut f);
        self
    }

    /// Benchmarks `f(bencher, input)` under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (stub of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Conversion of the various id forms criterion accepts into a display
/// string.
pub trait IntoBenchId {
    /// The display form of the id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

/// Times closures handed to it by a benchmark function (stub of
/// `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    best_ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records its best per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        // Batches of geometrically growing size until the budget is spent;
        // the best batch mean filters out scheduler noise.
        let budget = Duration::from_millis(
            std::env::var("CRITERION_STUB_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(120),
        );
        let started = Instant::now();
        let mut batch = 1u64;
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        while started.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(per_iter);
            total_iters += batch;
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
        self.best_ns_per_iter = best;
        self.iters = total_iters;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let ns = bencher.best_ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench {name} ... {human}/iter ({} iters)", bencher.iters);
}

/// Builds a function running a list of benchmark functions (stub of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Builds `main` from one or more groups (stub of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(100).to_string(), "100");
        assert_eq!(BenchmarkId::new("build", 7).to_string(), "build/7");
    }

    #[test]
    fn bencher_records_time() {
        std::env::set_var("CRITERION_STUB_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        std::env::remove_var("CRITERION_STUB_MS");
    }
}
