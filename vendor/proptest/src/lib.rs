//! Offline stub of `proptest` — the subset of the API this workspace's
//! property tests use, reimplemented over a deterministic SplitMix64
//! generator so that no crates.io access is required.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * strategies: half-open and inclusive numeric ranges, tuples of
//!   strategies (arity ≤ 4), and [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case index, and cases are derived deterministically from the test's
//! module path, so a failure reproduces exactly on re-run.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type (stub of `proptest`'s
    /// `Strategy`; generation only, no shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_strategy!(f64, f32);

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy producing a constant value (stub of `proptest`'s `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element` (stub of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + (rng.next_u64() as u128 % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner plumbing used by [`crate::proptest!`].

    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Per-test configuration (stub of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Like real proptest, the PROPTEST_CASES environment variable
            // overrides the per-test case count — CI pins it so property
            // suites run under a fixed, deterministic budget.  Without it,
            // real proptest defaults to 256; 64 keeps the offline suite fast
            // while still exercising degenerate geometry with good odds.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 generator seeded from the test name and case index, so
    /// every run of a property test replays the identical case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            case.hash(&mut hasher);
            TestRng {
                state: hasher.finish(),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests (stub of `proptest::proptest!`).
///
/// Supports the form used throughout this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "property `{}` failed at deterministic case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            // No shrinking/rejection bookkeeping in the stub: an assumed-out
            // case simply counts as a (vacuous) pass.
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec((0.0..1.0f64, 0.0..1.0f64), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (a, b) in v {
                prop_assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
