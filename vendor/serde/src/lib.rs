//! Offline stub of `serde`.
//!
//! The workspace's sources derive `Serialize`/`Deserialize` on their data
//! types so that experiment records can be exported once the real serde is
//! available, but nothing in-tree performs actual serialization.  This stub
//! keeps those derives compiling without network access:
//!
//! * the derive macros (re-exported from the `serde_derive` stub) expand to
//!   nothing, and
//! * the `Serialize`/`Deserialize` traits carry blanket impls so that any
//!   generic `T: Serialize` bound is satisfied.
//!
//! Swap this path dependency for the real crates.io `serde` to restore real
//! serialization; no source changes are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
