//! `parallel_map` overhead: the order-preserving scoped-thread map under
//! every batch pipeline, portfolio fan-out and verification sweep.
//!
//! The cheap-item group is the stress case for per-item overhead — results
//! used to be written through one `Mutex<Option<R>>` per item, which put a
//! lock acquisition on every result; they now land in disjoint chunk-claimed
//! slots of the output vector's spare capacity (one claim per chunk).  The
//! heavy group checks that coarse items still scale.

use antennae_core::parallel::{default_threads, parallel_map};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cheap_items(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_map/cheap");
    for &n in &[4096usize, 16384] {
        let items: Vec<u64> = (0..n as u64).collect();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let out = parallel_map(black_box(&items), default_threads(), |&x| {
                    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
                });
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_cheap_items_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_map/cheap_sequential");
    for &n in &[4096usize, 16384] {
        let items: Vec<u64> = (0..n as u64).collect();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let out = parallel_map(black_box(&items), 1, |&x| {
                    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
                });
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_heavy_items(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_map/heavy");
    for &n in &[64usize, 256] {
        let items: Vec<u64> = (0..n as u64).collect();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let out = parallel_map(black_box(&items), default_threads(), |&x| {
                    // ~10 µs of arithmetic per item.
                    let mut acc = x;
                    for i in 0..10_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    acc
                });
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cheap_items,
    bench_cheap_items_sequential,
    bench_heavy_items
);
criterion_main!(benches);
