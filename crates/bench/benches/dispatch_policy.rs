//! Selection-policy cost: `BestGuarantee` (one construction per solve)
//! vs. `Portfolio` (every applicable construction per solve, fanned out over
//! the worker pool).
//!
//! The portfolio's price is the extra candidate runs; its payoff is the
//! smallest *measured* radius (never worse than the dispatcher's pick, see
//! `examples/portfolio.rs`).  Both variants solve against a prebuilt
//! instance, so the MST substrate is out of the measurement and the gap is
//! pure policy overhead.

use antennae_bench::workloads::uniform_instance;
use antennae_core::parallel::default_threads;
use antennae_core::solver::{SelectionPolicy, Solver};
use antennae_geometry::PI;
use antennae_graph::RootedTree;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[500, 2000];

/// The representative budgets each policy solves per iteration: the paper's
/// headline two-antenna regime and a zero-spread chains regime (three
/// portfolio candidates each).
const BUDGETS: &[(usize, f64)] = &[(2, PI), (3, 0.0)];

fn bench_best_guarantee(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/best_guarantee");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::BestGuarantee)
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/portfolio");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::Portfolio)
                            .threads(default_threads())
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

fn bench_portfolio_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/portfolio_sequential");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::Portfolio)
                            .threads(1)
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

/// The rooted-tree cache win (PR 4): `hamiltonian`, `chains` and `theorem3`
/// each walk `Instance::rooted_tree()`, so a Portfolio solve used to re-root
/// and re-sort the identical tree once per candidate.  `rebuild` is the old
/// per-orient cost, `cached` the steady-state cost after the `OnceLock`
/// landed; the policy benches above measure the end-to-end effect (their
/// sequential-portfolio numbers are the ones the ARCHITECTURE.md table
/// records as before/after).
fn bench_rooted_tree_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/rooted_tree");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::new("rebuild", n), &instance, |b, inst| {
            b.iter(|| RootedTree::from_mst(black_box(inst).mst()))
        });
        instance.rooted_tree(); // prime the cache
        group.bench_with_input(BenchmarkId::new("cached", n), &instance, |b, inst| {
            b.iter(|| black_box(inst).rooted_tree().root())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_guarantee,
    bench_portfolio,
    bench_portfolio_sequential,
    bench_rooted_tree_cache
);
criterion_main!(benches);
