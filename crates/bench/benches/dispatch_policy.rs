//! Selection-policy cost: `BestGuarantee` (one construction per solve)
//! vs. `Portfolio` (every applicable construction per solve, fanned out over
//! the worker pool).
//!
//! The portfolio's price is the extra candidate runs; its payoff is the
//! smallest *measured* radius (never worse than the dispatcher's pick, see
//! `examples/portfolio.rs`).  Both variants solve against a prebuilt
//! instance, so the MST substrate is out of the measurement and the gap is
//! pure policy overhead.

use antennae_bench::workloads::uniform_instance;
use antennae_core::parallel::default_threads;
use antennae_core::solver::{SelectionPolicy, Solver};
use antennae_geometry::PI;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[500, 2000];

/// The representative budgets each policy solves per iteration: the paper's
/// headline two-antenna regime and a zero-spread chains regime (three
/// portfolio candidates each).
const BUDGETS: &[(usize, f64)] = &[(2, PI), (3, 0.0)];

fn bench_best_guarantee(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/best_guarantee");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::BestGuarantee)
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/portfolio");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::Portfolio)
                            .threads(default_threads())
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

fn bench_portfolio_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_policy/portfolio_sequential");
    for &n in SIZES {
        let instance = uniform_instance(n, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                BUDGETS
                    .iter()
                    .map(|&(k, phi)| {
                        Solver::on(black_box(inst))
                            .budget(k, phi)
                            .policy(SelectionPolicy::Portfolio)
                            .threads(1)
                            .run()
                            .unwrap()
                            .measured_radius_over_lmax
                    })
                    .fold(0.0, f64::max)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_best_guarantee,
    bench_portfolio,
    bench_portfolio_sequential
);
criterion_main!(benches);
