//! Batch orientation pipeline vs the naive per-budget loop.
//!
//! The naive sweep rebuilds the instance — and with it the Euclidean MST —
//! for every `(k, φ_k)` budget of the grid; `BatchOrienter` builds it once
//! and dispatches all budgets against the shared substrate, optionally in
//! parallel.  The gap between `naive_rebuild` and `batch_shared_mst` is the
//! amortised MST cost; `batch_parallel` adds thread-level speedup on top.

use antennae_bench::workloads::uniform_instance;
use antennae_core::antenna::AntennaBudget;
use antennae_core::batch::BatchOrienter;
use antennae_core::instance::Instance;
use antennae_core::parallel::default_threads;
use antennae_geometry::TAU;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[200, 800, 2000];

/// The 20-budget grid every variant sweeps: k = 1..=5 × 4 spread levels.
fn budget_grid() -> Vec<AntennaBudget> {
    let mut budgets = Vec::new();
    for k in 1..=5 {
        for step in 0..4 {
            budgets.push(AntennaBudget::new(k, TAU * step as f64 / 4.0));
        }
    }
    budgets
}

fn bench_naive_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_orient/naive_rebuild");
    let budgets = budget_grid();
    for &n in SIZES {
        let points = uniform_instance(n, 7).points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| {
                budgets
                    .iter()
                    .map(|budget| {
                        // The rebuild a caller without the batch pipeline pays.
                        let instance = Instance::new(black_box(pts.clone())).unwrap();
                        antennae_core::solver::Solver::on(&instance)
                            .with_budget(*budget)
                            .run()
                            .unwrap()
                    })
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_batch_shared_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_orient/batch_shared_mst");
    let budgets = budget_grid();
    for &n in SIZES {
        let points = uniform_instance(n, 7).points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| {
                let batch = BatchOrienter::new(black_box(pts.clone()))
                    .unwrap()
                    .with_threads(1);
                batch.orient_budgets(&budgets).len()
            })
        });
    }
    group.finish();
}

fn bench_batch_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_orient/batch_parallel");
    let budgets = budget_grid();
    for &n in SIZES {
        let points = uniform_instance(n, 7).points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| {
                let batch = BatchOrienter::new(black_box(pts.clone()))
                    .unwrap()
                    .with_threads(default_threads());
                batch.orient_budgets(&budgets).len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_naive_rebuild,
    bench_batch_shared_mst,
    bench_batch_parallel
);
criterion_main!(benches);
