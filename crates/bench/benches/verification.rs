//! Benchmarks of the verification pipeline: induced-digraph construction and
//! strong-connectivity checking.

use antennae_bench::workloads::uniform_instance;
use antennae_core::solver::Solver;
use antennae_core::antenna::AntennaBudget;
use antennae_core::verify::verify;
use antennae_graph::scc::{kosaraju_scc, tarjan_scc};
use antennae_geometry::PI;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_scheme");
    for &n in &[100usize, 500, 1000] {
        let instance = uniform_instance(n, 3);
        let scheme = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .unwrap()
        .scheme;
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(instance, scheme),
            |b, (inst, sch)| b.iter(|| verify(black_box(inst), black_box(sch))),
        );
    }
    group.finish();
}

fn bench_scc_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_on_induced_digraph");
    let instance = uniform_instance(1000, 3);
    let scheme = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .unwrap()
        .scheme;
    let digraph = scheme.induced_digraph(instance.points());
    group.bench_function("tarjan", |b| b.iter(|| tarjan_scc(black_box(&digraph))));
    group.bench_function("kosaraju", |b| b.iter(|| kosaraju_scc(black_box(&digraph))));
    group.finish();
}

criterion_group!(benches, bench_verify, bench_scc_algorithms);
criterion_main!(benches);
