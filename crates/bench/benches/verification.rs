//! Benchmarks of the verification pipeline: dense vs kd-tree induced-digraph
//! construction, session reuse, batch fan-out, and the SCC back end.
//!
//! `verify_scheme/{dense,kdtree}/n` is the crossover experiment recorded in
//! `docs/ARCHITECTURE.md` (§ Verification engine); `verify_batch` measures
//! the parallel many-schemes path against a sequential loop.

use antennae_bench::workloads::uniform_instance;
use antennae_core::antenna::AntennaBudget;
use antennae_core::scheme::OrientationScheme;
use antennae_core::solver::{SelectionPolicy, Solver};
use antennae_core::verify::{DigraphStrategy, VerificationEngine};
use antennae_geometry::PI;
use antennae_graph::scc::{kosaraju_scc, tarjan_scc};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The solver scheme the verifier sees in production runs.
fn scheme_for(instance: &antennae_core::instance::Instance) -> OrientationScheme {
    Solver::on(instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .unwrap()
        .scheme
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_scheme");
    let mut sizes = vec![32usize, 100, 250, 1000, 4000, 100_000];
    if std::env::var("ANTENNAE_BENCH_FULL").is_ok_and(|v| v == "1") {
        // Million-sensor verification: a minutes-long single-iteration run,
        // opted into explicitly (see mst_scaling's full-mode note).
        sizes.push(1_000_000);
    }
    for &n in &sizes {
        let instance = uniform_instance(n, 3);
        let scheme = scheme_for(&instance);
        for (label, strategy) in [
            ("dense", DigraphStrategy::Dense),
            ("kdtree", DigraphStrategy::KdTree),
        ] {
            // The dense path is Θ(n²·k): past the crossover study's sizes it
            // only burns time, so the large configurations are kd-only.
            if strategy == DigraphStrategy::Dense && n > 4000 {
                continue;
            }
            let engine = VerificationEngine::new().with_strategy(strategy);
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(&instance, &scheme),
                |b, (inst, sch)| b.iter(|| engine.verify(black_box(inst), black_box(sch))),
            );
        }
        // Session: the kd-tree is prebuilt once and amortised — the
        // per-scheme marginal cost the Portfolio/batch paths pay.
        let session = VerificationEngine::new()
            .with_strategy(DigraphStrategy::KdTree)
            .session(&instance);
        group.bench_with_input(BenchmarkId::new("session", n), &scheme, |b, sch| {
            b.iter(|| session.verify(black_box(sch)))
        });
    }
    group.finish();
}

fn bench_verify_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_batch");
    let instance = uniform_instance(2000, 3);
    // The Portfolio case: every applicable k=2 construction's scheme for one
    // instance.
    let portfolio = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .policy(SelectionPolicy::Portfolio)
        .run()
        .unwrap();
    let schemes: Vec<&OrientationScheme> = portfolio
        .candidates
        .iter()
        .map(|c| c.scheme.as_ref().unwrap())
        .collect();
    let session_seq = VerificationEngine::new().with_threads(1).session(&instance);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|s| session_seq.verify(black_box(s)))
                .collect::<Vec<_>>()
        })
    });
    let session_par = VerificationEngine::new().session(&instance);
    group.bench_function("parallel", |b| {
        b.iter(|| session_par.verify_schemes(black_box(&schemes), None))
    });
    group.finish();
}

fn bench_portfolio_end_to_end(c: &mut Criterion) {
    // The PR 2 pain point: a Portfolio solve at n = 2000 with verification
    // of every candidate, dense vs engine-backed.
    let mut group = c.benchmark_group("portfolio_verified");
    let instance = uniform_instance(2000, 3);
    for (label, strategy) in [
        ("dense", DigraphStrategy::Dense),
        ("auto", DigraphStrategy::Auto),
    ] {
        let engine = VerificationEngine::new().with_strategy(strategy);
        group.bench_function(label, |b| {
            b.iter(|| {
                Solver::on(black_box(&instance))
                    .with_budget(AntennaBudget::new(2, PI))
                    .policy(SelectionPolicy::Portfolio)
                    .engine(engine)
                    .run_verified()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scc_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_on_induced_digraph");
    let instance = uniform_instance(1000, 3);
    let scheme = scheme_for(&instance);
    let digraph = VerificationEngine::new().induced_digraph(instance.points(), &scheme);
    group.bench_function("tarjan", |b| b.iter(|| tarjan_scc(black_box(&digraph))));
    group.bench_function("kosaraju", |b| b.iter(|| kosaraju_scc(black_box(&digraph))));
    group.finish();
}

criterion_group!(
    benches,
    bench_verify,
    bench_verify_batch,
    bench_portfolio_end_to_end,
    bench_scc_algorithms
);
criterion_main!(benches);
