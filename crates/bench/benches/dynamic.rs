//! Dynamic-instance headline: orient+verify after **one edit** through a
//! [`DynamicSolverSession`] vs the full from-scratch pipeline
//! (`Instance::new` → solve → verify) on the same deployment.
//!
//! The dynamic path repairs the MST around the edit, re-orients only the
//! sensors whose tree neighborhood changed (Theorem 2 regime) and recomputes
//! only the digraph rows an edited location can affect; the rebuild path
//! pays the kd-tree build, the full Borůvka run, a full orientation and a
//! from-scratch verification every time.  `BENCH_5.json` records both sides;
//! the acceptance bar is dynamic ≥ 5× ahead at n = 2000.

use antennae_bench::workloads::uniform_points;
use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::verify_with_budget;
use antennae_geometry::Point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[500, 2000];

fn theorem2_budget() -> AntennaBudget {
    AntennaBudget::new(2, theorem2_spread_threshold(2))
}

fn session_for(n: usize) -> DynamicSolverSession {
    let inst = DynamicInstance::new(&uniform_points(n, 11)).expect("non-empty");
    DynamicSolverSession::new(inst, theorem2_budget()).expect("valid budget")
}

/// One `Move` edit per iteration: a mid-deployment sensor oscillates between
/// two nearby positions, so the deployment stays statistically identical
/// across iterations while every edit does real MST + digraph repair work.
fn bench_dynamic_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/edit_orient_verify");
    for &n in SIZES {
        let mut session = session_for(n);
        let id = n / 2;
        let home = session.instance().point(id).expect("live id");
        let away = Point::new(home.x + 0.4, home.y + 0.3);
        let mut at_home = true;
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let target = if at_home { away } else { home };
                at_home = !at_home;
                let outcome = session.apply(Edit::Move(id, target)).expect("live id");
                black_box(outcome.report.is_strongly_connected)
            })
        });
    }
    group.finish();
}

/// Insert + remove per iteration (two edits): the arrival/failure churn mix.
fn bench_dynamic_arrival_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/insert_remove_orient_verify");
    for &n in SIZES {
        let mut session = session_for(n);
        let spot = Point::new(3.7, 4.1);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let arrived = session.apply(Edit::Insert(spot)).expect("insert");
                let gone = session.apply(Edit::Remove(arrived.id)).expect("live id");
                black_box(gone.report.is_strongly_connected)
            })
        });
    }
    group.finish();
}

/// The baseline the headline compares against: full re-solve + re-verify of
/// the identical deployment from scratch.
fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/rebuild_orient_verify");
    for &n in SIZES {
        let points = uniform_points(n, 11);
        let budget = theorem2_budget();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let instance = Instance::new(black_box(points.clone())).expect("non-empty");
                let outcome = Solver::on(&instance)
                    .with_budget(budget)
                    .run()
                    .expect("valid budget");
                let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
                black_box(report.is_strongly_connected)
            })
        });
    }
    group.finish();
}

/// The fallback regime: a zero-spread chains budget re-solves in full per
/// edit, but still reuses the incrementally maintained MST substrate and
/// spatial index — the cached-substrate win in isolation.
fn bench_dynamic_fullsolve_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/edit_fullsolve");
    for &n in SIZES {
        let inst = DynamicInstance::new(&uniform_points(n, 11)).expect("non-empty");
        let mut session =
            DynamicSolverSession::new(inst, AntennaBudget::new(3, 0.0)).expect("valid budget");
        let id = n / 2;
        let home = session.instance().point(id).expect("live id");
        let away = Point::new(home.x + 0.4, home.y + 0.3);
        let mut at_home = true;
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let target = if at_home { away } else { home };
                at_home = !at_home;
                let outcome = session.apply(Edit::Move(id, target)).expect("live id");
                black_box(outcome.report.is_strongly_connected)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dynamic_edit,
    bench_dynamic_arrival_failure,
    bench_rebuild,
    bench_dynamic_fullsolve_edit
);
criterion_main!(benches);
