//! Benchmarks of the Euclidean MST substrate: dense Prim with the degree-5
//! repair pass, against a Kruskal-on-complete-graph reference (ablation of
//! the dedicated builder).

use antennae_bench::workloads::uniform_instance;
use antennae_graph::euclidean::EuclideanMst;
use antennae_graph::graph::Graph;
use antennae_graph::mst::kruskal_mst;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_euclidean_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean_mst_build");
    for &n in &[100usize, 500, 1000, 2000] {
        let instance = uniform_instance(n, 42);
        let points = instance.points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| EuclideanMst::build(black_box(pts)).unwrap())
        });
    }
    group.finish();
}

fn bench_mst_reference_kruskal(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst_reference_kruskal_complete");
    for &n in &[100usize, 300] {
        let instance = uniform_instance(n, 42);
        let points = instance.points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| {
                let g = Graph::complete(pts.len(), |u, v| pts[u].distance(&pts[v]));
                kruskal_mst(black_box(&g))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_euclidean_mst, bench_mst_reference_kruskal);
criterion_main!(benches);
