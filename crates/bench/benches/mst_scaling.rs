//! Scaling ablation of the two Euclidean MST engines: O(n²) dense Prim vs
//! the kd-tree Borůvka engine, on identical point sets.
//!
//! The interesting output is the crossover: dense Prim wins at small `n` (no
//! spatial index to build), the kd-tree engine wins from well below n = 2000
//! and the gap widens roughly linearly in `n` afterwards.  `Auto` should
//! track the better of the two at every size.

use antennae_bench::workloads::uniform_instance;
use antennae_graph::euclidean::{EuclideanMst, MstEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[125, 250, 500, 1000, 2000, 4000, 8000];

fn bench_engine(c: &mut Criterion, group_name: &str, engine: MstEngine) {
    let mut group = c.benchmark_group(group_name);
    for &n in SIZES {
        // Skip quadratic runs past the point where they only burn time.
        if engine == MstEngine::DensePrim && n > 4000 {
            continue;
        }
        let instance = uniform_instance(n, 42);
        let points = instance.points().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| EuclideanMst::build_with_engine(black_box(pts), engine).unwrap())
        });
    }
    group.finish();
}

fn bench_dense_prim(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/dense_prim", MstEngine::DensePrim);
}

fn bench_kdtree_boruvka(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/kdtree_boruvka", MstEngine::KdTreeBoruvka);
}

fn bench_auto(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/auto", MstEngine::Auto);
}

criterion_group!(benches, bench_dense_prim, bench_kdtree_boruvka, bench_auto);
criterion_main!(benches);
