//! Scaling ablation of the two Euclidean MST engines: O(n²) dense Prim vs
//! the kd-tree Borůvka engine, on identical point sets — plus the
//! million-sensor build pipeline.
//!
//! The interesting outputs:
//!
//! * the engine crossover — dense Prim wins at small `n` (no spatial index
//!   to build), the kd-tree engine wins from well below n = 2000 and the gap
//!   widens roughly linearly in `n` afterwards; `Auto` should track the
//!   better of the two at every size;
//! * `mst_scaling/kd_threads/*` — the same kd-tree build at 1 worker vs the
//!   session default, isolating the parallel fan-out term (on the 1-core CI
//!   container the two coincide; on real multi-core hardware the gap is the
//!   point of the ablation);
//! * `build_pipeline/solve_verify/*` — the full Instance → orient → verify
//!   pipeline at n = 10⁵, the PR-8 headline workload.
//!
//! Setting `ANTENNAE_BENCH_FULL=1` adds the n = 10⁶ configurations (a
//! million-sensor engine build and full pipeline); they are minutes-long
//! single-iteration runs and excluded from the default smoke pass.

use antennae_bench::workloads::uniform_points;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::VerificationEngine;
use antennae_graph::euclidean::{EuclideanMst, MstEngine};
use antennae_parallel::default_threads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[125, 250, 500, 1000, 2000, 4000, 8000, 100_000];

/// Returns `true` when the minutes-long n = 10⁶ configurations were opted
/// into via `ANTENNAE_BENCH_FULL=1`.
fn full_mode() -> bool {
    std::env::var("ANTENNAE_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_engine(c: &mut Criterion, group_name: &str, engine: MstEngine) {
    let mut group = c.benchmark_group(group_name);
    let mut sizes: Vec<usize> = SIZES.to_vec();
    if full_mode() {
        sizes.push(1_000_000);
    }
    for &n in &sizes {
        // Skip quadratic runs past the point where they only burn time.
        if engine == MstEngine::DensePrim && n > 4000 {
            continue;
        }
        let points = uniform_points(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| EuclideanMst::build_with_engine(black_box(pts), engine).unwrap())
        });
    }
    group.finish();
}

fn bench_dense_prim(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/dense_prim", MstEngine::DensePrim);
}

fn bench_kdtree_boruvka(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/kdtree_boruvka", MstEngine::KdTreeBoruvka);
}

fn bench_auto(c: &mut Criterion) {
    bench_engine(c, "mst_scaling/auto", MstEngine::Auto);
}

/// Thread ablation of the kd-tree engine at n = 10⁵: forced-serial vs the
/// session default.  The two produce bit-identical trees (pinned by
/// `tests/parallel_build_oracle.rs`), so any wall-clock difference is pure
/// fan-out.  Read together with the machine's core count: on the 1-core CI
/// container `default_threads()` is 1 and the ids coincide by construction.
fn bench_kd_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst_scaling/kd_threads");
    let n = 100_000;
    let points = uniform_points(n, 42);
    for (label, threads) in [("serial", 1), ("default", default_threads())] {
        group.bench_with_input(BenchmarkId::new(label, n), &points, |b, pts| {
            b.iter(|| {
                EuclideanMst::build_with_engine_threads(
                    black_box(pts),
                    MstEngine::KdTreeBoruvka,
                    threads,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// The full build pipeline — Instance (MST) → Theorem-2 orientation →
/// engine-backed verification — at the large-instance sizes.  This is the
/// end-to-end workload the memory audit and the parallel fan-out target:
/// n = 10⁵ in every run, n = 10⁶ under `ANTENNAE_BENCH_FULL=1`.
fn bench_build_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_pipeline/solve_verify");
    let mut sizes = vec![100_000usize];
    if full_mode() {
        sizes.push(1_000_000);
    }
    for &n in &sizes {
        let points = uniform_points(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| {
                let instance = Instance::new(black_box(pts.clone())).unwrap();
                let outcome = Solver::on(&instance)
                    .budget(3, theorem2_spread_threshold(3))
                    .run()
                    .unwrap();
                let report = VerificationEngine::new().verify(&instance, &outcome.scheme);
                assert!(report.is_strongly_connected);
                report
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_prim,
    bench_kdtree_boruvka,
    bench_auto,
    bench_kd_threads,
    bench_build_pipeline
);
criterion_main!(benches);
