//! Benchmarks of the flooding (broadcast) simulator over induced
//! communication graphs.

use antennae_bench::workloads::uniform_instance;
use antennae_core::antenna::AntennaBudget;
use antennae_core::solver::Solver;
use antennae_geometry::PI;
use antennae_sim::flooding::{flood, flood_over_digraph, omnidirectional_digraph, FloodingConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_flood_directional(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_directional");
    for &n in &[200usize, 500, 1000] {
        let instance = uniform_instance(n, 5);
        let scheme = Solver::on(&instance)
            .with_budget(AntennaBudget::new(2, PI))
            .run()
            .unwrap()
            .scheme;
        let points = instance.points().to_vec();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(points, scheme),
            |b, (pts, sch)| {
                b.iter(|| flood(black_box(pts), black_box(sch), 0, FloodingConfig::default()))
            },
        );
    }
    group.finish();
}

fn bench_flood_omnidirectional(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_omnidirectional");
    let instance = uniform_instance(500, 5);
    let scheme = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .unwrap()
        .scheme;
    let radius = scheme.max_radius();
    let points = instance.points().to_vec();
    let digraph = omnidirectional_digraph(&points, radius);
    group.bench_function("n=500", |b| {
        b.iter(|| {
            flood_over_digraph(
                black_box(&points),
                black_box(&digraph),
                0,
                FloodingConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flood_directional,
    bench_flood_omnidirectional
);
criterion_main!(benches);
