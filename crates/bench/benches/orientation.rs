//! Benchmarks of every orientation algorithm of the paper across instance
//! sizes (the cost of regenerating each Table 1 row).

use antennae_bench::workloads::uniform_instance;
use antennae_core::algorithms::{chains, hamiltonian, theorem2, theorem3};
use antennae_geometry::PI;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("orient_theorem2_k2");
    for &n in &[100usize, 500, 1000] {
        let instance = uniform_instance(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| theorem2::orient_theorem2(black_box(inst), 2).unwrap())
        });
    }
    group.finish();
}

fn bench_theorem3(c: &mut Criterion) {
    let mut group = c.benchmark_group("orient_theorem3_phi_pi");
    for &n in &[100usize, 500, 1000] {
        let instance = uniform_instance(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| theorem3::orient_two_antennae(black_box(inst), PI).unwrap())
        });
    }
    group.finish();
}

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("orient_chains");
    for &k in &[3usize, 4, 5] {
        let instance = uniform_instance(500, 7);
        group.bench_with_input(BenchmarkId::new("k", k), &instance, |b, inst| {
            b.iter(|| chains::orient_chains(black_box(inst), k).unwrap())
        });
    }
    group.finish();
}

fn bench_hamiltonian(c: &mut Criterion) {
    let mut group = c.benchmark_group("orient_hamiltonian");
    for &n in &[500usize, 2000] {
        let instance = uniform_instance(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| hamiltonian::orient_hamiltonian(black_box(inst)).unwrap())
        });
    }
    group.finish();
}

/// Ablation: the raw Euler-tour cycle vs. the bottleneck-2-opt improved cycle
/// (DESIGN.md §8); the time cost of the improvement pass is what this group
/// measures, its quality effect is reported by EXP-T1 / EXPERIMENTS.md.
fn bench_hamiltonian_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian_2opt_ablation");
    let instance = uniform_instance(500, 7);
    group.bench_function("euler_tour_only", |b| {
        b.iter(|| hamiltonian::orient_hamiltonian_unimproved(black_box(&instance)).unwrap())
    });
    group.bench_function("with_bottleneck_2opt", |b| {
        b.iter(|| hamiltonian::orient_hamiltonian(black_box(&instance)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem2,
    bench_theorem3,
    bench_chains,
    bench_hamiltonian,
    bench_hamiltonian_ablation
);
criterion_main!(benches);
