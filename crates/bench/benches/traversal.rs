//! Benchmarks of the CSR digraph core and its traversal kernels.
//!
//! Three comparisons, each against the preserved pre-refactor
//! implementation (`antennae_graph::reference::AdjListDiGraph`):
//!
//! * `traversal/strong_connectivity` — one verdict on an induced digraph:
//!   CSR kernels (scratch reused vs throwaway) vs the legacy
//!   adjacency-list two-BFS (which materializes a reversed copy).
//! * `traversal/c_connectivity_sweep` — the EXP-CC inner loop (n per-vertex
//!   fault probes): masked kernels on one CSR vs the legacy
//!   clone-`remove_vertices`-per-candidate path.  This is the headline
//!   number recorded in `BENCH_4.json` and `docs/ARCHITECTURE.md`.
//! * `traversal/digraph_build` — bulk construction from adjacency rows:
//!   the O(n + m) CSR counting builder vs legacy per-edge insertion with
//!   its O(deg) duplicate scan.
//!
//! `scripts/bench_smoke.sh` runs this bench in quick mode and appends the
//! parsed results to `BENCH_4.json`.

use antennae_bench::workloads::uniform_instance;
use antennae_core::antenna::AntennaBudget;
use antennae_core::solver::Solver;
use antennae_core::verify::VerificationEngine;
use antennae_geometry::PI;
use antennae_graph::reference::AdjListDiGraph;
use antennae_graph::{DiGraph, TraversalScratch, VertexMask};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: &[usize] = &[250, 1000];

/// The induced digraph of a solver-produced scheme, in both layouts.
fn induced_pair(n: usize) -> (DiGraph, AdjListDiGraph) {
    let instance = uniform_instance(n, 3);
    let scheme = Solver::on(&instance)
        .with_budget(AntennaBudget::new(2, PI))
        .run()
        .unwrap()
        .scheme;
    let csr = VerificationEngine::new().induced_digraph(instance.points(), &scheme);
    let legacy = AdjListDiGraph::from(&csr);
    (csr, legacy)
}

fn bench_strong_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal/strong_connectivity");
    for &n in SIZES {
        let (csr, legacy) = induced_pair(n);
        let mut scratch = TraversalScratch::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("csr_scratch", n), &csr, |b, g| {
            b.iter(|| scratch.is_strongly_connected(black_box(g), None))
        });
        group.bench_with_input(BenchmarkId::new("csr_throwaway", n), &csr, |b, g| {
            b.iter(|| black_box(g).is_strongly_connected())
        });
        group.bench_with_input(BenchmarkId::new("legacy", n), &legacy, |b, g| {
            b.iter(|| black_box(g).is_strongly_connected())
        });
    }
    group.finish();
}

fn bench_c_connectivity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal/c_connectivity_sweep");
    for &n in SIZES {
        let (csr, legacy) = induced_pair(n);
        // Masked kernels: one CSR, one scratch, one mask, n probes.
        let mut scratch = TraversalScratch::with_capacity(n);
        let mut mask = VertexMask::new(n);
        group.bench_with_input(BenchmarkId::new("masked", n), &csr, |b, g| {
            b.iter(|| {
                let mut critical = 0usize;
                for v in 0..g.len() {
                    mask.remove(v);
                    if !scratch.is_strongly_connected(black_box(g), Some(&mask)) {
                        critical += 1;
                    }
                    mask.restore(v);
                }
                critical
            })
        });
        // Legacy path: clone a re-indexed subgraph per candidate vertex.
        group.bench_with_input(BenchmarkId::new("clone", n), &legacy, |b, g| {
            b.iter(|| {
                let mut critical = 0usize;
                for v in 0..g.len() {
                    if !black_box(g).remove_vertices(&[v]).is_strongly_connected() {
                        critical += 1;
                    }
                }
                critical
            })
        });
    }
    group.finish();
}

fn bench_digraph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal/digraph_build");
    for &n in SIZES {
        let (csr, _) = induced_pair(n);
        let rows: Vec<Vec<usize>> = (0..n)
            .map(|u| csr.out_neighbors(u).iter().map(|&v| v as usize).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("csr_counting", n), &rows, |b, rows| {
            b.iter(|| {
                DiGraph::from_adjacency(
                    rows.len(),
                    black_box(rows).iter().map(|r| r.iter().copied()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("legacy_add_edge", n), &rows, |b, rows| {
            b.iter(|| {
                AdjListDiGraph::from_adjacency(
                    rows.len(),
                    black_box(rows).iter().map(|r| r.iter().copied()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strong_connectivity,
    bench_c_connectivity_sweep,
    bench_digraph_build
);
criterion_main!(benches);
