//! Service-layer headline: sustained edit throughput across **1000
//! concurrent deployments** through the full protocol path (parse →
//! per-tenant buffering → one coalesced incremental repair per flush →
//! serialize), against the serial one-deployment-at-a-time baseline a
//! client is stuck with when no service layer buffers for it: every edit
//! must be applied — and repaired — before the next one is issued.
//!
//! Three sides, all through [`LocalClient`] so the measured path is
//! byte-for-byte what the TCP server executes (only the socket hop is
//! elided):
//!
//! * `parallel/<threads>` — the service path: bursts buffered per tenant,
//!   one coalesced repair per `ORIENT`, fanned out over the same worker
//!   count the server's pool uses.
//! * `coalesced_1thread` — the identical request stream on one thread,
//!   isolating what coalescing alone buys (the threading term is the gap
//!   to `parallel`, which collapses to zero on a single-core container).
//! * `serial_baseline` — no batching: `ORIENT` after every `EDIT`, one
//!   deployment at a time, paying one incremental repair per edit.
//!
//! The committed `BENCH_*.json` trajectory records all three; the
//! acceptance bar is `parallel` ahead of `serial_baseline` at 1000
//! tenants.  The durable-mode twin of this sweep lives in the `store`
//! bench (`store/serve_sweep_1000_tenants`).

use antennae_bench::workloads::uniform_points;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::parallel::{default_threads, parallel_map};
use antennae_serve::{LocalClient, Service};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const TENANTS: usize = 1000;
const SEEDS_PER_TENANT: usize = 8;
/// Edits buffered per tenant per iteration before the coalesced flush.
const BURST: usize = 4;

/// A service pre-populated with `TENANTS` small deployments.
fn populated_service() -> (Arc<Service>, Vec<String>) {
    let service = Arc::new(Service::new());
    let client = LocalClient::new(Arc::clone(&service));
    let phi = theorem2_spread_threshold(2);
    let names: Vec<String> = (0..TENANTS).map(|t| format!("t{t}")).collect();
    for (t, name) in names.iter().enumerate() {
        let mut line = format!("CREATE {name} 2 {phi}");
        for p in uniform_points(SEEDS_PER_TENANT, t as u64 + 1) {
            line.push_str(&format!(" {} {}", p.x, p.y));
        }
        let response = client.request(&line).to_line();
        assert!(response.starts_with("OK created"), "{response}");
    }
    (service, names)
}

/// One tenant's burst: `BURST` edits (a bounded move oscillation) buffered
/// over the wire grammar, then one `ORIENT` paying a single coalesced
/// repair.  Returns the number of OK responses, so the bench can't be
/// optimized into skipping the protocol work.
fn burst(client: &LocalClient, name: &str, round: usize) -> usize {
    let mut ok = 0;
    for e in 0..BURST {
        let id = e % SEEDS_PER_TENANT;
        let dx = 0.3 + 0.1 * ((round + e) % 3) as f64;
        let line = format!("EDIT {name} MOVE {id} {dx} {}", 0.2 + 0.05 * e as f64);
        ok += usize::from(client.request(&line).is_ok());
    }
    ok += usize::from(client.request(&format!("ORIENT {name}")).is_ok());
    ok
}

/// Headline: all 1000 tenants bursting, fanned out over the default worker
/// count with the same chunk-claimed primitive the server's pool sizes by.
fn bench_parallel_edits(c: &mut Criterion) {
    let (service, names) = populated_service();
    let threads = default_threads();
    let mut group = c.benchmark_group("serve/edits_1000_tenants");
    let mut round = 0usize;
    group.bench_function(BenchmarkId::new("parallel", threads), |b| {
        b.iter(|| {
            round += 1;
            let client = LocalClient::new(Arc::clone(&service));
            let oks = parallel_map(&names, threads, |name| burst(&client, name, round));
            black_box(oks.iter().sum::<usize>())
        })
    });
    group.finish();
}

/// Identical coalesced request stream on one thread: the gap to
/// `parallel` is the threading term alone.
fn bench_coalesced_single_thread(c: &mut Criterion) {
    let (service, names) = populated_service();
    let client = LocalClient::new(service);
    let mut group = c.benchmark_group("serve/edits_1000_tenants");
    let mut round = 0usize;
    group.bench_function(BenchmarkId::new("coalesced_1thread", 1), |b| {
        b.iter(|| {
            round += 1;
            let total: usize = names.iter().map(|name| burst(&client, name, round)).sum();
            black_box(total)
        })
    });
    group.finish();
}

/// Serial one-deployment-at-a-time baseline: the same `BURST` moves per
/// tenant, but with no buffering layer every edit must be followed by an
/// `ORIENT` before the next is issued — one incremental repair per edit
/// instead of one per burst.
fn bench_serial_baseline(c: &mut Criterion) {
    let (service, names) = populated_service();
    let client = LocalClient::new(service);
    let mut group = c.benchmark_group("serve/edits_1000_tenants");
    let mut round = 0usize;
    group.bench_function(BenchmarkId::new("serial_baseline", 1), |b| {
        b.iter(|| {
            round += 1;
            let mut ok = 0usize;
            for name in &names {
                for e in 0..BURST {
                    let id = e % SEEDS_PER_TENANT;
                    let dx = 0.3 + 0.1 * ((round + e) % 3) as f64;
                    let line = format!("EDIT {name} MOVE {id} {dx} {}", 0.2 + 0.05 * e as f64);
                    ok += usize::from(client.request(&line).is_ok());
                    ok += usize::from(client.request(&format!("ORIENT {name}")).is_ok());
                }
            }
            black_box(ok)
        })
    });
    group.finish();
}

/// Snapshot reads while every tenant is mid-burst: QUERY must stay cheap
/// (it only clones an `Arc` and formats), pinning the lock-free read path.
fn bench_snapshot_reads(c: &mut Criterion) {
    let (service, names) = populated_service();
    let client = LocalClient::new(service);
    let mut group = c.benchmark_group("serve/query_snapshot");
    let mut i = 0usize;
    group.bench_function(BenchmarkId::from_parameter(TENANTS), |b| {
        b.iter(|| {
            i = (i + 1) % names.len();
            let response = client.request(&format!("QUERY {}", names[i]));
            black_box(response.is_ok())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_edits,
    bench_coalesced_single_thread,
    bench_serial_baseline,
    bench_snapshot_reads
);
criterion_main!(benches);
