//! Ablation of the parallel sweep driver: sequential vs. multi-threaded
//! evaluation of a Table-1 style batch of instances.

use antennae_core::antenna::AntennaBudget;
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::verify;
use antennae_geometry::PI;
use antennae_sim::generators::PointSetGenerator;
use antennae_sim::sweep::parallel_map;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn run_batch(seeds: &[u64], threads: usize) -> f64 {
    let generator = PointSetGenerator::UniformSquare { n: 80, side: 12.0 };
    let results = parallel_map(seeds, threads, |seed| {
        let points = generator.generate(*seed);
        let instance = Instance::new(points).unwrap();
        let scheme = Solver::on(&instance)
            .with_budget(AntennaBudget::new(2, PI))
            .run()
            .unwrap()
            .scheme;
        verify(&instance, &scheme).max_radius_over_lmax
    });
    results.into_iter().fold(0.0, f64::max)
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_parallelism");
    group.sample_size(10);
    let seeds: Vec<u64> = (0..16).collect();
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| run_batch(black_box(&seeds), threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_parallelism);
criterion_main!(benches);
