//! Durability-layer headline numbers:
//!
//! * `store/wal_append/<policy>` — single-record append cost under each
//!   sync policy.  `always` pays an fsync per record, `every-n=32`
//!   amortizes it across a burst, `never` is the pure framing+CRC+buffer
//!   cost — the spread is the price list the `--sync` flag chooses from.
//! * `store/recover/1000` — cold-boot recovery of a 1000-tenant data
//!   directory (snapshot read + WAL salvage + one coalesced replay per
//!   tenant).  The acceptance bar is under two seconds per pass.
//! * `store/serve_sweep_1000_tenants/{ephemeral,durable_every_n}` — the
//!   serve bench's coalesced 1000-tenant burst sweep, ephemeral versus
//!   `--data-dir` with the default group-commit policy.  The gap between
//!   the two ids *is* the durable overhead (acceptance: ≤15%).
//!
//! Everything runs through the real protocol path ([`LocalClient`]) or the
//! real store types — no mocked I/O.

use antennae_bench::workloads::uniform_points;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::Edit;
use antennae_geometry::Point;
use antennae_serve::{LocalClient, Service};
use antennae_store::{Store, StoreConfig, SyncPolicy, WalRecord, WalWriter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

const TENANTS: usize = 1000;
const SEEDS_PER_TENANT: usize = 8;
const BURST: usize = 4;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "antennae-store-bench-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    dir
}

/// Append cost per policy.  The log is reset (truncated to the committed
/// watermark, i.e. empty) every 8192 records so the file never grows
/// unboundedly during the `never`-policy's very fast iterations; the
/// occasional `set_len` amortizes to noise.
fn bench_wal_append(c: &mut Criterion) {
    let root = bench_dir("append");
    let mut group = c.benchmark_group("store/wal_append");
    for policy in [
        SyncPolicy::Always,
        SyncPolicy::EveryN(32),
        SyncPolicy::Never,
    ] {
        let path = root.join(format!("{}.log", policy.as_flag()));
        let mut writer = WalWriter::create(&path, policy).expect("create log");
        let record = WalRecord::Edit(Edit::Move(3, Point::new(1.25, -0.5)));
        group.bench_function(BenchmarkId::from_parameter(policy.as_flag()), |b| {
            b.iter(|| {
                writer.append(&record).expect("append");
                if writer.records() >= 8192 {
                    writer.rollback_to_committed().expect("reset log");
                }
                black_box(writer.bytes())
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// Cold recovery of a 1000-tenant directory: every tenant is a small
/// deployment (CREATE + a short edit tail), so the pass is dominated by the
/// per-tenant fixed costs recovery actually pays at boot — directory walk,
/// snapshot/WAL reads, CRC validation and one coalesced replay each.
fn bench_recover_1k(c: &mut Criterion) {
    let root = bench_dir("recover");
    let store = Store::open(
        &root,
        StoreConfig {
            sync: SyncPolicy::Never,
            ..StoreConfig::default()
        },
    )
    .expect("open store");
    let phi = theorem2_spread_threshold(2);
    for t in 0..TENANTS {
        let seeds = uniform_points(4, t as u64 + 1);
        let mut wal = store
            .create_tenant(&format!("t{t}"), 2, phi, &seeds)
            .expect("create tenant");
        wal.append_edit(&Edit::Insert(Point::new(0.1 * t as f64 % 3.0, 0.5)))
            .expect("edit");
        wal.append_edit(&Edit::Move(1, Point::new(0.75, 0.25)))
            .expect("edit");
        wal.commit();
        wal.sync().expect("close cleanly");
    }

    let mut group = c.benchmark_group("store/recover");
    group.bench_function(BenchmarkId::from_parameter(TENANTS), |b| {
        b.iter(|| {
            let recovery = store.recover().expect("recover");
            assert_eq!(recovery.tenants.len(), TENANTS);
            assert!(recovery.skipped.is_empty());
            black_box(recovery.tenants.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// One coalesced burst sweep over every tenant (the serve bench's
/// `coalesced_1thread` shape), returning the OK count.
fn sweep(client: &LocalClient, names: &[String], round: usize) -> usize {
    let mut ok = 0;
    for name in names {
        for e in 0..BURST {
            let id = e % SEEDS_PER_TENANT;
            let dx = 0.3 + 0.1 * ((round + e) % 3) as f64;
            let line = format!("EDIT {name} MOVE {id} {dx} {}", 0.2 + 0.05 * e as f64);
            ok += usize::from(client.request(&line).is_ok());
        }
        ok += usize::from(client.request(&format!("ORIENT {name}")).is_ok());
    }
    ok
}

fn populated(service: Arc<Service>) -> (LocalClient, Vec<String>) {
    let client = LocalClient::new(service);
    let phi = theorem2_spread_threshold(2);
    let names: Vec<String> = (0..TENANTS).map(|t| format!("t{t}")).collect();
    for (t, name) in names.iter().enumerate() {
        let mut line = format!("CREATE {name} 2 {phi}");
        for p in uniform_points(SEEDS_PER_TENANT, t as u64 + 1) {
            line.push_str(&format!(" {} {}", p.x, p.y));
        }
        let response = client.request(&line).to_line();
        assert!(response.starts_with("OK created"), "{response}");
    }
    (client, names)
}

/// Ephemeral side of the durable-overhead pair.
fn bench_sweep_ephemeral(c: &mut Criterion) {
    let (client, names) = populated(Arc::new(Service::new()));
    let mut group = c.benchmark_group("store/serve_sweep_1000_tenants");
    let mut round = 0usize;
    group.bench_function("ephemeral", |b| {
        b.iter(|| {
            round += 1;
            black_box(sweep(&client, &names, round))
        })
    });
    group.finish();
}

/// Durable side: same request stream, every edit logged under the default
/// `every-n=32` group-commit policy (plus whatever compactions trigger).
fn bench_sweep_durable(c: &mut Criterion) {
    let root = bench_dir("sweep");
    let store = Store::open(&root, StoreConfig::default()).expect("open store");
    let (service, _) = Service::open_durable(store).expect("durable service");
    let (client, names) = populated(Arc::new(service));
    let mut group = c.benchmark_group("store/serve_sweep_1000_tenants");
    let mut round = 0usize;
    group.bench_function("durable_every_n", |b| {
        b.iter(|| {
            round += 1;
            black_box(sweep(&client, &names, round))
        })
    });
    group.finish();
    drop(client);
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_recover_1k,
    bench_sweep_ephemeral,
    bench_sweep_durable
);
criterion_main!(benches);
