//! Spatial-sharding headline: per-tile kd/MST forests vs the global engines.
//!
//! Three comparisons, all against bit-identical outputs (the shard oracle
//! pins exactness, this bench prices it):
//!
//! * `shard/static_build` — building the MST substrate from scratch,
//!   globally vs shard-by-shard with the boundary stitch.
//! * `shard/edit_repair` — the PR headline: one `Move` edit through the MST
//!   substrate ([`DynamicInstance::move_sensor`]) at n = 10⁵.  The global
//!   engine pays a full star sweep over all live sensors per attach; the
//!   sharded engine repairs inside the owning ~10³-point tile (bounded-star
//!   attach + lockstep reconnection).  `BENCH_10.json` records both; the
//!   acceptance bar is sharded ≥ 5× ahead.
//! * `shard/session_edit` — the same edit through a full
//!   [`DynamicSolverSession`], including re-orientation, row repair and the
//!   exact strong-connectivity re-check.  The verdict's Tarjan pass is
//!   inherently O(n + m) and shared by both engines, so the session-level
//!   gap is smaller than the substrate gap — recorded for honesty, see
//!   `ARCHITECTURE.md` ("repair is local, the proof is global").

use antennae_bench::workloads::uniform_points;
use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae_core::instance::Instance;
use antennae_core::shard::{ShardSpec, ShardedInstance};
use antennae_geometry::Point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const STATIC_N: usize = 20_000;
const EDIT_N: usize = 100_000;

fn theorem2_budget() -> AntennaBudget {
    AntennaBudget::new(2, theorem2_spread_threshold(2))
}

fn bench_static_build(c: &mut Criterion) {
    let points = uniform_points(STATIC_N, 7);
    let mut group = c.benchmark_group("shard/static_build");
    group.bench_function(BenchmarkId::new("global", STATIC_N), |b| {
        b.iter(|| {
            let inst = Instance::new(black_box(points.clone())).expect("non-empty");
            black_box(inst.lmax())
        })
    });
    group.bench_function(BenchmarkId::new("sharded", STATIC_N), |b| {
        b.iter(|| {
            let built =
                ShardedInstance::build(black_box(&points), ShardSpec::Auto).expect("non-empty");
            black_box(built.instance().lmax())
        })
    });
    group.finish();
}

/// One `Move` edit per iteration against the bare MST substrate: a
/// mid-deployment sensor oscillates between two nearby positions, so the
/// deployment stays statistically identical across iterations while every
/// edit does real detach + attach work.
fn bench_edit_repair(c: &mut Criterion) {
    let points = uniform_points(EDIT_N, 11);
    let mut group = c.benchmark_group("shard/edit_repair");
    for (label, spec) in [("global", ShardSpec::Off), ("sharded", ShardSpec::Auto)] {
        let mut inst = DynamicInstance::new_sharded(&points, spec).expect("non-empty");
        let id = EDIT_N / 2;
        let home = inst.point(id).expect("live id");
        let away = Point::new(home.x + 0.4, home.y + 0.3);
        let mut at_home = true;
        group.bench_function(BenchmarkId::new(label, EDIT_N), |b| {
            b.iter(|| {
                let target = if at_home { away } else { home };
                at_home = !at_home;
                inst.move_sensor(id, target).expect("live id");
                black_box(inst.lmax())
            })
        });
    }
    group.finish();
}

/// The same oscillating `Move` through a live solver session: substrate
/// repair plus incremental re-orientation, row repair and the per-edit
/// verification verdict.
fn bench_session_edit(c: &mut Criterion) {
    let points = uniform_points(EDIT_N, 11);
    let mut group = c.benchmark_group("shard/session_edit");
    group.sample_size(20);
    for (label, spec) in [("global", ShardSpec::Off), ("sharded", ShardSpec::Auto)] {
        let inst = DynamicInstance::new_sharded(&points, spec).expect("non-empty");
        let mut session = DynamicSolverSession::new(inst, theorem2_budget()).expect("valid budget");
        let id = EDIT_N / 2;
        let home = session.instance().point(id).expect("live id");
        let away = Point::new(home.x + 0.4, home.y + 0.3);
        let mut at_home = true;
        group.bench_function(BenchmarkId::new(label, EDIT_N), |b| {
            b.iter(|| {
                let target = if at_home { away } else { home };
                at_home = !at_home;
                let outcome = session.apply(Edit::Move(id, target)).expect("live id");
                black_box(outcome.report.is_valid())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_static_build,
    bench_edit_repair,
    bench_session_edit
);
criterion_main!(benches);
