//! # antennae-bench
//!
//! Benchmark harness and experiment report binaries.
//!
//! * `src/bin/` — one binary per table/figure of the paper; each prints the
//!   same rows/series the paper reports (see DESIGN.md §5 for the mapping).
//!   Every binary accepts `--quick` to run the reduced configuration used in
//!   CI/tests.
//! * `benches/` — Criterion performance benchmarks of every substrate (MST
//!   construction, orientation algorithms, verification, flooding, sweep
//!   parallelism ablation).

/// Shared helpers for the benches and report binaries.
pub mod workloads {
    use antennae_core::instance::Instance;
    use antennae_geometry::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The raw point set behind [`uniform_instance`]: `n` sensors uniform in
    /// a square whose side scales with `√n` (constant density across sizes).
    /// The dynamic-instance benches start from points rather than a built
    /// instance because building the substrate *is* what they measure.
    pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let side = (n as f64).sqrt() * 2.0;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect()
    }

    /// A reproducible uniform-random instance of `n` sensors in a square
    /// whose side scales with `√n` (keeps density constant across sizes).
    pub fn uniform_instance(n: usize, seed: u64) -> Instance {
        Instance::new(uniform_points(n, seed)).expect("non-empty instance")
    }

    /// Returns `true` when `--quick` was passed on the command line.
    pub fn quick_flag() -> bool {
        std::env::args().any(|a| a == "--quick")
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::uniform_instance;

    #[test]
    fn uniform_instance_is_reproducible() {
        let a = uniform_instance(50, 1);
        let b = uniform_instance(50, 1);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.len(), 50);
        assert!(a.lmax() > 0.0);
    }
}
