//! EXP-EN: energy and interference comparison against an omnidirectional
//! deployment.
//!
//! Usage: `cargo run --release -p antennae-bench --bin energy [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::energy_compare::{run, EnergyConfig};

fn main() {
    let config = if quick_flag() {
        EnergyConfig::quick()
    } else {
        EnergyConfig::full()
    };
    let report = run(&config);
    println!("{report}");
}
