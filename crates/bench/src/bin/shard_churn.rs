//! EXP-SHARD-CHURN: sharded vs. global dynamic engines on identical traces.
//!
//! Usage: `cargo run --release -p antennae-bench --bin shard_churn [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::shard_churn::{run, ShardChurnConfig};

fn main() {
    let config = if quick_flag() {
        ShardChurnConfig::quick()
    } else {
        ShardChurnConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_identical() {
        eprintln!("WARNING: sharded and global engines diverged");
        std::process::exit(1);
    }
    if !report.all_valid() {
        eprintln!("WARNING: some edit produced an invalid verdict");
        std::process::exit(1);
    }
}
