use antennae_bench::workloads::uniform_points;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::VerificationEngine;
use std::time::Instant;

fn rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches(" kB").trim().parse().unwrap();
            return kb / 1024.0;
        }
    }
    0.0
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let t0 = Instant::now();
    let points = uniform_points(n, 42);
    println!("gen: {:.2}s", t0.elapsed().as_secs_f64());
    let t = Instant::now();
    let instance = Instance::new(points).unwrap();
    println!("instance (MST): {:.2}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let outcome = Solver::on(&instance)
        .budget(3, theorem2_spread_threshold(3))
        .run()
        .unwrap();
    println!("solve: {:.2}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    let report = VerificationEngine::new().verify(&instance, &outcome.scheme);
    println!(
        "verify: {:.2}s strongly_connected={}",
        t.elapsed().as_secs_f64(),
        report.is_strongly_connected
    );
    println!(
        "total: {:.2}s peak_rss: {:.0} MB",
        t0.elapsed().as_secs_f64(),
        rss_mb()
    );
}
