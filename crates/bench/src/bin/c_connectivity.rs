//! EXP-CC: strong c-connectivity (fault tolerance) of the produced
//! orientations — the open problem of the paper's conclusion.
//!
//! Usage: `cargo run --release -p antennae-bench --bin c_connectivity [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::c_connectivity::{run, CConnectivityConfig};

fn main() {
    let config = if quick_flag() {
        CConnectivityConfig::quick()
    } else {
        CConnectivityConfig::full()
    };
    let report = run(&config);
    println!("{report}");
}
