//! EXP-F1: Lemma 1 necessity/sufficiency on the regular polygon (Figure 1).
//!
//! Usage: `cargo run --release -p antennae-bench --bin lemma1`

use antennae_sim::experiments::lemma1_polygon::run;

fn main() {
    let report = run(5);
    println!("{report}");
    if !report.all_hold() {
        eprintln!("WARNING: Lemma 1 claim violated in some cell");
        std::process::exit(1);
    }
}
