//! EXP-T1: regenerates Table 1 of the paper (see DESIGN.md §5).
//!
//! Usage: `cargo run --release -p antennae-bench --bin table1 [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::table1::{run, Table1Config};

fn main() {
    let config = if quick_flag() {
        Table1Config::quick()
    } else {
        Table1Config::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_valid() {
        eprintln!("WARNING: some instances failed verification");
        std::process::exit(1);
    }
}
