//! EXP-F5 / EXP-F6: the zero-spread chain constructions of Theorems 5 and 6
//! (Figures 5 and 6).
//!
//! Usage: `cargo run --release -p antennae-bench --bin chain_constructions [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::chain_constructions::{run, ChainConfig};

fn main() {
    let config = if quick_flag() {
        ChainConfig::quick()
    } else {
        ChainConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_within_bounds() {
        eprintln!("WARNING: a Theorem 5/6 bound was violated");
        std::process::exit(1);
    }
}
