//! EXP-TR: spread/radius trade-off curves (the trade-offs of §1.1 and §5).
//!
//! Usage: `cargo run --release -p antennae-bench --bin tradeoff [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::tradeoff::{run, TradeoffConfig};

fn main() {
    let config = if quick_flag() {
        TradeoffConfig::quick()
    } else {
        TradeoffConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_connected {
        eprintln!("WARNING: some configuration was not strongly connected");
        std::process::exit(1);
    }
}
