//! EXP-CHURN: dynamic deployments under arrival/failure/mobility churn.
//!
//! Usage: `cargo run --release -p antennae-bench --bin churn [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::churn::{run, ChurnConfig};

fn main() {
    let config = if quick_flag() {
        ChurnConfig::quick()
    } else {
        ChurnConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_valid() {
        eprintln!("WARNING: some edit produced an invalid verdict");
        std::process::exit(1);
    }
}
