//! EXP-F3 / EXP-F4: case histograms of the Theorem 3 construction
//! (Figures 3 and 4).
//!
//! Usage: `cargo run --release -p antennae-bench --bin theorem3_cases [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::theorem3_cases::{run, Theorem3CasesConfig};

fn main() {
    let config = if quick_flag() {
        Theorem3CasesConfig::quick()
    } else {
        Theorem3CasesConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if report.histograms.iter().any(|h| !h.all_connected) {
        eprintln!("WARNING: some instance was not strongly connected");
        std::process::exit(1);
    }
}
