//! EXP-F2: empirical validation of Facts 1 and 2 on generated MSTs
//! (Figure 2).
//!
//! Usage: `cargo run --release -p antennae-bench --bin mst_facts [--quick]`

use antennae_bench::workloads::quick_flag;
use antennae_sim::experiments::mst_facts::{run, MstFactsConfig};

fn main() {
    let config = if quick_flag() {
        MstFactsConfig::quick()
    } else {
        MstFactsConfig::full()
    };
    let report = run(&config);
    println!("{report}");
    if !report.all_facts_hold() {
        eprintln!("WARNING: a Fact 1/2 property was violated");
        std::process::exit(1);
    }
}
