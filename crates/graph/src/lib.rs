//! # antennae-graph
//!
//! Graph substrate for the directional-antenna reproduction: weighted
//! undirected graphs, minimum spanning trees, **Euclidean MSTs of maximum
//! degree 5** (the structural backbone every orientation algorithm of the
//! paper walks), rooted trees with counterclockwise-sorted children, and
//! directed communication graphs in a flat **CSR layout** with
//! allocation-free, mask-aware traversal kernels ([`traversal`], [`scc`],
//! [`connectivity`]; the pre-CSR adjacency-list implementation survives in
//! [`mod@reference`] as the property-test oracle).
//!
//! The paper's constructions all start from the same substrate:
//!
//! 1. compute a Euclidean MST `T` of the sensor set with maximum degree 5
//!    (such a tree always exists; see [`euclidean`]),
//! 2. root `T` at a degree-one vertex,
//! 3. walk the rooted tree assigning antennae, and
//! 4. check that the induced directed graph is strongly connected
//!    (see [`scc`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod connectivity;
pub mod digraph;
pub mod dynamic;
pub mod euclidean;
pub mod graph;
pub mod mst;
pub mod properties;
pub mod reference;
pub mod rooted;
pub mod scc;
pub mod sharded;
pub mod shortest_path;
pub mod traversal;
pub mod union_find;

pub use digraph::DiGraph;
pub use dynamic::{DynamicEmst, DynamicEmstError};
pub use euclidean::EuclideanMst;
pub use graph::{Edge, Graph};
pub use rooted::RootedTree;
pub use sharded::{build_sharded, StitchStats};
pub use traversal::{TraversalScratch, VertexMask};
pub use union_find::UnionFind;
