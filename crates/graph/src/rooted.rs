//! Rooted trees with geometrically (counterclockwise) sorted children.
//!
//! The paper roots the MST `T` at a degree-one vertex `R_T` and, for every
//! internal vertex `v`, enumerates its children `v(1), …, v(δ(v)−1)` **in
//! counterclockwise order**, starting from the ray towards `v`'s parent (or
//! towards the "imaginary point" `p` in Property 1).  [`RootedTree`] captures
//! exactly this structure on top of a [`EuclideanMst`].

use crate::euclidean::EuclideanMst;
use antennae_geometry::angular::sort_ccw_from;
use antennae_geometry::{Angle, Point};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A rooted view of a Euclidean MST.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootedTree {
    points: Vec<Point>,
    root: usize,
    parent: Vec<Option<usize>>,
    /// Children of each vertex, sorted counterclockwise by direction from the
    /// vertex (absolute angle order; use [`RootedTree::children_ccw_from`] to
    /// re-order relative to a reference ray as the paper does).
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    lmax: f64,
}

impl RootedTree {
    /// Roots `mst` at `root`.
    ///
    /// Panics when `root` is out of range.  Most callers should use
    /// [`RootedTree::from_mst`] which picks a degree-one root as the paper
    /// prescribes.
    pub fn with_root(mst: &EuclideanMst, root: usize) -> Self {
        let n = mst.len();
        assert!(root < n, "root index out of range");
        let points = mst.points().to_vec();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut depth = vec![0usize; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in mst.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some(u);
                    depth[v] = depth[u] + 1;
                    children[u].push(v);
                    queue.push_back(v);
                }
            }
        }
        // Sort children counterclockwise (by absolute direction).
        for u in 0..n {
            let pts = &points;
            children[u].sort_by(|&a, &b| {
                let da = Angle::of_ray(&pts[u], &pts[a]).radians();
                let db = Angle::of_ray(&pts[u], &pts[b]).radians();
                da.total_cmp(&db)
            });
        }
        RootedTree {
            points,
            root,
            parent,
            children,
            depth,
            lmax: mst.lmax(),
        }
    }

    /// Roots the tree at a degree-one vertex (the smallest-index leaf), as
    /// the paper prescribes ("a degree-one vertex is arbitrarily chosen to be
    /// the root vertex of T").  For a single-vertex tree the unique vertex is
    /// used.
    pub fn from_mst(mst: &EuclideanMst) -> Self {
        let root = mst.leaves().into_iter().next().unwrap_or(0);
        RootedTree::with_root(mst, root)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the tree has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The root vertex `R_T`.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The point set underlying the tree.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Location of vertex `v`.
    pub fn point(&self, v: usize) -> Point {
        self.points[v]
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Children of `v` in counterclockwise order (absolute direction).
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Children of `v` sorted by counterclockwise offset from the direction
    /// `reference` — the paper's "`u(1)` is the first neighbour of `u` when
    /// rotating the ray `~up`".
    pub fn children_ccw_from(&self, v: usize, reference: Angle) -> Vec<usize> {
        let child_points: Vec<Point> = self.children[v].iter().map(|&c| self.points[c]).collect();
        sort_ccw_from(&self.points[v], &child_points, reference)
            .into_iter()
            .map(|n| self.children[v][n.index])
            .collect()
    }

    /// Number of children of `v`.
    pub fn child_count(&self, v: usize) -> usize {
        self.children[v].len()
    }

    /// Degree of `v` in the (undirected) tree: children plus parent.
    pub fn tree_degree(&self, v: usize) -> usize {
        self.child_count(v) + usize::from(self.parent[v].is_some())
    }

    /// Returns `true` when `v` is a leaf of the rooted tree (no children).
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// Height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// `lmax` of the underlying MST.
    pub fn lmax(&self) -> f64 {
        self.lmax
    }

    /// Length of the edge from `v` to its parent (`None` for the root).
    pub fn parent_edge_length(&self, v: usize) -> Option<f64> {
        self.parent[v].map(|p| self.points[v].distance(&self.points[p]))
    }

    /// Vertices in post-order (every vertex appears after all of its
    /// children) — the order in which the inductive constructions of
    /// Theorems 3, 5 and 6 process the tree.
    pub fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        // Iterative post-order.
        let mut stack: Vec<(usize, usize)> = vec![(self.root, 0)];
        while let Some(&mut (v, ref mut next_child)) = stack.last_mut() {
            if *next_child < self.children[v].len() {
                let c = self.children[v][*next_child];
                *next_child += 1;
                stack.push((c, 0));
            } else {
                order.push(v);
                stack.pop();
            }
        }
        order
    }

    /// Vertices in BFS (level) order starting from the root.
    pub fn bfs_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut queue = VecDeque::new();
        queue.push_back(self.root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &self.children[v] {
                queue.push_back(c);
            }
        }
        order
    }

    /// All vertices in the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u].iter().copied());
        }
        out
    }

    /// Maximum tree degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.tree_degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_geometry::Point;

    fn plus_shape() -> EuclideanMst {
        // Centre with four arms; centre has degree 4.
        let pts = vec![
            Point::new(0.0, 0.0),  // 0 centre
            Point::new(1.0, 0.0),  // 1 east
            Point::new(0.0, 1.0),  // 2 north
            Point::new(-1.0, 0.0), // 3 west
            Point::new(0.0, -1.0), // 4 south
        ];
        EuclideanMst::build(&pts).unwrap()
    }

    #[test]
    fn roots_at_a_leaf_by_default() {
        let tree = RootedTree::from_mst(&plus_shape());
        assert_eq!(tree.tree_degree(tree.root()), 1);
        assert_eq!(tree.len(), 5);
        assert!(tree.parent(tree.root()).is_none());
    }

    #[test]
    fn parent_child_relationships_are_consistent() {
        let tree = RootedTree::from_mst(&plus_shape());
        for v in 0..tree.len() {
            for &c in tree.children(v) {
                assert_eq!(tree.parent(c), Some(v));
                assert_eq!(tree.depth(c), tree.depth(v) + 1);
            }
        }
        // Exactly n-1 vertices have parents.
        let with_parent = (0..tree.len())
            .filter(|&v| tree.parent(v).is_some())
            .count();
        assert_eq!(with_parent, tree.len() - 1);
    }

    #[test]
    fn children_sorted_counterclockwise() {
        let mst = plus_shape();
        let tree = RootedTree::with_root(&mst, 1); // root at the east leaf
                                                   // The centre (0) then has children north, west, south; sorted ccw by
                                                   // absolute angle: north (90°), west (180°), south (270°).
        assert_eq!(tree.children(0), &[2, 3, 4]);
        // Relative to the ray towards the parent (east, 0°), the ccw order is
        // the same here.
        let rel = tree.children_ccw_from(0, Angle::ZERO);
        assert_eq!(rel, vec![2, 3, 4]);
        // Relative to a ray pointing just past north the order rotates.
        let rel_rotated = tree.children_ccw_from(0, Angle::from_degrees(100.0));
        assert_eq!(rel_rotated, vec![3, 4, 2]);
        // A child exactly on the reference ray is listed first (ccw offset 0).
        let rel_north = tree.children_ccw_from(0, Angle::from_degrees(90.0));
        assert_eq!(rel_north, vec![2, 3, 4]);
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let tree = RootedTree::from_mst(&plus_shape());
        let order = tree.post_order();
        assert_eq!(order.len(), tree.len());
        let position: Vec<usize> = {
            let mut pos = vec![0; tree.len()];
            for (i, &v) in order.iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for v in 0..tree.len() {
            for &c in tree.children(v) {
                assert!(position[c] < position[v]);
            }
        }
        assert_eq!(*order.last().unwrap(), tree.root());
    }

    #[test]
    fn bfs_order_starts_at_root_and_respects_levels() {
        let tree = RootedTree::from_mst(&plus_shape());
        let order = tree.bfs_order();
        assert_eq!(order[0], tree.root());
        assert_eq!(order.len(), tree.len());
        for w in order.windows(2) {
            assert!(tree.depth(w[0]) <= tree.depth(w[1]));
        }
    }

    #[test]
    fn subtree_of_root_is_everything() {
        let tree = RootedTree::from_mst(&plus_shape());
        let mut sub = tree.subtree(tree.root());
        sub.sort_unstable();
        assert_eq!(sub, (0..tree.len()).collect::<Vec<_>>());
        // Subtree of a leaf is itself.
        let leaf = (0..tree.len()).find(|&v| tree.is_leaf(v)).unwrap();
        assert_eq!(tree.subtree(leaf), vec![leaf]);
    }

    #[test]
    fn height_and_degrees_of_path() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let mst = EuclideanMst::build(&pts).unwrap();
        let tree = RootedTree::from_mst(&mst);
        assert_eq!(tree.height(), 4);
        assert_eq!(tree.max_degree(), 2);
        assert!((tree.lmax() - 1.0).abs() < 1e-12);
        // Every non-root vertex has a parent edge of length 1.
        for v in 0..tree.len() {
            if v != tree.root() {
                assert!((tree.parent_edge_length(v).unwrap() - 1.0).abs() < 1e-12);
            } else {
                assert!(tree.parent_edge_length(v).is_none());
            }
        }
    }

    #[test]
    fn single_vertex_tree() {
        let mst = EuclideanMst::build(&[Point::new(0.0, 0.0)]).unwrap();
        let tree = RootedTree::from_mst(&mst);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root(), 0);
        assert!(tree.is_leaf(0));
        assert_eq!(tree.post_order(), vec![0]);
        assert_eq!(tree.height(), 0);
    }
}
