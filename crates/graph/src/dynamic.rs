//! Incrementally maintained Euclidean MSTs for dynamic deployments.
//!
//! [`DynamicEmst`] keeps a degree-5 Euclidean MST correct under three edits —
//! [`insert`](DynamicEmst::insert), [`remove`](DynamicEmst::remove) and
//! [`move_to`](DynamicEmst::move_to) — without re-running the full engine:
//!
//! * **Insert** uses the classic vertex-insertion fact (Chin & Houck): a
//!   minimum spanning tree of `P ∪ {q}` exists inside `T ∪ star(q)`, where
//!   `T` is any MST of `P` and `star(q)` are the edges from `q` to every
//!   point.  The cached tree edges are kept sorted, so one Kruskal pass over
//!   the merge of two sorted lists (`n − 1` old edges, `n` star edges)
//!   rebuilds the tree in O(n log n) with a tiny constant — no spatial
//!   queries, no Borůvka rounds.
//! * **Remove** deletes the vertex's ≤ 5 incident edges, which splits the
//!   tree into at most 5 components, every remaining tree edge still being
//!   MST-valid (each stays a minimum edge across its own cut).  The repair is
//!   a *localized Borůvka*: repeatedly take the smallest component and ask
//!   the cached [`DynamicKdTree`] for its minimum outgoing edge
//!   (nearest-foreign queries per member), merging until one component
//!   remains — at most 4 merges, each exact by the cut property.
//! * **Move** is detach + re-attach under the same slot.
//!
//! Vertices are identified by stable **slots** (monotonically assigned
//! `usize` ids); removed slots are tombstoned, and the spatial index compacts
//! itself via [`DynamicKdTree`]'s threshold rebuilds.  After every edit the
//! engine reports which live slots had their tree neighborhood changed
//! ([`DynamicEmst::changed_slots`]) — the hook the incremental re-orientation
//! in `antennae-core` keys its dirty set off.
//!
//! Exactness contract (pinned by the edit-script oracle suite in the root
//! `tests/`): after every edit the maintained tree is a genuine MST of the
//! live point set — same total weight and same `lmax` as a from-scratch
//! [`EuclideanMst::build`] — and its maximum degree is repaired to 5 with the
//! same tie-exchange the static engine uses.

use crate::euclidean::{EmstError, EuclideanMst, MAX_MST_DEGREE};
use crate::graph::Graph;
use crate::union_find::UnionFind;
use antennae_geometry::angular::{circular_gaps, sort_ccw};
use antennae_geometry::{DynamicKdTree, Point};

/// A tree edge in slot space, ordered by the engines' shared tie-broken
/// total order `(weight, min slot, max slot)`.
type SlotEdge = (f64, u32, u32);

fn edge_order(a: SlotEdge, b: SlotEdge) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

fn make_edge(w: f64, a: usize, b: usize) -> SlotEdge {
    (w, a.min(b) as u32, a.max(b) as u32)
}

/// Errors reported by [`DynamicEmst`] edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicEmstError {
    /// The referenced slot is not a live sensor.
    UnknownSlot(usize),
}

impl std::fmt::Display for DynamicEmstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicEmstError::UnknownSlot(slot) => {
                write!(f, "slot {slot} is not a live sensor")
            }
        }
    }
}

impl std::error::Error for DynamicEmstError {}

/// An incrementally maintained degree-5 Euclidean MST (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct DynamicEmst {
    /// Slot-indexed sensor locations (tombstoned slots keep a stale point).
    points: Vec<Point>,
    alive: Vec<bool>,
    live: usize,
    /// Slot-space tree adjacency, each list sorted ascending by slot.
    adj: Vec<Vec<(usize, f64)>>,
    /// The tree's edges sorted by the shared `(w, min, max)` order — both
    /// the cache the insert path's Kruskal merge runs against and the
    /// source of `lmax` (its last entry).
    sorted_edges: Vec<SlotEdge>,
    kd: DynamicKdTree,
    /// Live slots whose tree neighborhood changed in the last edit.
    changed: Vec<usize>,
}

impl DynamicEmst {
    /// Builds the engine over an initial deployment (slot `i` = point `i`),
    /// delegating the first tree to the static [`EuclideanMst::build`].
    ///
    /// An **empty** initial deployment is allowed: the engine starts with no
    /// live slots (edgeless, `lmax == 0`) and grows through
    /// [`DynamicEmst::insert`] — the shape a long-running service needs when
    /// a deployment is registered before its first sensor arrives.
    pub fn new(points: &[Point]) -> Result<Self, EmstError> {
        if points.is_empty() {
            return Ok(DynamicEmst {
                points: Vec::new(),
                alive: Vec::new(),
                live: 0,
                adj: Vec::new(),
                sorted_edges: Vec::new(),
                kd: DynamicKdTree::new(&[]),
                changed: Vec::new(),
            });
        }
        let initial = EuclideanMst::build(points)?;
        let n = points.len();
        let mut sorted_edges: Vec<SlotEdge> = initial
            .edges()
            .iter()
            .map(|e| make_edge(e.weight, e.u, e.v))
            .collect();
        sorted_edges.sort_unstable_by(|&a, &b| edge_order(a, b));
        let mut emst = DynamicEmst {
            points: points.to_vec(),
            alive: vec![true; n],
            live: n,
            adj: vec![Vec::new(); n],
            sorted_edges,
            kd: DynamicKdTree::from_dense(points),
            changed: Vec::new(),
        };
        emst.rebuild_adjacency();
        Ok(emst)
    }

    /// Number of live sensors.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Returns `true` when `slot` holds a live sensor.
    pub fn is_alive(&self, slot: usize) -> bool {
        self.alive.get(slot).copied().unwrap_or(false)
    }

    /// The location of a live slot.
    pub fn point(&self, slot: usize) -> Point {
        debug_assert!(self.is_alive(slot));
        self.points[slot]
    }

    /// Tree neighbours of a live slot, ascending by slot, with edge lengths.
    pub fn neighbors(&self, slot: usize) -> &[(usize, f64)] {
        &self.adj[slot]
    }

    /// The longest tree edge (`lmax`), 0 when fewer than two sensors live.
    pub fn lmax(&self) -> f64 {
        self.sorted_edges.last().map_or(0.0, |&(w, _, _)| w)
    }

    /// Total tree weight.
    pub fn total_weight(&self) -> f64 {
        self.sorted_edges.iter().map(|&(w, _, _)| w).sum()
    }

    /// Maximum tree degree over live slots.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Live slots in ascending order.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.points.len()).filter(|&s| self.alive[s]).collect()
    }

    /// One past the largest slot ever assigned — the slot the next
    /// [`DynamicEmst::insert`] will return.  Lets callers (the deployment
    /// server's edit validator) project id assignment without mutating.
    pub fn slot_bound(&self) -> usize {
        self.points.len()
    }

    /// The shared spatial index over the live sensors (reused by the
    /// verification side of a dynamic solver session).
    pub fn kd(&self) -> &DynamicKdTree {
        &self.kd
    }

    /// Live slots whose tree neighborhood changed in the most recent edit
    /// (sorted, deduplicated; includes an inserted/moved slot itself).
    pub fn changed_slots(&self) -> &[usize] {
        &self.changed
    }

    /// Inserts a sensor, returning its freshly assigned slot.
    pub fn insert(&mut self, p: Point) -> usize {
        let slot = self.points.len();
        self.points.push(p);
        self.alive.push(true);
        self.adj.push(Vec::new());
        self.live += 1;
        self.kd.insert(slot, p);
        self.changed.clear();
        self.changed.push(slot);
        self.attach(slot);
        self.finish_edit();
        slot
    }

    /// Removes a live sensor (errors on dead slots).  Draining to zero is
    /// allowed: removing the last sensor leaves an edgeless engine with
    /// `lmax == 0` that can be regrown through [`DynamicEmst::insert`].
    pub fn remove(&mut self, slot: usize) -> Result<(), DynamicEmstError> {
        if !self.is_alive(slot) {
            return Err(DynamicEmstError::UnknownSlot(slot));
        }
        self.changed.clear();
        self.alive[slot] = false;
        self.live -= 1;
        self.kd.remove(slot);
        self.detach(slot);
        self.finish_edit();
        Ok(())
    }

    /// Moves a live sensor to a new location, keeping its slot.
    pub fn move_to(&mut self, slot: usize, p: Point) -> Result<(), DynamicEmstError> {
        if !self.is_alive(slot) {
            return Err(DynamicEmstError::UnknownSlot(slot));
        }
        self.changed.clear();
        self.changed.push(slot);
        // Detach from the tree, then re-attach at the new location.  The
        // slot leaves the spatial index *before* the detach so the
        // reconnection's nearest-foreign queries cannot wire an edge back to
        // the vacating sensor.
        self.kd.remove(slot);
        self.alive[slot] = false;
        self.live -= 1;
        self.detach(slot);
        self.points[slot] = p;
        self.kd.insert(slot, p);
        self.alive[slot] = true;
        self.live += 1;
        self.attach(slot);
        self.finish_edit();
        Ok(())
    }

    /// Dedup + drop-dead pass over the changed set after an edit.
    fn finish_edit(&mut self) {
        self.changed.retain(|&s| self.alive[s]);
        self.changed.sort_unstable();
        self.changed.dedup();
    }

    /// Connects `slot` (live, currently edge-less) to the spanning tree of
    /// the other live slots via a Kruskal pass over the merge of the cached
    /// sorted tree edges and `slot`'s sorted star.
    fn attach(&mut self, slot: usize) {
        if self.live <= 1 {
            return;
        }
        let apex = self.points[slot];
        let mut star: Vec<SlotEdge> = Vec::with_capacity(self.live - 1);
        for t in 0..self.points.len() {
            if t != slot && self.alive[t] {
                star.push(make_edge(apex.distance(&self.points[t]), slot, t));
            }
        }
        star.sort_unstable_by(|&a, &b| edge_order(a, b));

        let mut uf = UnionFind::new(self.points.len());
        let mut new_edges: Vec<SlotEdge> = Vec::with_capacity(self.live - 1);
        let (mut i, mut j) = (0usize, 0usize);
        while new_edges.len() < self.live - 1 {
            let take_old = match (self.sorted_edges.get(i), star.get(j)) {
                (Some(&a), Some(&b)) => edge_order(a, b) == std::cmp::Ordering::Less,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let e = if take_old {
                i += 1;
                self.sorted_edges[i - 1]
            } else {
                j += 1;
                star[j - 1]
            };
            if uf.union(e.1 as usize, e.2 as usize) {
                new_edges.push(e);
            }
        }
        self.apply_tree(new_edges);
        self.repair_degrees();
    }

    /// Removes `slot`'s incident edges and reconnects the resulting ≤ 5
    /// components with their minimum outgoing edges (localized Borůvka over
    /// the cached kd-tree).  `slot` must already be excluded from the live
    /// set (dead, or temporarily detached by a move).
    fn detach(&mut self, slot: usize) {
        let incident: Vec<(usize, f64)> = std::mem::take(&mut self.adj[slot]);
        for &(u, w) in &incident {
            self.adj[u].retain(|&(v, _)| v != slot);
            self.remove_sorted(make_edge(w, slot, u));
            self.changed.push(u);
        }
        if incident.len() >= 2 {
            self.reconnect();
        }
        self.repair_degrees();
    }

    /// Borůvka-style reconnection of the current spanning forest of the live
    /// slots into a single tree.
    fn reconnect(&mut self) {
        // Label every live slot with its forest component.
        let mut uf = UnionFind::new(self.points.len());
        for &(_, a, b) in &self.sorted_edges {
            uf.union(a as usize, b as usize);
        }
        let mut labels = vec![usize::MAX; self.points.len()];
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut component_of_root: Vec<usize> = vec![usize::MAX; self.points.len()];
        for (s, alive) in self.alive.iter().enumerate() {
            if !alive {
                continue;
            }
            let root = uf.find(s);
            if component_of_root[root] == usize::MAX {
                component_of_root[root] = components.len();
                components.push(Vec::new());
            }
            let c = component_of_root[root];
            labels[s] = c;
            components[c].push(s);
        }

        while components.len() > 1 {
            // Smallest component first: its members issue the nearest-foreign
            // queries, so the query volume tracks the small side of the cut.
            let (ci, _) = components
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.len())
                .expect("non-empty component list");
            let label = ci;
            let mut best: Option<(SlotEdge, usize)> = None; // (edge, foreign slot)
            for &v in &components[ci] {
                let found = self
                    .kd
                    .nearest_filtered_slot(&self.points[v], |s| labels[s] == label);
                if let Some((u, d)) = found {
                    let e = make_edge(d, v, u);
                    if best.is_none_or(|(b, _)| edge_order(e, b) == std::cmp::Ordering::Less) {
                        best = Some((e, u));
                    }
                }
            }
            let (edge, foreign) = best.expect("a second component exists");
            let (a, b) = (edge.1 as usize, edge.2 as usize);
            self.adj_insert(a, b, edge.0);
            self.adj_insert(b, a, edge.0);
            self.insert_sorted(edge);
            self.changed.push(a);
            self.changed.push(b);

            // Merge the small component into the foreign one.
            let target = labels[foreign];
            let members = std::mem::take(&mut components[ci]);
            for &m in &members {
                labels[m] = target;
            }
            components[target].extend(members);
            components.swap_remove(ci);
            // swap_remove moved the last component's index; fix its labels.
            if ci < components.len() {
                for &m in &components[ci] {
                    labels[m] = ci;
                }
            }
        }
    }

    /// Replaces the tree with `new_edges` (already in sorted edge order):
    /// diffs against the old edge set to track changed slots, then rebuilds
    /// the adjacency lists.
    fn apply_tree(&mut self, new_edges: Vec<SlotEdge>) {
        let mut old: Vec<(u32, u32)> = self.sorted_edges.iter().map(|&(_, a, b)| (a, b)).collect();
        let mut new: Vec<(u32, u32)> = new_edges.iter().map(|&(_, a, b)| (a, b)).collect();
        old.sort_unstable();
        new.sort_unstable();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() || j < new.len() {
            match (old.get(i), new.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    self.changed.push(a.0 as usize);
                    self.changed.push(a.1 as usize);
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    self.changed.push(b.0 as usize);
                    self.changed.push(b.1 as usize);
                    j += 1;
                }
                (Some(&a), None) => {
                    self.changed.push(a.0 as usize);
                    self.changed.push(a.1 as usize);
                    i += 1;
                }
                (None, Some(&b)) => {
                    self.changed.push(b.0 as usize);
                    self.changed.push(b.1 as usize);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        self.sorted_edges = new_edges;
        self.rebuild_adjacency();
    }

    fn rebuild_adjacency(&mut self) {
        for list in &mut self.adj {
            list.clear();
        }
        for &(w, a, b) in &self.sorted_edges {
            self.adj[a as usize].push((b as usize, w));
            self.adj[b as usize].push((a as usize, w));
        }
        for list in &mut self.adj {
            list.sort_unstable_by_key(|&(s, _)| s);
        }
    }

    fn adj_insert(&mut self, u: usize, v: usize, w: f64) {
        let list = &mut self.adj[u];
        let pos = list.partition_point(|&(s, _)| s < v);
        list.insert(pos, (v, w));
    }

    fn insert_sorted(&mut self, e: SlotEdge) {
        let pos = self
            .sorted_edges
            .partition_point(|&x| edge_order(x, e) == std::cmp::Ordering::Less);
        self.sorted_edges.insert(pos, e);
    }

    fn remove_sorted(&mut self, e: SlotEdge) {
        let pos = self
            .sorted_edges
            .partition_point(|&x| edge_order(x, e) == std::cmp::Ordering::Less);
        debug_assert!(
            self.sorted_edges.get(pos) == Some(&e),
            "edge {e:?} not in cache"
        );
        self.sorted_edges.remove(pos);
    }

    /// The same local tie-exchange the static engine runs: while some vertex
    /// exceeds degree 5 (only possible under exact 60°/equal-length ties),
    /// replace the longer of its two angularly closest star edges by the
    /// edge between the two neighbours.
    fn repair_degrees(&mut self) {
        let mut budget = 4 * self.live + 16;
        loop {
            let Some(v) = (0..self.points.len())
                .find(|&v| self.alive[v] && self.adj[v].len() > MAX_MST_DEGREE)
            else {
                return;
            };
            if budget == 0 {
                return;
            }
            budget -= 1;
            let neighbor_ids: Vec<usize> = self.adj[v].iter().map(|&(u, _)| u).collect();
            let neighbor_pts: Vec<Point> = neighbor_ids.iter().map(|&u| self.points[u]).collect();
            let sorted = sort_ccw(&self.points[v], &neighbor_pts);
            let gaps = circular_gaps(&sorted);
            let d = sorted.len();
            let (closest_pair_idx, _) = gaps
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("degree > 5 vertex has neighbours");
            let a = neighbor_ids[sorted[closest_pair_idx].index];
            let b = neighbor_ids[sorted[(closest_pair_idx + 1) % d].index];
            let da = self.points[v].distance(&self.points[a]);
            let db = self.points[v].distance(&self.points[b]);
            let drop_endpoint = if da >= db { a } else { b };
            let dropped_w = if da >= db { da } else { db };
            self.adj[v].retain(|&(u, _)| u != drop_endpoint);
            self.adj[drop_endpoint].retain(|&(u, _)| u != v);
            self.remove_sorted(make_edge(dropped_w, v, drop_endpoint));
            let w = self.points[a].distance(&self.points[b]);
            self.adj_insert(a, b, w);
            self.adj_insert(b, a, w);
            self.insert_sorted(make_edge(w, a, b));
            self.changed.push(v);
            self.changed.push(a);
            self.changed.push(b);
        }
    }

    /// Materializes the live deployment as a dense [`EuclideanMst`].
    ///
    /// Live slots are mapped to dense indices in ascending slot order, and
    /// tree edges are inserted sorted by `(min, max)` dense endpoints so
    /// that every vertex's adjacency list comes out ascending — the same
    /// canonical neighbour order the incremental re-orientation uses, which
    /// is what makes the dynamic scheme bit-identical to a full re-orient on
    /// the materialized instance even under angular ties.
    pub fn materialize(&self) -> Result<EuclideanMst, EmstError> {
        let slots = self.live_slots();
        if slots.is_empty() {
            return Err(EmstError::EmptyPointSet);
        }
        let mut dense_of = vec![u32::MAX; self.points.len()];
        for (dense, &slot) in slots.iter().enumerate() {
            dense_of[slot] = dense as u32;
        }
        let points: Vec<Point> = slots.iter().map(|&s| self.points[s]).collect();
        let mut edges: Vec<(u32, u32, f64)> = self
            .sorted_edges
            .iter()
            .map(|&(w, a, b)| {
                // Slot→dense is monotone, so (min, max) is preserved.
                (dense_of[a as usize], dense_of[b as usize], w)
            })
            .collect();
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut tree = Graph::new(points.len());
        for (a, b, w) in edges {
            tree.add_edge(a as usize, b as usize, w);
        }
        EuclideanMst::from_precomputed(points, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0)))
            .collect()
    }

    /// The maintained tree must match a from-scratch build: spanning, same
    /// weight, same `lmax`, degree ≤ 5.
    fn assert_matches_rebuild(emst: &DynamicEmst) {
        let live: Vec<Point> = emst.live_slots().iter().map(|&s| emst.point(s)).collect();
        let fresh = EuclideanMst::build(&live).unwrap();
        assert_eq!(emst.sorted_edges.len(), live.len().saturating_sub(1));
        let scale = fresh.total_weight().max(1.0);
        assert!(
            (emst.total_weight() - fresh.total_weight()).abs() < 1e-9 * scale,
            "weight {} vs rebuild {}",
            emst.total_weight(),
            fresh.total_weight()
        );
        assert!(
            (emst.lmax() - fresh.lmax()).abs() < 1e-9 * scale,
            "lmax {} vs rebuild {}",
            emst.lmax(),
            fresh.lmax()
        );
        assert!(emst.max_degree() <= MAX_MST_DEGREE);
        // The materialized dense tree round-trips.
        let dense = emst.materialize().unwrap();
        assert_eq!(dense.len(), live.len());
        assert!((dense.total_weight() - emst.total_weight()).abs() < 1e-9 * scale);
        assert_eq!(dense.lmax(), emst.lmax());
    }

    #[test]
    fn insert_grows_a_correct_tree() {
        let mut emst = DynamicEmst::new(&random_points(2, 1)).unwrap();
        let extra = random_points(30, 2);
        for p in extra {
            emst.insert(p);
            assert_matches_rebuild(&emst);
            assert!(!emst.changed_slots().is_empty());
        }
        assert_eq!(emst.live_count(), 32);
    }

    #[test]
    fn remove_repairs_the_tree() {
        let pts = random_points(40, 3);
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        while emst.live_count() > 1 {
            let live = emst.live_slots();
            let victim = live[rng.random_range(0..live.len())];
            emst.remove(victim).unwrap();
            assert_matches_rebuild(&emst);
        }
        // Draining to one sensor leaves an edgeless tree with lmax 0…
        assert_eq!(emst.lmax(), 0.0);
        // …and draining all the way to zero is allowed.
        emst.remove(emst.live_slots()[0]).unwrap();
        assert_eq!(emst.live_count(), 0);
        assert_eq!(emst.lmax(), 0.0);
        assert_eq!(emst.total_weight(), 0.0);
        assert!(emst.live_slots().is_empty());
    }

    #[test]
    fn empty_engine_grows_and_drains() {
        let mut emst = DynamicEmst::new(&[]).unwrap();
        assert_eq!(emst.live_count(), 0);
        assert_eq!(emst.lmax(), 0.0);
        assert!(matches!(
            emst.remove(0),
            Err(DynamicEmstError::UnknownSlot(0))
        ));

        // Regrow from nothing; slots keep their monotone assignment.
        let a = emst.insert(Point::new(0.0, 0.0));
        let b = emst.insert(Point::new(3.0, 4.0));
        assert_eq!((a, b), (0, 1));
        assert_eq!(emst.slot_bound(), 2);
        assert_eq!(emst.live_count(), 2);
        assert!((emst.lmax() - 5.0).abs() < 1e-12);
        assert_matches_rebuild(&emst);

        // Drain back to zero and grow once more: tombstoned slots stay dead.
        emst.remove(a).unwrap();
        emst.remove(b).unwrap();
        assert_eq!(emst.live_count(), 0);
        let c = emst.insert(Point::new(1.0, 1.0));
        assert_eq!(c, 2);
        assert_eq!(emst.live_slots(), vec![2]);
        assert_eq!(emst.lmax(), 0.0);
    }

    #[test]
    fn moves_track_the_rebuild() {
        let pts = random_points(25, 4);
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..40 {
            let live = emst.live_slots();
            let slot = live[rng.random_range(0..live.len())];
            let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
            emst.move_to(slot, p).unwrap();
            assert!((emst.point(slot).x - p.x).abs() < 1e-15);
            assert_matches_rebuild(&emst);
            assert!(emst.changed_slots().contains(&slot));
        }
    }

    #[test]
    fn mixed_script_with_duplicates_and_ties() {
        // Integer lattice plus exact duplicates: maximal tie pressure.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..4 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let dup = emst.insert(Point::new(2.0, 2.0)); // exact duplicate
        assert_matches_rebuild(&emst);
        emst.insert(Point::new(2.0, 2.0));
        assert_matches_rebuild(&emst);
        emst.remove(dup).unwrap();
        assert_matches_rebuild(&emst);
        emst.move_to(7, Point::new(0.0, 0.0)).unwrap(); // onto another point
        assert_matches_rebuild(&emst);
    }

    #[test]
    fn dead_slots_are_rejected() {
        let mut emst = DynamicEmst::new(&random_points(5, 6)).unwrap();
        emst.remove(2).unwrap();
        assert!(matches!(
            emst.remove(2),
            Err(DynamicEmstError::UnknownSlot(2))
        ));
        assert!(matches!(
            emst.move_to(2, Point::ORIGIN),
            Err(DynamicEmstError::UnknownSlot(2))
        ));
        assert!(!emst.is_alive(2));
        assert_eq!(emst.live_slots(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn changed_slots_are_local_for_isolated_edits() {
        // A long path: moving one interior vertex slightly must not touch
        // the far ends.
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut emst = DynamicEmst::new(&pts).unwrap();
        emst.move_to(25, Point::new(25.0, 0.1)).unwrap();
        assert_matches_rebuild(&emst);
        let changed = emst.changed_slots();
        assert!(changed.contains(&25));
        assert!(changed.len() <= 6, "changed set {changed:?} not local");
        assert!(!changed.contains(&0) && !changed.contains(&49));
    }
}
