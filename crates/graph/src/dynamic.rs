//! Incrementally maintained Euclidean MSTs for dynamic deployments.
//!
//! [`DynamicEmst`] keeps a degree-5 Euclidean MST correct under three edits —
//! [`insert`](DynamicEmst::insert), [`remove`](DynamicEmst::remove) and
//! [`move_to`](DynamicEmst::move_to) — without re-running the full engine:
//!
//! * **Insert** uses the classic vertex-insertion fact (Chin & Houck): a
//!   minimum spanning tree of `P ∪ {q}` exists inside `T ∪ star(q)`, where
//!   `T` is any MST of `P` and `star(q)` are the edges from `q` to every
//!   point.  The cached tree edges are kept sorted, so one Kruskal pass over
//!   the merge of two sorted lists (`n − 1` old edges, `n` star edges)
//!   rebuilds the tree in O(n log n) with a tiny constant — no spatial
//!   queries, no Borůvka rounds.
//! * **Remove** deletes the vertex's ≤ 5 incident edges, which splits the
//!   tree into at most 5 components, every remaining tree edge still being
//!   MST-valid (each stays a minimum edge across its own cut).  The repair is
//!   a *localized Borůvka*: repeatedly take the smallest component and ask
//!   the cached [`DynamicKdTree`] for its minimum outgoing edge
//!   (nearest-foreign queries per member), merging until one component
//!   remains — at most 4 merges, each exact by the cut property.
//! * **Move** is detach + re-attach under the same slot.
//!
//! Vertices are identified by stable **slots** (monotonically assigned
//! `usize` ids); removed slots are tombstoned, and the spatial index compacts
//! itself via [`DynamicKdTree`]'s threshold rebuilds.  After every edit the
//! engine reports which live slots had their tree neighborhood changed
//! ([`DynamicEmst::changed_slots`]) — the hook the incremental re-orientation
//! in `antennae-core` keys its dirty set off.
//!
//! Exactness contract (pinned by the edit-script oracle suite in the root
//! `tests/`): after every edit the maintained tree is a genuine MST of the
//! live point set — same total weight and same `lmax` as a from-scratch
//! [`EuclideanMst::build`] — and its maximum degree is repaired to 5 with the
//! same tie-exchange the static engine uses.

use crate::euclidean::{EmstError, EuclideanMst, MAX_MST_DEGREE};
use crate::graph::Graph;
use crate::sharded::{build_sharded, StitchStats};
use crate::union_find::UnionFind;
use antennae_geometry::angular::{circular_gaps, sort_ccw};
use antennae_geometry::{DynamicKdTree, Point, TileGrid, TiledKdForest};

/// Inclusive widening applied to the bounded-star collection radius of the
/// tiled attach path, so a star edge whose *weight* rounds to exactly the
/// radius can never be excluded by the squared-distance ball test.
/// Supersets of the exact star are harmless: the Kruskal merge skips edges
/// past the connection point via union-find, so extra candidates cannot
/// change the take sequence.
const STAR_SLACK: f64 = 1.0 + 4.0 * f64::EPSILON;

/// The spatial index backing a [`DynamicEmst`]: one global kd-tree, or a
/// per-tile forest when the engine was built sharded.  All query results are
/// bit-identical between the two (the forest reproduces the global
/// smaller-slot tie-break; see `antennae_geometry::tiles`); only the edit
/// *cost profile* differs — the tiled variant localizes rebuild work to one
/// tile and unlocks the bounded-star attach.
#[derive(Debug, Clone)]
enum SpatialIndex {
    Global(DynamicKdTree),
    Tiled(TiledKdForest),
}

impl SpatialIndex {
    fn insert(&mut self, slot: usize, p: Point) {
        match self {
            SpatialIndex::Global(kd) => kd.insert(slot, p),
            SpatialIndex::Tiled(forest) => forest.insert(slot, p),
        }
    }

    fn remove(&mut self, slot: usize) {
        match self {
            SpatialIndex::Global(kd) => kd.remove(slot),
            SpatialIndex::Tiled(forest) => forest.remove(slot),
        }
    }

    fn within_radius_with(
        &self,
        query: &Point,
        radius: f64,
        scratch: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        match self {
            SpatialIndex::Global(kd) => kd.within_radius_with(query, radius, scratch, out),
            SpatialIndex::Tiled(forest) => forest.within_radius_with(query, radius, scratch, out),
        }
    }

    fn nearest_filtered_slot<F: Fn(usize) -> bool>(
        &self,
        query: &Point,
        skip: F,
    ) -> Option<(usize, f64)> {
        match self {
            SpatialIndex::Global(kd) => kd.nearest_filtered_slot(query, skip),
            SpatialIndex::Tiled(forest) => forest.nearest_filtered_slot(query, skip),
        }
    }
}

/// A tree edge in slot space, ordered by the engines' shared tie-broken
/// total order `(weight, min slot, max slot)`.
type SlotEdge = (f64, u32, u32);

fn edge_order(a: SlotEdge, b: SlotEdge) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

fn make_edge(w: f64, a: usize, b: usize) -> SlotEdge {
    (w, a.min(b) as u32, a.max(b) as u32)
}

/// Errors reported by [`DynamicEmst`] edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicEmstError {
    /// The referenced slot is not a live sensor.
    UnknownSlot(usize),
}

impl std::fmt::Display for DynamicEmstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicEmstError::UnknownSlot(slot) => {
                write!(f, "slot {slot} is not a live sensor")
            }
        }
    }
}

impl std::error::Error for DynamicEmstError {}

/// An incrementally maintained degree-5 Euclidean MST (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct DynamicEmst {
    /// Slot-indexed sensor locations (tombstoned slots keep a stale point).
    points: Vec<Point>,
    alive: Vec<bool>,
    live: usize,
    /// Slot-space tree adjacency, each list sorted ascending by slot.
    adj: Vec<Vec<(usize, f64)>>,
    /// The tree's edges sorted by the shared `(w, min, max)` order — both
    /// the cache the insert path's Kruskal merge runs against and the
    /// source of `lmax` (its last entry).
    sorted_edges: Vec<SlotEdge>,
    index: SpatialIndex,
    /// Live slots whose tree neighborhood changed in the last edit.
    changed: Vec<usize>,
    /// Component-labeling scratch shared by [`DynamicEmst::reconnect`]
    /// (group labels) and [`DynamicEmst::tree_path_max`] (BFS sides): a slot
    /// is labeled in the current pass iff `label_stamp[slot] == label_epoch`.
    /// Stamping makes each pass O(vertices touched), not O(n) clears.
    label_stamp: Vec<u64>,
    label_of: Vec<u32>,
    label_epoch: u64,
    /// BFS parent pointers + parent-edge weights for
    /// [`DynamicEmst::tree_path_max`], valid under the same stamp scheme.
    path_parent: Vec<u32>,
    path_w: Vec<f64>,
}

impl DynamicEmst {
    /// Builds the engine over an initial deployment (slot `i` = point `i`),
    /// delegating the first tree to the static [`EuclideanMst::build`].
    ///
    /// An **empty** initial deployment is allowed: the engine starts with no
    /// live slots (edgeless, `lmax == 0`) and grows through
    /// [`DynamicEmst::insert`] — the shape a long-running service needs when
    /// a deployment is registered before its first sensor arrives.
    pub fn new(points: &[Point]) -> Result<Self, EmstError> {
        if points.is_empty() {
            return Ok(Self::empty(SpatialIndex::Global(DynamicKdTree::new(&[]))));
        }
        let initial = EuclideanMst::build(points)?;
        let index = SpatialIndex::Global(DynamicKdTree::from_dense(points));
        Ok(Self::from_initial(points, &initial, index))
    }

    /// Builds a **tiled** engine over an initial deployment: the first tree
    /// comes from the sharded stitched builder ([`build_sharded`], which is
    /// bit-identical to [`EuclideanMst::build`]), and the spatial index is a
    /// per-tile [`TiledKdForest`] over `grid`.  Subsequent edits behave
    /// edit-for-edit identically to a global engine — same tree bits, same
    /// changed-slot sets — but rebuild work localizes to the owning tile and
    /// inserts use a bounded star collected from a Lemma-1-scale ball instead
    /// of an all-points star (the `n=10⁵` single-edit headline).
    ///
    /// Also returns the initial build's [`StitchStats`] for telemetry.
    pub fn new_tiled(
        points: &[Point],
        grid: TileGrid,
        threads: usize,
    ) -> Result<(Self, StitchStats), EmstError> {
        let empty_stats = StitchStats {
            tiles: grid.tiles(),
            occupied_tiles: 0,
            largest_tile: 0,
            tile_edges: 0,
            cross_edges: 0,
            stitch_rounds: 0,
            stitched: false,
        };
        if points.is_empty() {
            let forest = TiledKdForest::new(grid, &[]);
            return Ok((Self::empty(SpatialIndex::Tiled(forest)), empty_stats));
        }
        let (initial, stats) = build_sharded(points, &grid, threads)?;
        let entries: Vec<(usize, Point)> = points.iter().copied().enumerate().collect();
        let index = SpatialIndex::Tiled(TiledKdForest::new(grid, &entries));
        Ok((Self::from_initial(points, &initial, index), stats))
    }

    fn empty(index: SpatialIndex) -> Self {
        DynamicEmst {
            points: Vec::new(),
            alive: Vec::new(),
            live: 0,
            adj: Vec::new(),
            sorted_edges: Vec::new(),
            index,
            changed: Vec::new(),
            label_stamp: Vec::new(),
            label_of: Vec::new(),
            label_epoch: 0,
            path_parent: Vec::new(),
            path_w: Vec::new(),
        }
    }

    fn from_initial(points: &[Point], initial: &EuclideanMst, index: SpatialIndex) -> Self {
        let n = points.len();
        let mut sorted_edges: Vec<SlotEdge> = initial
            .edges()
            .iter()
            .map(|e| make_edge(e.weight, e.u, e.v))
            .collect();
        sorted_edges.sort_unstable_by(|&a, &b| edge_order(a, b));
        let mut emst = DynamicEmst {
            points: points.to_vec(),
            alive: vec![true; n],
            live: n,
            adj: vec![Vec::new(); n],
            sorted_edges,
            index,
            changed: Vec::new(),
            label_stamp: vec![0; n],
            label_of: vec![0; n],
            label_epoch: 0,
            path_parent: vec![0; n],
            path_w: vec![0.0; n],
        };
        emst.rebuild_adjacency();
        emst
    }

    /// Number of live sensors.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Returns `true` when `slot` holds a live sensor.
    pub fn is_alive(&self, slot: usize) -> bool {
        self.alive.get(slot).copied().unwrap_or(false)
    }

    /// The location of a live slot.
    pub fn point(&self, slot: usize) -> Point {
        debug_assert!(self.is_alive(slot));
        self.points[slot]
    }

    /// Tree neighbours of a live slot, ascending by slot, with edge lengths.
    pub fn neighbors(&self, slot: usize) -> &[(usize, f64)] {
        &self.adj[slot]
    }

    /// The longest tree edge (`lmax`), 0 when fewer than two sensors live.
    pub fn lmax(&self) -> f64 {
        self.sorted_edges.last().map_or(0.0, |&(w, _, _)| w)
    }

    /// Total tree weight.
    pub fn total_weight(&self) -> f64 {
        self.sorted_edges.iter().map(|&(w, _, _)| w).sum()
    }

    /// Maximum tree degree over live slots.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Live slots in ascending order.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.points.len()).filter(|&s| self.alive[s]).collect()
    }

    /// One past the largest slot ever assigned — the slot the next
    /// [`DynamicEmst::insert`] will return.  Lets callers (the deployment
    /// server's edit validator) project id assignment without mutating.
    pub fn slot_bound(&self) -> usize {
        self.points.len()
    }

    /// Queries the shared spatial index for every live slot within `radius`
    /// of `query` (closed ball, `out` sorted ascending) — reused by the
    /// verification side of a dynamic solver session.  `scratch` is caller
    /// scratch space so steady-state queries allocate nothing.
    pub fn within_radius_with(
        &self,
        query: &Point,
        radius: f64,
        scratch: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        self.index.within_radius_with(query, radius, scratch, out);
    }

    /// The tile grid of a tiled engine, `None` for a global one.
    pub fn tile_grid(&self) -> Option<&TileGrid> {
        match &self.index {
            SpatialIndex::Global(_) => None,
            SpatialIndex::Tiled(forest) => Some(forest.grid()),
        }
    }

    /// Occupied tile count of a tiled engine, `None` for a global one.
    pub fn occupied_tiles(&self) -> Option<usize> {
        match &self.index {
            SpatialIndex::Global(_) => None,
            SpatialIndex::Tiled(forest) => Some(forest.occupied_tiles()),
        }
    }

    /// Swaps the spatial index in place: `Some(grid)` re-tiles the engine
    /// over that grid, `None` reverts to one global kd-tree.  The tree, the
    /// slots and every future edit result are unaffected — the index is a
    /// pure acceleration structure and both variants answer queries
    /// bit-identically — so this is how a deployment recovered by replay
    /// (which starts empty, hence global) adopts its configured sharding
    /// after the fact.
    pub fn set_tile_grid(&mut self, grid: Option<TileGrid>) {
        let entries: Vec<(usize, Point)> = (0..self.points.len())
            .filter(|&s| self.alive[s])
            .map(|s| (s, self.points[s]))
            .collect();
        self.index = match grid {
            Some(grid) => SpatialIndex::Tiled(TiledKdForest::new(grid, &entries)),
            None => SpatialIndex::Global(DynamicKdTree::new(&entries)),
        };
    }

    /// The live points in ascending slot order (what a shard spec resolves
    /// its grid against).
    pub fn live_points(&self) -> Vec<Point> {
        (0..self.points.len())
            .filter(|&s| self.alive[s])
            .map(|s| self.points[s])
            .collect()
    }

    /// Live slots whose tree neighborhood changed in the most recent edit
    /// (sorted, deduplicated; includes an inserted/moved slot itself).
    pub fn changed_slots(&self) -> &[usize] {
        &self.changed
    }

    /// Inserts a sensor, returning its freshly assigned slot.
    pub fn insert(&mut self, p: Point) -> usize {
        let slot = self.points.len();
        self.points.push(p);
        self.alive.push(true);
        self.adj.push(Vec::new());
        self.label_stamp.push(0);
        self.label_of.push(0);
        self.path_parent.push(0);
        self.path_w.push(0.0);
        self.live += 1;
        self.index.insert(slot, p);
        self.changed.clear();
        self.changed.push(slot);
        self.attach(slot);
        self.finish_edit();
        slot
    }

    /// Removes a live sensor (errors on dead slots).  Draining to zero is
    /// allowed: removing the last sensor leaves an edgeless engine with
    /// `lmax == 0` that can be regrown through [`DynamicEmst::insert`].
    pub fn remove(&mut self, slot: usize) -> Result<(), DynamicEmstError> {
        if !self.is_alive(slot) {
            return Err(DynamicEmstError::UnknownSlot(slot));
        }
        self.changed.clear();
        self.alive[slot] = false;
        self.live -= 1;
        self.index.remove(slot);
        self.detach(slot);
        self.finish_edit();
        Ok(())
    }

    /// Moves a live sensor to a new location, keeping its slot.
    pub fn move_to(&mut self, slot: usize, p: Point) -> Result<(), DynamicEmstError> {
        if !self.is_alive(slot) {
            return Err(DynamicEmstError::UnknownSlot(slot));
        }
        self.changed.clear();
        self.changed.push(slot);
        // Detach from the tree, then re-attach at the new location.  The
        // slot leaves the spatial index *before* the detach so the
        // reconnection's nearest-foreign queries cannot wire an edge back to
        // the vacating sensor.
        self.index.remove(slot);
        self.alive[slot] = false;
        self.live -= 1;
        self.detach(slot);
        self.points[slot] = p;
        self.index.insert(slot, p);
        self.alive[slot] = true;
        self.live += 1;
        self.attach(slot);
        self.finish_edit();
        Ok(())
    }

    /// Dedup + drop-dead pass over the changed set after an edit.
    fn finish_edit(&mut self) {
        self.changed.retain(|&s| self.alive[s]);
        self.changed.sort_unstable();
        self.changed.dedup();
    }

    /// Connects `slot` (live, currently edge-less) to the spanning tree of
    /// the other live slots via a Kruskal pass over the merge of the cached
    /// sorted tree edges and `slot`'s sorted star.
    ///
    /// A global engine uses the full star (every live slot).  A tiled engine
    /// collects a **bounded star** instead: with `d₁` the distance to the
    /// nearest live sensor and `R = max(d₁, lmax)`, every star edge the
    /// Kruskal merge can possibly *take* has weight ≤ `R` — once all old
    /// tree edges (each ≤ `lmax`) and the edge to the nearest neighbour
    /// (`d₁`) have been processed, the forest is fully connected and later
    /// star edges are union-find no-ops.  Collecting the closed ball of
    /// radius `R` (ulp-widened by [`STAR_SLACK`]) therefore reproduces the
    /// full star's take sequence bit-for-bit while touching `O(ball)` points
    /// instead of `O(n)`.
    fn attach(&mut self, slot: usize) {
        if self.live <= 1 {
            return;
        }
        let apex = self.points[slot];
        match &self.index {
            SpatialIndex::Global(_) => {
                let mut star = Vec::with_capacity(self.live - 1);
                for t in 0..self.points.len() {
                    if t != slot && self.alive[t] {
                        star.push(make_edge(apex.distance(&self.points[t]), slot, t));
                    }
                }
                star.sort_unstable_by(|&a, &b| edge_order(a, b));
                self.attach_merge(&star);
            }
            SpatialIndex::Tiled(forest) => {
                let (_, d1) = forest
                    .nearest_filtered_slot(&apex, |s| s == slot)
                    .expect("live > 1, so a nearest foreign sensor exists");
                let radius = d1.max(self.lmax()) * STAR_SLACK;
                let mut scratch = Vec::new();
                let mut ball = Vec::new();
                forest.within_radius_with(&apex, radius, &mut scratch, &mut ball);
                let mut star: Vec<SlotEdge> = ball
                    .iter()
                    .filter(|&&t| t != slot)
                    .map(|&t| make_edge(apex.distance(&self.points[t]), slot, t))
                    .collect();
                star.sort_unstable_by(|&a, &b| edge_order(a, b));
                self.attach_local(slot, &star);
            }
        }
        self.repair_degrees();
    }

    /// Global-engine attach: Kruskal over merge(old tree, full star), applied
    /// *surgically* — the new tree differs from the old one only by the taken
    /// star edges and the old edges they displace (k taken ⟹ exactly k − 1
    /// displaced), so instead of rebuilding every adjacency list the handful
    /// of insertions/evictions is recorded as it happens.  `new_edges` comes
    /// out of the merge already in sorted edge order.
    fn attach_merge(&mut self, star: &[SlotEdge]) {
        let mut uf = UnionFind::new(self.points.len());
        let mut new_edges: Vec<SlotEdge> = Vec::with_capacity(self.live - 1);
        let (mut i, mut j) = (0usize, 0usize);
        while new_edges.len() < self.live - 1 {
            let take_old = match (self.sorted_edges.get(i), star.get(j)) {
                (Some(&a), Some(&b)) => edge_order(a, b) == std::cmp::Ordering::Less,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_old {
                i += 1;
                let e = self.sorted_edges[i - 1];
                if uf.union(e.1 as usize, e.2 as usize) {
                    new_edges.push(e);
                } else {
                    self.evict_adj(e);
                }
            } else {
                j += 1;
                let e = star[j - 1];
                if uf.union(e.1 as usize, e.2 as usize) {
                    new_edges.push(e);
                    self.adj_insert(e.1 as usize, e.2 as usize, e.0);
                    self.adj_insert(e.2 as usize, e.1 as usize, e.0);
                    self.changed.push(e.1 as usize);
                    self.changed.push(e.2 as usize);
                }
            }
        }
        // Old edges past the early exit close cycles in the completed tree
        // (Kruskal would reject them); they leave the tree too.
        while i < self.sorted_edges.len() {
            self.evict_adj(self.sorted_edges[i]);
            i += 1;
        }
        self.sorted_edges = new_edges;
    }

    /// Tiled-engine attach: exact vertex insertion without touching the rest
    /// of the tree.  `star` is the sorted bounded star (see
    /// [`DynamicEmst::attach`]); the final tree is the same unique MST the
    /// global merge produces, via two exact reductions:
    ///
    /// 1. **Cycle-property pruning.**  A candidate `(v, u)` with a witness
    ///    `z` such that both `(v, z)` and `(z, u)` precede it in the shared
    ///    edge order is the strict maximum of the triangle `v–z–u`, so it is
    ///    in no MST and can be dropped.  Any witness closer to `v` than `u`
    ///    lies inside the collection ball, so scanning earlier star entries
    ///    finds one whenever it exists; survivors are pairwise ≥ 60° apart
    ///    around `v` (else the nearer endpoint witnesses against the
    ///    farther), hence at most six — the relative-neighborhood-graph
    ///    bound.
    /// 2. **Path-max swaps (Chin & Houck).**  The smallest star edge is the
    ///    minimum edge across the cut `{v}`, so it joins unconditionally.
    ///    Each further survivor `e = (v, u)` closes one cycle with the
    ///    current tree path `v⋯u`; by the cycle property the tree stays
    ///    minimum iff the path's maximum edge `M` survives, so `e` enters
    ///    (and `M` leaves) exactly when `e < M`.  Each step keeps the tree
    ///    an exact MST of the edges considered so far, and the Chin–Houck
    ///    fact (`MST(P ∪ {v}) ⊆ T ∪ star(v)`) makes the final tree the MST
    ///    of the full point set.
    fn attach_local(&mut self, slot: usize, star: &[SlotEdge]) {
        debug_assert!(!star.is_empty(), "live > 1 leaves at least one candidate");
        let mut survivors: Vec<SlotEdge> = Vec::new();
        'candidates: for (ci, &e) in star.iter().enumerate() {
            let u = if e.1 as usize == slot { e.2 } else { e.1 } as usize;
            for &ze in &star[..ci] {
                let z = if ze.1 as usize == slot { ze.2 } else { ze.1 } as usize;
                let zu = make_edge(self.points[z].distance(&self.points[u]), z, u);
                if edge_order(zu, e) == std::cmp::Ordering::Less {
                    continue 'candidates;
                }
            }
            survivors.push(e);
        }

        let first = survivors[0];
        self.adj_insert(first.1 as usize, first.2 as usize, first.0);
        self.adj_insert(first.2 as usize, first.1 as usize, first.0);
        self.insert_sorted(first);
        self.changed.push(first.1 as usize);
        self.changed.push(first.2 as usize);

        for &e in &survivors[1..] {
            let u = if e.1 as usize == slot { e.2 } else { e.1 } as usize;
            let m = self.tree_path_max(slot, u);
            if edge_order(e, m) == std::cmp::Ordering::Less {
                let (ma, mb) = (m.1 as usize, m.2 as usize);
                self.adj[ma].retain(|&(x, _)| x != mb);
                self.adj[mb].retain(|&(x, _)| x != ma);
                self.remove_sorted(m);
                self.changed.push(ma);
                self.changed.push(mb);
                self.adj_insert(e.1 as usize, e.2 as usize, e.0);
                self.adj_insert(e.2 as usize, e.1 as usize, e.0);
                self.insert_sorted(e);
                self.changed.push(e.1 as usize);
                self.changed.push(e.2 as usize);
            }
        }
    }

    /// The maximum edge (by the shared order) on the unique tree path
    /// between live slots `a` and `b`, found by a bidirectional BFS that
    /// meets near the middle — O(vertices within half the path's hop
    /// distance), independent of the tree size for nearby endpoints.
    fn tree_path_max(&mut self, a: usize, b: usize) -> SlotEdge {
        debug_assert!(a != b);
        self.label_epoch += 1;
        let epoch = self.label_epoch;
        self.label_stamp[a] = epoch;
        self.label_of[a] = 0;
        self.path_parent[a] = u32::MAX;
        self.label_stamp[b] = epoch;
        self.label_of[b] = 1;
        self.path_parent[b] = u32::MAX;
        let mut frontiers: [Vec<usize>; 2] = [vec![a], vec![b]];
        let meet: (usize, usize, f64) = 'search: loop {
            // Expand the smaller frontier one full level.
            let side = usize::from(frontiers[1].len() < frontiers[0].len());
            debug_assert!(!frontiers[side].is_empty(), "endpoints are connected");
            let mut next = Vec::new();
            for &v in &frontiers[side] {
                for i in 0..self.adj[v].len() {
                    let (u, w) = self.adj[v][i];
                    if self.label_stamp[u] != epoch {
                        self.label_stamp[u] = epoch;
                        self.label_of[u] = side as u32;
                        self.path_parent[u] = v as u32;
                        self.path_w[u] = w;
                        next.push(u);
                    } else if self.label_of[u] as usize != side {
                        break 'search (v, u, w);
                    }
                }
            }
            frontiers[side] = next;
        };
        // The unique a–b path is (a ⋯ v) + (v, u) + (u ⋯ b); fold the
        // parent chains on both sides into the running maximum.
        let mut max = make_edge(meet.2, meet.0, meet.1);
        for start in [meet.0, meet.1] {
            let mut x = start;
            while self.path_parent[x] != u32::MAX {
                let p = self.path_parent[x] as usize;
                let e = make_edge(self.path_w[x], x, p);
                if edge_order(e, max) == std::cmp::Ordering::Greater {
                    max = e;
                }
                x = p;
            }
        }
        max
    }

    /// Drops a just-displaced old tree edge from both adjacency lists and
    /// marks its endpoints changed (the sorted edge cache is replaced
    /// wholesale by the caller).
    fn evict_adj(&mut self, e: SlotEdge) {
        let (a, b) = (e.1 as usize, e.2 as usize);
        self.adj[a].retain(|&(v, _)| v != b);
        self.adj[b].retain(|&(v, _)| v != a);
        self.changed.push(a);
        self.changed.push(b);
    }

    /// Removes `slot`'s incident edges and reconnects the resulting ≤ 5
    /// components with their minimum outgoing edges (localized Borůvka over
    /// the cached kd-tree).  `slot` must already be excluded from the live
    /// set (dead, or temporarily detached by a move).
    fn detach(&mut self, slot: usize) {
        let incident: Vec<(usize, f64)> = std::mem::take(&mut self.adj[slot]);
        for &(u, w) in &incident {
            self.adj[u].retain(|&(v, _)| v != slot);
            self.remove_sorted(make_edge(w, slot, u));
            self.changed.push(u);
        }
        if incident.len() >= 2 {
            let seeds: Vec<usize> = incident.iter().map(|&(u, _)| u).collect();
            self.reconnect(&seeds);
        }
        self.repair_degrees();
    }

    /// Borůvka-style reconnection of the spanning forest left by a vertex
    /// detach into a single tree.  `seeds` are the detached vertex's former
    /// neighbours — one per component, since removing a vertex from a tree
    /// splits it into exactly one component per neighbour.
    ///
    /// Component discovery is a **lockstep BFS** from the seeds: all
    /// frontiers advance one vertex per round, so the cost of labeling
    /// tracks the *small* components (≈ seeds × second-largest size), not
    /// the whole tree — the giant component on the far side of the cut is
    /// left unlabeled and is simply never the query side.  Every added edge
    /// is a minimum outgoing edge of a fully discovered component, so the
    /// result is the unique MST regardless of merge order (cut property) —
    /// bit-identical to a full relabeling pass.
    fn reconnect(&mut self, seeds: &[usize]) {
        self.label_epoch += 1;
        let epoch = self.label_epoch;

        // Per-seed group state: `members` doubles as the BFS queue (indexed
        // by `head`); a group is complete when its queue drains.
        let mut members: Vec<Vec<usize>> = Vec::with_capacity(seeds.len());
        let mut head: Vec<usize> = vec![0; seeds.len()];
        let mut complete: Vec<bool> = vec![false; seeds.len()];
        let mut merged: Vec<bool> = vec![false; seeds.len()];
        for (g, &s) in seeds.iter().enumerate() {
            debug_assert!(self.label_stamp[s] != epoch, "seeds share a component");
            self.label_stamp[s] = epoch;
            self.label_of[s] = g as u32;
            members.push(vec![s]);
        }

        // Lockstep discovery until at most one group (the giant) is still
        // expanding.
        let mut incomplete = seeds.len();
        while incomplete > 1 {
            for g in 0..members.len() {
                if complete[g] {
                    continue;
                }
                if head[g] == members[g].len() {
                    complete[g] = true;
                    incomplete -= 1;
                    continue;
                }
                let v = members[g][head[g]];
                head[g] += 1;
                for i in 0..self.adj[v].len() {
                    let u = self.adj[v][i].0;
                    if self.label_stamp[u] != epoch {
                        self.label_stamp[u] = epoch;
                        self.label_of[u] = g as u32;
                        members[g].push(u);
                    } else {
                        debug_assert!(
                            self.label_of[u] as usize == g,
                            "distinct components cannot meet in a forest"
                        );
                    }
                }
            }
        }

        // Merge loop: repeatedly take the smallest complete component, wire
        // in its minimum outgoing edge, and fold it into the component on
        // the other side.  Exactly `seeds.len() - 1` edges reconnect the
        // tree.
        for _ in 0..seeds.len() - 1 {
            let (ci, _) = members
                .iter()
                .enumerate()
                .filter(|&(g, _)| complete[g] && !merged[g])
                .min_by_key(|(_, m)| m.len())
                .expect("a complete unmerged component remains");
            let label = ci as u32;
            let mut best: Option<(SlotEdge, usize)> = None; // (edge, foreign slot)
            for &v in &members[ci] {
                let found = self.index.nearest_filtered_slot(&self.points[v], |s| {
                    self.label_stamp[s] == epoch && self.label_of[s] == label
                });
                if let Some((u, d)) = found {
                    let e = make_edge(d, v, u);
                    if best.is_none_or(|(b, _)| edge_order(e, b) == std::cmp::Ordering::Less) {
                        best = Some((e, u));
                    }
                }
            }
            let (edge, foreign) = best.expect("a second component exists");
            let (a, b) = (edge.1 as usize, edge.2 as usize);
            self.adj_insert(a, b, edge.0);
            self.adj_insert(b, a, edge.0);
            self.insert_sorted(edge);
            self.changed.push(a);
            self.changed.push(b);

            merged[ci] = true;
            if self.label_stamp[foreign] == epoch {
                let target = self.label_of[foreign] as usize;
                if complete[target] {
                    // Fold into another small component: its future queries
                    // must treat our members as same-side, and may issue
                    // from them.
                    let moved = std::mem::take(&mut members[ci]);
                    for &m in &moved {
                        self.label_of[m] = target as u32;
                    }
                    members[target].extend(moved);
                }
                // Folding into the giant needs no relabeling: our stale
                // label is never a query side again, and other components
                // already treat it as foreign.
            }
        }
    }

    fn rebuild_adjacency(&mut self) {
        for list in &mut self.adj {
            list.clear();
        }
        for &(w, a, b) in &self.sorted_edges {
            self.adj[a as usize].push((b as usize, w));
            self.adj[b as usize].push((a as usize, w));
        }
        for list in &mut self.adj {
            list.sort_unstable_by_key(|&(s, _)| s);
        }
    }

    fn adj_insert(&mut self, u: usize, v: usize, w: f64) {
        let list = &mut self.adj[u];
        let pos = list.partition_point(|&(s, _)| s < v);
        list.insert(pos, (v, w));
    }

    fn insert_sorted(&mut self, e: SlotEdge) {
        let pos = self
            .sorted_edges
            .partition_point(|&x| edge_order(x, e) == std::cmp::Ordering::Less);
        self.sorted_edges.insert(pos, e);
    }

    fn remove_sorted(&mut self, e: SlotEdge) {
        let pos = self
            .sorted_edges
            .partition_point(|&x| edge_order(x, e) == std::cmp::Ordering::Less);
        debug_assert!(
            self.sorted_edges.get(pos) == Some(&e),
            "edge {e:?} not in cache"
        );
        self.sorted_edges.remove(pos);
    }

    /// The same local tie-exchange the static engine runs: while some vertex
    /// exceeds degree 5 (only possible under exact 60°/equal-length ties),
    /// replace the longer of its two angularly closest star edges by the
    /// edge between the two neighbours.
    ///
    /// Only slots whose degree changed in the current edit can newly violate
    /// (the previous repair left none), and every such slot is in the
    /// `changed` set — so the scan runs over a min-heap of candidates
    /// instead of the whole slot space.  Popping the smallest candidate
    /// reproduces the smallest-violating-slot-first order of a full
    /// ascending scan exactly.
    fn repair_degrees(&mut self) {
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            self.changed.iter().map(|&v| std::cmp::Reverse(v)).collect();
        let mut budget = 4 * self.live + 16;
        while let Some(std::cmp::Reverse(v)) = heap.pop() {
            if !self.alive.get(v).copied().unwrap_or(false) || self.adj[v].len() <= MAX_MST_DEGREE {
                continue;
            }
            if budget == 0 {
                return;
            }
            budget -= 1;
            let neighbor_ids: Vec<usize> = self.adj[v].iter().map(|&(u, _)| u).collect();
            let neighbor_pts: Vec<Point> = neighbor_ids.iter().map(|&u| self.points[u]).collect();
            let sorted = sort_ccw(&self.points[v], &neighbor_pts);
            let gaps = circular_gaps(&sorted);
            let d = sorted.len();
            let (closest_pair_idx, _) = gaps
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("degree > 5 vertex has neighbours");
            let a = neighbor_ids[sorted[closest_pair_idx].index];
            let b = neighbor_ids[sorted[(closest_pair_idx + 1) % d].index];
            let da = self.points[v].distance(&self.points[a]);
            let db = self.points[v].distance(&self.points[b]);
            let drop_endpoint = if da >= db { a } else { b };
            let dropped_w = if da >= db { da } else { db };
            self.adj[v].retain(|&(u, _)| u != drop_endpoint);
            self.adj[drop_endpoint].retain(|&(u, _)| u != v);
            self.remove_sorted(make_edge(dropped_w, v, drop_endpoint));
            let w = self.points[a].distance(&self.points[b]);
            self.adj_insert(a, b, w);
            self.adj_insert(b, a, w);
            self.insert_sorted(make_edge(w, a, b));
            self.changed.push(v);
            self.changed.push(a);
            self.changed.push(b);
            heap.push(std::cmp::Reverse(v));
            heap.push(std::cmp::Reverse(a));
            heap.push(std::cmp::Reverse(b));
        }
    }

    /// Materializes the live deployment as a dense [`EuclideanMst`].
    ///
    /// Live slots are mapped to dense indices in ascending slot order, and
    /// tree edges are inserted sorted by `(min, max)` dense endpoints so
    /// that every vertex's adjacency list comes out ascending — the same
    /// canonical neighbour order the incremental re-orientation uses, which
    /// is what makes the dynamic scheme bit-identical to a full re-orient on
    /// the materialized instance even under angular ties.
    pub fn materialize(&self) -> Result<EuclideanMst, EmstError> {
        let slots = self.live_slots();
        if slots.is_empty() {
            return Err(EmstError::EmptyPointSet);
        }
        let mut dense_of = vec![u32::MAX; self.points.len()];
        for (dense, &slot) in slots.iter().enumerate() {
            dense_of[slot] = dense as u32;
        }
        let points: Vec<Point> = slots.iter().map(|&s| self.points[s]).collect();
        let mut edges: Vec<(u32, u32, f64)> = self
            .sorted_edges
            .iter()
            .map(|&(w, a, b)| {
                // Slot→dense is monotone, so (min, max) is preserved.
                (dense_of[a as usize], dense_of[b as usize], w)
            })
            .collect();
        edges.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut tree = Graph::new(points.len());
        for (a, b, w) in edges {
            tree.add_edge(a as usize, b as usize, w);
        }
        EuclideanMst::from_precomputed(points, tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0)))
            .collect()
    }

    /// The maintained tree must match a from-scratch build: spanning, same
    /// weight, same `lmax`, degree ≤ 5.
    fn assert_matches_rebuild(emst: &DynamicEmst) {
        let live: Vec<Point> = emst.live_slots().iter().map(|&s| emst.point(s)).collect();
        let fresh = EuclideanMst::build(&live).unwrap();
        assert_eq!(emst.sorted_edges.len(), live.len().saturating_sub(1));
        let scale = fresh.total_weight().max(1.0);
        assert!(
            (emst.total_weight() - fresh.total_weight()).abs() < 1e-9 * scale,
            "weight {} vs rebuild {}",
            emst.total_weight(),
            fresh.total_weight()
        );
        assert!(
            (emst.lmax() - fresh.lmax()).abs() < 1e-9 * scale,
            "lmax {} vs rebuild {}",
            emst.lmax(),
            fresh.lmax()
        );
        assert!(emst.max_degree() <= MAX_MST_DEGREE);
        // The materialized dense tree round-trips.
        let dense = emst.materialize().unwrap();
        assert_eq!(dense.len(), live.len());
        assert!((dense.total_weight() - emst.total_weight()).abs() < 1e-9 * scale);
        assert_eq!(dense.lmax(), emst.lmax());
    }

    #[test]
    fn insert_grows_a_correct_tree() {
        let mut emst = DynamicEmst::new(&random_points(2, 1)).unwrap();
        let extra = random_points(30, 2);
        for p in extra {
            emst.insert(p);
            assert_matches_rebuild(&emst);
            assert!(!emst.changed_slots().is_empty());
        }
        assert_eq!(emst.live_count(), 32);
    }

    #[test]
    fn remove_repairs_the_tree() {
        let pts = random_points(40, 3);
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        while emst.live_count() > 1 {
            let live = emst.live_slots();
            let victim = live[rng.random_range(0..live.len())];
            emst.remove(victim).unwrap();
            assert_matches_rebuild(&emst);
        }
        // Draining to one sensor leaves an edgeless tree with lmax 0…
        assert_eq!(emst.lmax(), 0.0);
        // …and draining all the way to zero is allowed.
        emst.remove(emst.live_slots()[0]).unwrap();
        assert_eq!(emst.live_count(), 0);
        assert_eq!(emst.lmax(), 0.0);
        assert_eq!(emst.total_weight(), 0.0);
        assert!(emst.live_slots().is_empty());
    }

    #[test]
    fn empty_engine_grows_and_drains() {
        let mut emst = DynamicEmst::new(&[]).unwrap();
        assert_eq!(emst.live_count(), 0);
        assert_eq!(emst.lmax(), 0.0);
        assert!(matches!(
            emst.remove(0),
            Err(DynamicEmstError::UnknownSlot(0))
        ));

        // Regrow from nothing; slots keep their monotone assignment.
        let a = emst.insert(Point::new(0.0, 0.0));
        let b = emst.insert(Point::new(3.0, 4.0));
        assert_eq!((a, b), (0, 1));
        assert_eq!(emst.slot_bound(), 2);
        assert_eq!(emst.live_count(), 2);
        assert!((emst.lmax() - 5.0).abs() < 1e-12);
        assert_matches_rebuild(&emst);

        // Drain back to zero and grow once more: tombstoned slots stay dead.
        emst.remove(a).unwrap();
        emst.remove(b).unwrap();
        assert_eq!(emst.live_count(), 0);
        let c = emst.insert(Point::new(1.0, 1.0));
        assert_eq!(c, 2);
        assert_eq!(emst.live_slots(), vec![2]);
        assert_eq!(emst.lmax(), 0.0);
    }

    #[test]
    fn moves_track_the_rebuild() {
        let pts = random_points(25, 4);
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..40 {
            let live = emst.live_slots();
            let slot = live[rng.random_range(0..live.len())];
            let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
            emst.move_to(slot, p).unwrap();
            assert!((emst.point(slot).x - p.x).abs() < 1e-15);
            assert_matches_rebuild(&emst);
            assert!(emst.changed_slots().contains(&slot));
        }
    }

    #[test]
    fn mixed_script_with_duplicates_and_ties() {
        // Integer lattice plus exact duplicates: maximal tie pressure.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..4 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let mut emst = DynamicEmst::new(&pts).unwrap();
        let dup = emst.insert(Point::new(2.0, 2.0)); // exact duplicate
        assert_matches_rebuild(&emst);
        emst.insert(Point::new(2.0, 2.0));
        assert_matches_rebuild(&emst);
        emst.remove(dup).unwrap();
        assert_matches_rebuild(&emst);
        emst.move_to(7, Point::new(0.0, 0.0)).unwrap(); // onto another point
        assert_matches_rebuild(&emst);
    }

    #[test]
    fn dead_slots_are_rejected() {
        let mut emst = DynamicEmst::new(&random_points(5, 6)).unwrap();
        emst.remove(2).unwrap();
        assert!(matches!(
            emst.remove(2),
            Err(DynamicEmstError::UnknownSlot(2))
        ));
        assert!(matches!(
            emst.move_to(2, Point::ORIGIN),
            Err(DynamicEmstError::UnknownSlot(2))
        ));
        assert!(!emst.is_alive(2));
        assert_eq!(emst.live_slots(), vec![0, 1, 3, 4]);
    }

    /// A tiled engine must be **edit-for-edit bit-identical** to a global
    /// one: same sorted edge cache (weights compared by bits), same changed
    /// sets, same lmax/total-weight bits after every edit.
    #[test]
    fn tiled_engine_matches_global_edit_for_edit() {
        let pts = random_points(120, 21);
        let grid = TileGrid::with_tiles_per_axis(&pts, 3).unwrap();
        let mut global = DynamicEmst::new(&pts).unwrap();
        let (mut tiled, _) = DynamicEmst::new_tiled(&pts, grid, 2).unwrap();

        let assert_same = |g: &DynamicEmst, t: &DynamicEmst| {
            let key = |e: &SlotEdge| (e.1, e.2, e.0.to_bits());
            let ge: Vec<_> = g.sorted_edges.iter().map(key).collect();
            let te: Vec<_> = t.sorted_edges.iter().map(key).collect();
            assert_eq!(ge, te);
            assert_eq!(g.changed_slots(), t.changed_slots());
            assert_eq!(g.lmax().to_bits(), t.lmax().to_bits());
            assert_eq!(g.total_weight().to_bits(), t.total_weight().to_bits());
        };
        assert_same(&global, &tiled);

        let mut rng = StdRng::seed_from_u64(22);
        for step in 0..120 {
            match step % 3 {
                0 => {
                    let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
                    assert_eq!(global.insert(p), tiled.insert(p));
                }
                1 => {
                    let live = global.live_slots();
                    let victim = live[rng.random_range(0..live.len())];
                    global.remove(victim).unwrap();
                    tiled.remove(victim).unwrap();
                }
                _ => {
                    let live = global.live_slots();
                    let slot = live[rng.random_range(0..live.len())];
                    let p = Point::new(rng.random_range(0.0..20.0), rng.random_range(0.0..20.0));
                    global.move_to(slot, p).unwrap();
                    tiled.move_to(slot, p).unwrap();
                }
            }
            assert_same(&global, &tiled);
        }
        assert!(tiled.tile_grid().is_some());
        assert!(global.tile_grid().is_none());
        assert_matches_rebuild(&tiled);
    }

    /// Tiled engines start from nothing too (the deployment-server shape),
    /// including edits that push points outside the original grid bounds
    /// (clamped to the boundary tiles).
    #[test]
    fn tiled_engine_grows_from_empty_and_clamps_outliers() {
        let seed = random_points(4, 30);
        let grid = TileGrid::with_tiles_per_axis(&seed, 2).unwrap();
        let (mut tiled, stats) = DynamicEmst::new_tiled(&[], grid, 1).unwrap();
        assert_eq!(stats.occupied_tiles, 0);
        let mut global = DynamicEmst::new(&[]).unwrap();
        for p in &seed {
            assert_eq!(global.insert(*p), tiled.insert(*p));
        }
        // Far outside the grid's bounding box on both sides.
        for p in [Point::new(-500.0, -500.0), Point::new(900.0, 900.0)] {
            assert_eq!(global.insert(p), tiled.insert(p));
        }
        let key = |e: &SlotEdge| (e.1, e.2, e.0.to_bits());
        let ge: Vec<_> = global.sorted_edges.iter().map(key).collect();
        let te: Vec<_> = tiled.sorted_edges.iter().map(key).collect();
        assert_eq!(ge, te);
        assert_matches_rebuild(&tiled);
    }

    #[test]
    fn changed_slots_are_local_for_isolated_edits() {
        // A long path: moving one interior vertex slightly must not touch
        // the far ends.
        let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut emst = DynamicEmst::new(&pts).unwrap();
        emst.move_to(25, Point::new(25.0, 0.1)).unwrap();
        assert_matches_rebuild(&emst);
        let changed = emst.changed_slots();
        assert!(changed.contains(&25));
        assert!(changed.len() <= 6, "changed set {changed:?} not local");
        assert!(!changed.contains(&0) && !changed.contains(&49));
    }
}
