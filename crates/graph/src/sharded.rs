//! Sharded Euclidean MST construction: per-tile forests plus an exact
//! boundary stitch.
//!
//! [`build_sharded`] partitions the input by a [`TileGrid`], builds every
//! occupied tile's MST independently (fanning the tiles out over
//! `antennae-parallel`), and then runs a cross-tile Borůvka merge that is
//! **bit-identical** to the global [`EuclideanMst`] build.  The argument has
//! three steps, each leaning on the engines' shared tie-broken total edge
//! order `(weight, min endpoint, max endpoint)` under which all edge keys
//! are distinct and the MST `T*` is unique:
//!
//! 1. **Containment (cycle property).**  Any `T*` edge with both endpoints
//!    in tile `i` is also an edge of `MST(S_i)`: it is not the heaviest edge
//!    of any cycle in the complete graph over all points, hence not of any
//!    cycle within tile `i`.  So `T* ⊆ H`, where `H` is the union of every
//!    tile's MST edges and all cross-tile point pairs.
//! 2. **Monotone relabeling.**  Each tile's members are listed in ascending
//!    global index, so the local `(weight, min, max)` order the per-tile
//!    Borůvka breaks ties with is exactly the global order restricted to the
//!    tile — every tile forest is computed under the *same* perturbed order
//!    as the global build.
//! 3. **Stitch = Borůvka on `H`.**  Since `T* ⊆ H ⊆` complete graph and the
//!    MST is unique, `MST(H) = T*`.  The stitch runs plain Borůvka from
//!    singletons over `H`: each vertex's candidate edges are its tile-tree
//!    edges (scanned directly) plus its nearest *cross-tile* foreign point
//!    (a bounded kd query whose smaller-index distance tie-break yields the
//!    minimal candidate key, the same argument the global engine uses).
//!    Per-tile MST edges are candidates, never seeds — a tile-MST edge need
//!    not lie in `T*`, so no edge is accepted without winning a cut.
//!
//! The shared `EuclideanMst::assemble` tail (canonical adjacency order
//! around one global degree-repair pass) then makes the resulting structure
//! — tree, weight, `lmax`, neighbour order — a pure function of the spanning
//! edge set, so equality of edge sets becomes bit-equality of everything
//! downstream (scheme, digraph, verification report).  The root
//! `tests/shard_oracle.rs` suite pins this against stochastic and extremal
//! workloads across tile sizes and thread counts.

use crate::euclidean::{
    edge_order, kd_boruvka, EmstError, EuclideanMst, MstEngine, PARALLEL_BORUVKA_MIN,
};
use crate::graph::Edge;
use crate::union_find::UnionFind;
use antennae_geometry::tiles::TileGrid;
use antennae_geometry::{KdIndex, Point};
use antennae_parallel::{chunk_ranges, parallel_map};

/// One stitch-round winner: a component root paired with its minimal
/// candidate edge under the `(weight, min endpoint, max endpoint)` order.
type StitchCandidate = (usize, (f64, usize, usize));

/// What a [`build_sharded`] run did — telemetry for STATS, the sim
/// comparison and the oracle tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StitchStats {
    /// Total tiles in the grid.
    pub tiles: usize,
    /// Tiles holding at least one point.
    pub occupied_tiles: usize,
    /// Points in the most populated tile.
    pub largest_tile: usize,
    /// Edges contributed by the per-tile MST forests (stitch candidates).
    pub tile_edges: usize,
    /// Chosen spanning edges whose endpoints lie in different tiles.
    pub cross_edges: usize,
    /// Borůvka rounds the stitch ran.
    pub stitch_rounds: usize,
    /// `false` when the input was below the kd-tree crossover (or occupied
    /// fewer than two tiles) and the build delegated to the global engine.
    pub stitched: bool,
}

/// Builds the Euclidean MST of `points` tile-by-tile and stitches the tile
/// forests into the **bit-identical** result of
/// [`EuclideanMst::build_with_engine_threads`] with [`MstEngine::Auto`] (see
/// the [module docs](self) for the exactness argument).
///
/// Inputs below [`crate::euclidean::KDTREE_CROSSOVER`] — where the global build would use
/// dense Prim anyway — and inputs occupying fewer than two tiles delegate
/// to the global engine outright (`stats.stitched == false`).
pub fn build_sharded(
    points: &[Point],
    grid: &TileGrid,
    threads: usize,
) -> Result<(EuclideanMst, StitchStats), EmstError> {
    if points.is_empty() {
        return Err(EmstError::EmptyPointSet);
    }
    let n = points.len();
    let tile_of: Vec<u32> = points.iter().map(|p| grid.tile_of(p) as u32).collect();
    // Tile membership in ascending global index (iteration order) — the
    // monotone relabeling step 2 of the module docs.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); grid.tiles()];
    for (v, &t) in tile_of.iter().enumerate() {
        members[t as usize].push(v as u32);
    }
    let occupied: Vec<&Vec<u32>> = members.iter().filter(|m| !m.is_empty()).collect();
    let largest_tile = occupied.iter().map(|m| m.len()).max().unwrap_or(0);

    if MstEngine::Auto.resolve(n) == MstEngine::DensePrim || occupied.len() < 2 {
        let mst = EuclideanMst::build_with_engine_threads(points, MstEngine::Auto, threads)?;
        let stats = StitchStats {
            tiles: grid.tiles(),
            occupied_tiles: occupied.len(),
            largest_tile,
            tile_edges: 0,
            cross_edges: 0,
            stitch_rounds: 0,
            stitched: false,
        };
        return Ok((mst, stats));
    }

    // Per-tile MST forests, one task per occupied tile.  Each tile's
    // Borůvka runs serially (threads = 1) — the parallelism is across
    // tiles, which is the sharding decomposition itself.
    let tile_forests: Vec<Vec<Edge>> = parallel_map(&occupied, threads, |tile| {
        if tile.len() < 2 {
            return Vec::new();
        }
        let local: Vec<Point> = tile.iter().map(|&g| points[g as usize]).collect();
        kd_boruvka(&local, 1)
            .into_iter()
            .map(|e| Edge::new(tile[e.u] as usize, tile[e.v] as usize, e.weight))
            .collect()
    });
    let tile_edges: usize = tile_forests.iter().map(Vec::len).sum();
    // Tile-tree adjacency over global indices: the cheap candidate source
    // the stitch scans before asking the kd index for cross-tile points.
    let mut tile_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for e in tile_forests.iter().flatten() {
        tile_adj[e.u].push((e.v as u32, e.weight));
        tile_adj[e.v].push((e.u as u32, e.weight));
    }

    let index = KdIndex::build_with_threads(points, threads);
    let mut uf = UnionFind::new(n);
    let mut labels = vec![0usize; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut best: Vec<Option<(f64, usize, usize)>> = vec![None; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut round: Vec<(f64, usize, usize)> = Vec::new();
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut rounds = 0usize;

    while uf.component_count() > 1 {
        rounds += 1;
        for (v, label) in labels.iter_mut().enumerate() {
            *label = uf.find(v);
        }
        order.sort_unstable_by_key(|&v| labels[v]);
        let scans: Vec<Vec<StitchCandidate>> = if threads > 1 && n >= PARALLEL_BORUVKA_MIN {
            let ranges = chunk_ranges(n, threads);
            parallel_map(&ranges, threads, |&(start, end)| {
                stitch_scan(
                    points,
                    &index,
                    &labels,
                    &tile_of,
                    &tile_adj,
                    &order[start..end],
                )
            })
        } else {
            vec![stitch_scan(
                points, &index, &labels, &tile_of, &tile_adj, &order,
            )]
        };
        for winners in scans {
            for (root, candidate) in winners {
                match &mut best[root] {
                    Some(b) => {
                        if edge_order(candidate, *b) == std::cmp::Ordering::Less {
                            *b = candidate;
                        }
                    }
                    slot => {
                        touched.push(root);
                        *slot = Some(candidate);
                    }
                }
            }
        }
        round.clear();
        for &root in &touched {
            round.extend(best[root].take());
        }
        touched.clear();
        round.sort_by(|&a, &b| edge_order(a, b));
        let before = uf.component_count();
        for &(d, a, b) in &round {
            if uf.union(a, b) {
                edges.push(Edge::new(a, b, d));
            }
        }
        debug_assert!(
            uf.component_count() < before,
            "every stitch round merges at least two components"
        );
    }

    let cross_edges = edges
        .iter()
        .filter(|e| tile_of[e.u] != tile_of[e.v])
        .count();
    let mst = EuclideanMst::assemble(points, &edges, MstEngine::KdTreeBoruvka)?;
    let stats = StitchStats {
        tiles: grid.tiles(),
        occupied_tiles: occupied.len(),
        largest_tile,
        tile_edges,
        cross_edges,
        stitch_rounds: rounds,
        stitched: true,
    };
    Ok((mst, stats))
}

/// One stitch round's scan over a slice of the component-sorted vertex
/// order: per contiguous same-root run, the minimum outgoing `H` edge among
/// (a) the run members' tile-tree edges leaving the component and (b) each
/// member's nearest cross-tile foreign point, queried with the run's
/// current best distance as an inclusive bound (exactly the seeding the
/// global engine's `scan_run` uses, with the same chunking-invariance
/// argument: fragment winners merge to the same per-root minimum).
fn stitch_scan(
    points: &[Point],
    index: &KdIndex,
    labels: &[usize],
    tile_of: &[u32],
    tile_adj: &[Vec<(u32, f64)>],
    order: &[usize],
) -> Vec<StitchCandidate> {
    let mut winners: Vec<StitchCandidate> = Vec::new();
    let mut current: Option<(usize, (f64, usize, usize))> = None;
    for &v in order {
        let root = labels[v];
        match current {
            Some((r, _)) if r == root => {}
            _ => {
                if let Some(done) = current.take() {
                    winners.push(done);
                }
            }
        }
        let mut local_best: Option<(f64, usize, usize)> = match current {
            Some((r, b)) if r == root => Some(b),
            _ => None,
        };
        // (a) tile-tree edges leaving the component.
        for &(u, w) in &tile_adj[v] {
            let u = u as usize;
            if labels[u] == root {
                continue;
            }
            let candidate = (w, v.min(u), v.max(u));
            if local_best.is_none_or(|b| edge_order(candidate, b) == std::cmp::Ordering::Less) {
                local_best = Some(candidate);
            }
        }
        // (b) nearest cross-tile foreign point, bounded by the best so far.
        // The bound is inclusive (points at exactly the bound are still
        // reported), so an equal-distance candidate with a smaller edge key
        // is never hidden; `None` only ever means "strictly farther".
        let bound = local_best.map_or(f64::INFINITY, |(d, _, _)| d);
        let tile = tile_of[v];
        let found = index.nearest_filtered_within(
            points,
            &points[v],
            |u| tile_of[u] == tile || labels[u] == root,
            bound,
        );
        if let Some((u, d)) = found {
            let candidate = (d, v.min(u), v.max(u));
            if local_best.is_none_or(|b| edge_order(candidate, b) == std::cmp::Ordering::Less) {
                local_best = Some(candidate);
            }
        }
        if let Some(b) = local_best {
            current = Some((root, b));
        }
    }
    if let Some(done) = current {
        winners.push(done);
    }
    winners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::KDTREE_CROSSOVER;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect()
    }

    fn assert_bit_identical(points: &[Point], grid: &TileGrid, threads: usize) {
        let global =
            EuclideanMst::build_with_engine_threads(points, MstEngine::Auto, threads).unwrap();
        let (sharded, stats) = build_sharded(points, grid, threads).unwrap();
        assert_eq!(sharded.lmax().to_bits(), global.lmax().to_bits());
        assert_eq!(
            sharded.total_weight().to_bits(),
            global.total_weight().to_bits()
        );
        let key = |e: &Edge| (e.u, e.v, e.weight.to_bits());
        let got: Vec<_> = sharded.edges().iter().map(key).collect();
        let want: Vec<_> = global.edges().iter().map(key).collect();
        assert_eq!(got, want, "stats {stats:?}");
        assert_eq!(sharded.engine(), global.engine());
    }

    #[test]
    fn sharded_build_is_bit_identical_above_crossover() {
        let pts = random_points(KDTREE_CROSSOVER + 300, 1);
        for per_axis in [2usize, 3, 5] {
            let grid = TileGrid::with_tiles_per_axis(&pts, per_axis).unwrap();
            for threads in [1usize, 4] {
                assert_bit_identical(&pts, &grid, threads);
            }
        }
    }

    #[test]
    fn small_inputs_delegate_to_the_global_engine() {
        let pts = random_points(50, 2);
        let grid = TileGrid::with_tiles_per_axis(&pts, 4).unwrap();
        let (mst, stats) = build_sharded(&pts, &grid, 1).unwrap();
        assert!(!stats.stitched);
        assert_eq!(mst.engine(), MstEngine::DensePrim);
        assert_bit_identical(&pts, &grid, 1);
    }

    #[test]
    fn one_occupied_tile_delegates() {
        // All points cluster inside a single tile of a coarse grid.
        let mut pts = random_points(KDTREE_CROSSOVER + 100, 3);
        for p in &mut pts {
            p.x *= 0.001;
            p.y *= 0.001;
        }
        let all = random_points(4, 4); // widen the grid's box past the cluster
        let mut boxed = pts.clone();
        boxed.extend(all.iter().map(|p| Point::new(p.x + 50.0, p.y + 50.0)));
        let grid = TileGrid::with_tiles_per_axis(&boxed, 2).unwrap();
        let (_, stats) = build_sharded(&pts, &grid, 2).unwrap();
        assert!(!stats.stitched);
        assert_eq!(stats.occupied_tiles, 1);
        assert_bit_identical(&pts, &grid, 2);
    }

    #[test]
    fn degenerate_grids_with_ties_stay_exact() {
        // Integer lattice with duplicates on exact tile boundaries.
        let mut pts = Vec::new();
        for i in 0..40 {
            for j in 0..20 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        pts.extend_from_slice(&[
            Point::new(20.0, 10.0),
            Point::new(20.0, 10.0),
            Point::new(0.0, 0.0),
        ]);
        assert!(pts.len() >= KDTREE_CROSSOVER);
        let grid = TileGrid::with_tiles_per_axis(&pts, 3).unwrap();
        assert_bit_identical(&pts, &grid, 1);
        assert_bit_identical(&pts, &grid, 3);
    }

    #[test]
    fn stats_report_the_stitch() {
        let pts = random_points(KDTREE_CROSSOVER + 500, 9);
        let grid = TileGrid::with_tiles_per_axis(&pts, 3).unwrap();
        let (_, stats) = build_sharded(&pts, &grid, 2).unwrap();
        assert!(stats.stitched);
        assert!(stats.occupied_tiles > 1);
        assert!(stats.cross_edges >= stats.occupied_tiles - 1);
        assert!(stats.tile_edges > 0);
        assert!(stats.stitch_rounds > 0);
        assert!(stats.largest_tile < pts.len());
    }
}
