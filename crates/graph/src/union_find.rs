//! Disjoint-set forest (union-find) with path compression and union by rank.

/// A union-find structure over elements `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression pass.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they were
    /// previously different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn all_unions_give_single_component() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.union(0, i);
        }
        assert_eq!(uf.component_count(), 1);
        for i in 0..10 {
            for j in 0..10 {
                assert!(uf.connected(i, j));
            }
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
