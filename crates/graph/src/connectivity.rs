//! Strong c-connectivity (fault tolerance) of directed graphs.
//!
//! The paper's conclusion poses as an open problem "ensuring that for a given
//! integer `c` the resulting network is strongly c-connected, i.e., it
//! remains strongly connected after the deletion of any `c − 1` nodes".  This
//! module provides the measurement side of that question: exact (exhaustive)
//! checks of strong c-connectivity for the small `c` values of interest
//! (`c ≤ 3`), used by the EXP-CC experiment to quantify how fault tolerant
//! the paper's orientations actually are.
//!
//! Every check runs on the **masked traversal kernels**
//! ([`crate::traversal::TraversalScratch`]): candidate fault sets are
//! toggled in a [`VertexMask`] and probed in place on the original CSR —
//! one scratch, zero allocations per probe — instead of materializing a
//! re-indexed subgraph per candidate as [`remove_vertices`] does.
//! `remove_vertices` is kept for callers that genuinely need the subgraph
//! (and as the baseline the `traversal` bench measures the mask win
//! against).

use crate::digraph::DiGraph;
use crate::traversal::{TraversalScratch, VertexMask};

/// Returns the digraph obtained by deleting the given vertices (edges
/// incident to them disappear; the remaining vertices are re-indexed in
/// increasing order of their original index).
///
/// This materializes a new CSR digraph in O(n + m); fault sweeps that only
/// need connectivity verdicts should use the masked kernels instead (see
/// [`is_strongly_c_connected`], [`critical_vertices`]).
pub fn remove_vertices(g: &DiGraph, removed: &[usize]) -> DiGraph {
    let n = g.len();
    let mut keep = vec![true; n];
    for &r in removed {
        if r < n {
            keep[r] = false;
        }
    }
    // Map old indices to new ones.
    let mut new_index = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if keep[v] {
            new_index[v] = next;
            next += 1;
        }
    }
    // One flat counting pass: surviving rows, filtered and re-indexed.
    let mut offsets: Vec<u32> = Vec::with_capacity(next as usize + 1);
    offsets.push(0);
    let mut targets: Vec<u32> = Vec::new();
    for u in 0..n {
        if !keep[u] {
            continue;
        }
        for &v in g.out_neighbors(u) {
            if keep[v as usize] {
                targets.push(new_index[v as usize]);
            }
        }
        offsets.push(targets.len() as u32);
    }
    DiGraph::from_csr(next as usize, offsets, targets)
}

/// Returns `true` when `g` remains strongly connected after deleting **any**
/// set of at most `c − 1` vertices (i.e. `g` is strongly `c`-connected).
///
/// The check is exhaustive over all subsets of size `c − 1`; it is intended
/// for the small `c` (1, 2, 3) the experiments use.  A graph with `n ≤ c`
/// vertices is considered strongly `c`-connected iff it is strongly
/// connected (the removal would leave at most one vertex).  Each subset is
/// probed through one reusable [`TraversalScratch`] and [`VertexMask`] —
/// no per-subset subgraph clone.
pub fn is_strongly_c_connected(g: &DiGraph, c: usize) -> bool {
    if c == 0 {
        return true;
    }
    let mut scratch = TraversalScratch::new();
    if !(g.len() <= 1 || scratch.is_strongly_connected(g, None)) {
        return false;
    }
    let n = g.len();
    let faults = c - 1;
    if faults == 0 || n <= c {
        return true;
    }
    let mut mask = VertexMask::new(n);
    subsets_survive(g, 0, faults, &mut mask, &mut scratch)
}

fn subsets_survive(
    g: &DiGraph,
    start: usize,
    remaining: usize,
    mask: &mut VertexMask,
    scratch: &mut TraversalScratch,
) -> bool {
    if remaining == 0 {
        return scratch.is_strongly_connected(g, Some(mask));
    }
    for v in start..g.len() {
        mask.remove(v);
        let ok = subsets_survive(g, v + 1, remaining - 1, mask, scratch);
        mask.restore(v);
        if !ok {
            return false;
        }
    }
    true
}

/// The vertices whose individual removal leaves a digraph that is not
/// strongly connected ("critical sensors" in the EXP-CC experiment), in
/// ascending order.
///
/// Returns the empty vector when `g` is not strongly connected to begin
/// with (every vertex is then equally useless to probe) or has at most two
/// vertices.  One CSR, one scratch, `n` masked two-pass probes.
pub fn critical_vertices(g: &DiGraph) -> Vec<usize> {
    let n = g.len();
    let mut scratch = TraversalScratch::new();
    if n <= 2 || !scratch.is_strongly_connected(g, None) {
        return Vec::new();
    }
    let mut mask = VertexMask::new(n);
    let mut critical = Vec::new();
    for v in 0..n {
        mask.remove(v);
        if !scratch.is_strongly_connected(g, Some(&mask)) {
            critical.push(v);
        }
        mask.restore(v);
    }
    critical
}

/// The strong vertex connectivity of `g`, capped at `cap`: the smallest
/// number of vertices whose removal leaves a digraph that is not strongly
/// connected, or `cap` if every removal of fewer than `cap` vertices keeps it
/// strongly connected.  Returns 0 for a digraph that is not strongly
/// connected to begin with.
pub fn strong_vertex_connectivity(g: &DiGraph, cap: usize) -> usize {
    if !g.is_strongly_connected() {
        return 0;
    }
    for c in 2..=cap {
        if !is_strongly_c_connected(g, c) {
            return c - 1;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::is_strongly_connected;

    fn directed_cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn bidirectional_complete(n: usize) -> DiGraph {
        DiGraph::from_adjacency(n, (0..n).map(|u| (0..n).filter(move |&v| v != u)))
    }

    #[test]
    fn remove_vertices_reindexes_consistently() {
        let g = directed_cycle(5);
        let reduced = remove_vertices(&g, &[2]);
        assert_eq!(reduced.len(), 4);
        // The cycle is broken: 1 (old) can no longer reach 3 (old).
        assert!(!is_strongly_connected(&reduced));
        // Removing nothing is the identity up to re-indexing.
        let same = remove_vertices(&g, &[]);
        assert_eq!(same.len(), 5);
        assert!(is_strongly_connected(&same));
    }

    #[test]
    fn a_simple_cycle_is_exactly_strongly_1_connected() {
        let g = directed_cycle(6);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(!is_strongly_c_connected(&g, 2));
        assert_eq!(strong_vertex_connectivity(&g, 4), 1);
        // Every vertex of a bare cycle is critical.
        assert_eq!(critical_vertices(&g), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn complete_digraph_is_highly_connected() {
        let g = bidirectional_complete(6);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(is_strongly_c_connected(&g, 2));
        assert!(is_strongly_c_connected(&g, 3));
        assert_eq!(strong_vertex_connectivity(&g, 4), 4);
        assert!(critical_vertices(&g).is_empty());
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        assert!(!is_strongly_c_connected(&g, 1));
        assert_eq!(strong_vertex_connectivity(&g, 3), 0);
        assert!(critical_vertices(&g).is_empty());
    }

    #[test]
    fn two_cycles_sharing_one_vertex_have_a_cut_vertex() {
        // Vertex 0 is shared by two directed triangles; removing it
        // disconnects them.
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 0);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(!is_strongly_c_connected(&g, 2));
        assert_eq!(strong_vertex_connectivity(&g, 3), 1);
        // Removing any single triangle vertex breaks the directed cycle it
        // belongs to, so every vertex is critical here.
        assert_eq!(critical_vertices(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_graphs_and_c_zero() {
        assert!(is_strongly_c_connected(&DiGraph::new(1), 3));
        assert!(is_strongly_c_connected(&DiGraph::new(0), 2));
        let g = directed_cycle(2);
        assert!(is_strongly_c_connected(&g, 2)); // n ≤ c
        assert!(is_strongly_c_connected(&g, 0));
        assert!(critical_vertices(&g).is_empty());
    }

    #[test]
    fn masked_checks_agree_with_materialized_subgraphs() {
        // Cross-check the mask path against remove_vertices on a digraph
        // with both redundant and critical structure.
        let mut g = bidirectional_complete(4);
        // Attach a pendant cycle through vertex 0: 0 → 4 → 5 → 0.
        let mut edges = g.edges();
        edges.extend([(0, 4), (4, 5), (5, 0)]);
        g = DiGraph::from_edges(6, &edges);
        for v in 0..g.len() {
            let masked_breaks = critical_vertices(&g).contains(&v);
            let clone_breaks = !is_strongly_connected(&remove_vertices(&g, &[v]));
            assert_eq!(masked_breaks, clone_breaks, "vertex {v}");
        }
    }
}
