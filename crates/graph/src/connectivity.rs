//! Strong c-connectivity (fault tolerance) of directed graphs.
//!
//! The paper's conclusion poses as an open problem "ensuring that for a given
//! integer `c` the resulting network is strongly c-connected, i.e., it
//! remains strongly connected after the deletion of any `c − 1` nodes".  This
//! module provides the measurement side of that question: exact (exhaustive)
//! checks of strong c-connectivity for the small `c` values of interest
//! (`c ≤ 3`), used by the EXP-CC experiment to quantify how fault tolerant
//! the paper's orientations actually are.

use crate::digraph::DiGraph;
use crate::scc::is_strongly_connected;

/// Returns the digraph obtained by deleting the given vertices (edges
/// incident to them disappear; the remaining vertices are re-indexed in
/// increasing order of their original index).
pub fn remove_vertices(g: &DiGraph, removed: &[usize]) -> DiGraph {
    let n = g.len();
    let mut keep = vec![true; n];
    for &r in removed {
        if r < n {
            keep[r] = false;
        }
    }
    // Map old indices to new ones.
    let mut new_index = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if keep[v] {
            new_index[v] = next;
            next += 1;
        }
    }
    let mut out = DiGraph::new(next);
    for u in 0..n {
        if !keep[u] {
            continue;
        }
        for &v in g.out_neighbors(u) {
            if keep[v] {
                out.add_edge(new_index[u], new_index[v]);
            }
        }
    }
    out
}

/// Returns `true` when `g` remains strongly connected after deleting **any**
/// set of at most `c − 1` vertices (i.e. `g` is strongly `c`-connected).
///
/// The check is exhaustive over all subsets of size `c − 1`; it is intended
/// for the small `c` (1, 2, 3) the experiments use.  A graph with `n ≤ c`
/// vertices is considered strongly `c`-connected iff it is strongly
/// connected (the removal would leave at most one vertex).
pub fn is_strongly_c_connected(g: &DiGraph, c: usize) -> bool {
    if c == 0 {
        return true;
    }
    if !is_strongly_connected(g) {
        return false;
    }
    let n = g.len();
    let faults = c - 1;
    if faults == 0 || n <= c {
        return true;
    }
    let mut subset: Vec<usize> = Vec::with_capacity(faults);
    subsets_survive(g, 0, faults, &mut subset)
}

fn subsets_survive(g: &DiGraph, start: usize, remaining: usize, subset: &mut Vec<usize>) -> bool {
    if remaining == 0 {
        return is_strongly_connected(&remove_vertices(g, subset));
    }
    for v in start..g.len() {
        subset.push(v);
        let ok = subsets_survive(g, v + 1, remaining - 1, subset);
        subset.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// The strong vertex connectivity of `g`, capped at `cap`: the smallest
/// number of vertices whose removal leaves a digraph that is not strongly
/// connected, or `cap` if every removal of fewer than `cap` vertices keeps it
/// strongly connected.  Returns 0 for a digraph that is not strongly
/// connected to begin with.
pub fn strong_vertex_connectivity(g: &DiGraph, cap: usize) -> usize {
    if !is_strongly_connected(g) {
        return 0;
    }
    for c in 2..=cap {
        if !is_strongly_c_connected(g, c) {
            return c - 1;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn bidirectional_complete(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn remove_vertices_reindexes_consistently() {
        let g = directed_cycle(5);
        let reduced = remove_vertices(&g, &[2]);
        assert_eq!(reduced.len(), 4);
        // The cycle is broken: 1 (old) can no longer reach 3 (old).
        assert!(!is_strongly_connected(&reduced));
        // Removing nothing is the identity up to re-indexing.
        let same = remove_vertices(&g, &[]);
        assert_eq!(same.len(), 5);
        assert!(is_strongly_connected(&same));
    }

    #[test]
    fn a_simple_cycle_is_exactly_strongly_1_connected() {
        let g = directed_cycle(6);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(!is_strongly_c_connected(&g, 2));
        assert_eq!(strong_vertex_connectivity(&g, 4), 1);
    }

    #[test]
    fn complete_digraph_is_highly_connected() {
        let g = bidirectional_complete(6);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(is_strongly_c_connected(&g, 2));
        assert!(is_strongly_c_connected(&g, 3));
        assert_eq!(strong_vertex_connectivity(&g, 4), 4);
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        assert!(!is_strongly_c_connected(&g, 1));
        assert_eq!(strong_vertex_connectivity(&g, 3), 0);
    }

    #[test]
    fn two_cycles_sharing_one_vertex_have_a_cut_vertex() {
        // Vertex 0 is shared by two directed triangles; removing it
        // disconnects them.
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 0);
        assert!(is_strongly_c_connected(&g, 1));
        assert!(!is_strongly_c_connected(&g, 2));
        assert_eq!(strong_vertex_connectivity(&g, 3), 1);
    }

    #[test]
    fn tiny_graphs_and_c_zero() {
        assert!(is_strongly_c_connected(&DiGraph::new(1), 3));
        assert!(is_strongly_c_connected(&DiGraph::new(0), 2));
        let g = directed_cycle(2);
        assert!(is_strongly_c_connected(&g, 2)); // n ≤ c
        assert!(is_strongly_c_connected(&g, 0));
    }
}
