//! Borůvka's MST algorithm.

use super::MstResult;
use crate::graph::{Edge, Graph};
use crate::union_find::UnionFind;

/// Computes a minimum spanning forest of `g` with Borůvka's algorithm.
///
/// Each phase attaches, for every current component, its cheapest outgoing
/// edge (ties broken by endpoint indices for determinism).
pub fn boruvka_mst(g: &Graph) -> MstResult {
    let n = g.len();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<Edge> = Vec::new();
    let all_edges = g.edges();
    if n == 0 || all_edges.is_empty() {
        return MstResult::from_edges(chosen);
    }

    loop {
        // cheapest[c] = best outgoing edge for the component rooted at c.
        let mut cheapest: Vec<Option<Edge>> = vec![None; n];
        let mut any = false;
        for e in &all_edges {
            let ru = uf.find(e.u);
            let rv = uf.find(e.v);
            if ru == rv {
                continue;
            }
            any = true;
            for root in [ru, rv] {
                let better = match &cheapest[root] {
                    None => true,
                    Some(current) => {
                        e.weight
                            .total_cmp(&current.weight)
                            .then(e.u.cmp(&current.u))
                            .then(e.v.cmp(&current.v))
                            == std::cmp::Ordering::Less
                    }
                };
                if better {
                    cheapest[root] = Some(*e);
                }
            }
        }
        if !any {
            break;
        }
        let mut progressed = false;
        for candidate in cheapest.iter().take(n) {
            if let Some(e) = *candidate {
                if uf.union(e.u, e.v) {
                    chosen.push(e);
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    MstResult::from_edges(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 2.0);
        let mst = boruvka_mst(&g);
        assert!((mst.total_weight - 3.0).abs() < 1e-12);
        assert!(mst.spans(3));
    }

    #[test]
    fn handles_equal_weights_without_cycles() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 1.0);
        g.add_edge(0, 2, 1.0);
        let mst = boruvka_mst(&g);
        assert_eq!(mst.edges.len(), 3);
        assert!((mst.total_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(boruvka_mst(&g).edges.is_empty());
    }
}
