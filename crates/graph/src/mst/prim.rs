//! Prim's MST algorithm (binary-heap based).

use super::MstResult;
use crate::graph::{Edge, Graph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap entry ordered by weight (then endpoints, for determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEdge {
    weight: f64,
    from: usize,
    to: usize,
}

impl Eq for HeapEdge {}

impl PartialOrd for HeapEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .total_cmp(&other.weight)
            .then(self.from.cmp(&other.from))
            .then(self.to.cmp(&other.to))
    }
}

/// Computes a minimum spanning forest of `g` with Prim's algorithm, starting
/// a new tree from every yet-unvisited vertex (so disconnected graphs yield a
/// forest).
pub fn prim_mst(g: &Graph) -> MstResult {
    let n = g.len();
    let mut in_tree = vec![false; n];
    let mut chosen: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        let mut heap: BinaryHeap<Reverse<HeapEdge>> = BinaryHeap::new();
        for &(v, w) in g.neighbors(start) {
            heap.push(Reverse(HeapEdge {
                weight: w,
                from: start,
                to: v,
            }));
        }
        while let Some(Reverse(e)) = heap.pop() {
            if in_tree[e.to] {
                continue;
            }
            in_tree[e.to] = true;
            chosen.push(Edge::new(e.from, e.to, e.weight));
            for &(v, w) in g.neighbors(e.to) {
                if !in_tree[v] {
                    heap.push(Reverse(HeapEdge {
                        weight: w,
                        from: e.to,
                        to: v,
                    }));
                }
            }
        }
    }
    MstResult::from_edges(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 2.0);
        let mst = prim_mst(&g);
        assert!((mst.total_weight - 3.0).abs() < 1e-12);
        assert!(mst.spans(3));
    }

    #[test]
    fn forest_on_disconnected_input() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 2.0);
        let mst = prim_mst(&g);
        assert_eq!(mst.edges.len(), 3);
        assert!(!mst.spans(5));
    }

    #[test]
    fn heap_edge_ordering_is_by_weight() {
        let a = HeapEdge {
            weight: 1.0,
            from: 5,
            to: 6,
        };
        let b = HeapEdge {
            weight: 2.0,
            from: 0,
            to: 1,
        };
        assert!(a < b);
    }
}
