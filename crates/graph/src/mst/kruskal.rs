//! Kruskal's MST algorithm.

use super::MstResult;
use crate::graph::Graph;
use crate::union_find::UnionFind;

/// Computes a minimum spanning forest of `g` with Kruskal's algorithm.
///
/// Ties are broken deterministically by `(weight, u, v)` so repeated runs on
/// the same graph produce the same tree.
pub fn kruskal_mst(g: &Graph) -> MstResult {
    let mut edges = g.edges();
    edges.sort_by(|a, b| {
        a.weight
            .total_cmp(&b.weight)
            .then(a.u.cmp(&b.u))
            .then(a.v.cmp(&b.v))
    });
    let mut uf = UnionFind::new(g.len());
    let mut chosen = Vec::with_capacity(g.len().saturating_sub(1));
    for e in edges {
        if uf.union(e.u, e.v) {
            chosen.push(e);
            if chosen.len() + 1 == g.len() {
                break;
            }
        }
    }
    MstResult::from_edges(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_cheapest_spanning_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 2.0);
        let mst = kruskal_mst(&g);
        assert_eq!(mst.edges.len(), 2);
        assert!((mst.total_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_ties() {
        let mut g = Graph::new(4);
        // A 4-cycle with all equal weights: two different MSTs exist; the
        // deterministic tie-break must always pick the same one.
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 1.0);
        let a = kruskal_mst(&g);
        let b = kruskal_mst(&g);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.edges.len(), 3);
    }
}
