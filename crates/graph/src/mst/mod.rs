//! Minimum spanning trees.
//!
//! Three classic algorithms are provided (Kruskal, Prim, Borůvka); they are
//! cross-checked against each other in the test-suite.  The Euclidean MST
//! used by the orientation algorithms lives in [`crate::euclidean`] and is
//! built on top of [`prim`] with a deterministic tie-break.

pub mod boruvka;
pub mod kruskal;
pub mod prim;

pub use boruvka::boruvka_mst;
pub use kruskal::kruskal_mst;
pub use prim::prim_mst;

use crate::graph::{Edge, Graph};

/// Result of an MST computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MstResult {
    /// Edges of the spanning forest (a tree when the input is connected).
    pub edges: Vec<Edge>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

impl MstResult {
    /// Builds the result from an edge list.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let total_weight = edges.iter().map(|e| e.weight).sum();
        MstResult {
            edges,
            total_weight,
        }
    }

    /// Returns `true` when the edge set spans a connected graph on `n`
    /// vertices (i.e. it is a spanning tree, not a forest with several
    /// components).
    pub fn spans(&self, n: usize) -> bool {
        n <= 1 || self.edges.len() == n - 1
    }

    /// The maximum edge weight of the tree (`lmax` in the paper), or 0 for an
    /// edgeless result.
    pub fn max_edge_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).fold(0.0, f64::max)
    }

    /// Converts the edge list into a [`Graph`] over `n` vertices.
    pub fn as_graph(&self, n: usize) -> Graph {
        Graph::from_edges(n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_graph() -> Graph {
        // Weighted graph with a known MST of weight 1 + 2 + 3 = 6.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(0, 3, 10.0);
        g.add_edge(0, 2, 10.0);
        g
    }

    #[test]
    fn all_algorithms_agree_on_sample() {
        let g = sample_graph();
        for result in [kruskal_mst(&g), prim_mst(&g), boruvka_mst(&g)] {
            assert!(result.spans(4));
            assert!((result.total_weight - 6.0).abs() < 1e-12);
            assert!((result.max_edge_weight() - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 2.0);
        let result = kruskal_mst(&g);
        assert_eq!(result.edges.len(), 2);
        assert!(!result.spans(4));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Graph::new(0);
        assert!(kruskal_mst(&empty).edges.is_empty());
        assert!(prim_mst(&empty).edges.is_empty());
        assert!(boruvka_mst(&empty).edges.is_empty());
        let single = Graph::new(1);
        assert!(kruskal_mst(&single).spans(1));
        assert!(prim_mst(&single).spans(1));
    }

    #[test]
    fn as_graph_round_trips_edges() {
        let g = sample_graph();
        let mst = kruskal_mst(&g).as_graph(4);
        assert_eq!(mst.edge_count(), 3);
        assert!(mst.has_edge(0, 1));
        assert!(mst.has_edge(1, 2));
        assert!(mst.has_edge(2, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_three_algorithms_same_weight(
            n in 2usize..20,
            raw_edges in proptest::collection::vec((0usize..20, 0usize..20, 0.01..100.0f64), 1..100)
        ) {
            let mut g = Graph::new(n);
            for (u, v, w) in raw_edges {
                if u < n && v < n && u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v, w);
                }
            }
            let k = kruskal_mst(&g);
            let p = prim_mst(&g);
            let b = boruvka_mst(&g);
            prop_assert!((k.total_weight - p.total_weight).abs() < 1e-6);
            prop_assert!((k.total_weight - b.total_weight).abs() < 1e-6);
            prop_assert_eq!(k.edges.len(), p.edges.len());
            prop_assert_eq!(k.edges.len(), b.edges.len());
        }
    }
}
