//! Euclidean minimum spanning trees with maximum degree 5.
//!
//! The paper's constructions all operate on "an arbitrary minimum weight
//! spanning tree (MST) induced when edges between any two points are weighted
//! by their corresponding Euclidean distance", and use the well-known fact
//! that **an MST of maximum degree 5 always exists**.  In exact arithmetic,
//! any Euclidean MST already has maximum degree ≤ 6, and degree 6 only occurs
//! when six neighbours sit at exactly 60° from each other at identical
//! distances; a local exchange (replace one of the two tied star edges by the
//! equally long edge between the two neighbours) removes the tie without
//! increasing the weight.  [`EuclideanMst::build`] runs one of two engines
//! followed by that repair pass, and the test-suite checks the degree bound
//! on adversarial inputs (hexagonal lattices) as well as random ones.
//!
//! # Engines
//!
//! Two interchangeable MST engines produce the spanning edges (see
//! [`MstEngine`]):
//!
//! * **Dense Prim** — the classic O(n²)-time, O(n)-memory pass over the
//!   complete Euclidean graph.  Unbeatable for small inputs (no spatial index
//!   to build) and kept as the *oracle* the kd-tree engine is property-tested
//!   against.
//! * **Kd-tree Borůvka** — Borůvka rounds whose "cheapest outgoing edge per
//!   component" queries run as nearest-foreign-component searches against a
//!   [`KdIndex`] built directly over the caller's points (no copy).
//!   O(n log n)-class on typical inputs: each of the O(log n) rounds performs
//!   n pruned nearest-neighbour queries, and on multi-core hosts both the
//!   index construction and the per-round scans fan out over worker threads
//!   (see [`EuclideanMst::build_with_engine_threads`]) while producing
//!   bit-identical trees at every thread count.
//!
//! Each engine breaks weight ties deterministically — dense Prim prefers the
//! lexicographically smaller `(target, source)` pair, the Borůvka engine a
//! total order on edges (weight, then smaller endpoint, then larger
//! endpoint) — so each computes a true MST even on degenerate inputs.  The
//! two orders differ, so the *trees* may differ on tied inputs; but since
//! **every** MST of a graph has the same multiset of edge weights, the
//! engines always agree on `total_weight` and `lmax`, which is exactly what
//! the cross-engine property tests assert.
//!
//! [`EuclideanMst::build`] selects the engine by input size (the
//! [`KDTREE_CROSSOVER`] threshold); `build_with_engine` pins one explicitly.

use crate::graph::{Edge, Graph};
use crate::union_find::UnionFind;
use antennae_geometry::angular::{circular_gaps, sort_ccw};
use antennae_geometry::{KdIndex, Point};
use antennae_parallel::{chunk_ranges, default_threads, parallel_map};
use serde::{Deserialize, Serialize};

/// Maximum vertex degree the orientation algorithms assume (`Δ(T) ≤ 5`).
pub const MAX_MST_DEGREE: usize = 5;

/// Input size at which [`MstEngine::Auto`] switches from dense Prim to the
/// kd-tree Borůvka engine.
///
/// Below this size the O(n²) pass is faster in practice because it builds no
/// spatial index and touches memory linearly.  The `mst_scaling` criterion
/// bench in `antennae-bench` tracks the real crossover; on container
/// hardware dense Prim wins at n = 500 (1.04 ms vs 1.35 ms) and loses from
/// n = 1000 (3.66 ms vs 3.00 ms), so the threshold sits between those
/// points.  Misclassifying slightly is cheap near the crossover (tens of
/// percent on sub-millisecond builds) and expensive far above it
/// (quadratic vs quasi-linear), which is why it leans low.
pub const KDTREE_CROSSOVER: usize = 768;

/// Which algorithm produces the spanning edges of a [`EuclideanMst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MstEngine {
    /// Pick by input size: dense Prim below [`KDTREE_CROSSOVER`] points,
    /// kd-tree Borůvka at or above it.
    Auto,
    /// The O(n²) dense Prim pass (also the property-test oracle).
    DensePrim,
    /// Borůvka rounds over kd-tree nearest-foreign-component queries,
    /// O(n log n)-class on typical inputs.
    KdTreeBoruvka,
}

impl Default for MstEngine {
    /// `Auto`, so that payloads serialized before the engine field existed
    /// (and builders that don't care) get size-based selection.
    fn default() -> Self {
        MstEngine::Auto
    }
}

impl MstEngine {
    /// The concrete engine `Auto` resolves to for an input of `n` points.
    pub fn resolve(self, n: usize) -> MstEngine {
        match self {
            MstEngine::Auto => {
                if n >= KDTREE_CROSSOVER {
                    MstEngine::KdTreeBoruvka
                } else {
                    MstEngine::DensePrim
                }
            }
            other => other,
        }
    }
}

/// Errors that can occur while building a Euclidean MST.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmstError {
    /// The input point set was empty.
    EmptyPointSet,
    /// The degree-repair pass failed to reduce the maximum degree to 5.
    ///
    /// This cannot happen for point sets in general position; it is reported
    /// rather than panicking so that degenerate inputs fail loudly.
    DegreeRepairFailed {
        /// The maximum degree that remained after the repair pass.
        remaining_max_degree: usize,
    },
}

impl std::fmt::Display for EmstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmstError::EmptyPointSet => write!(f, "cannot build an MST over an empty point set"),
            EmstError::DegreeRepairFailed {
                remaining_max_degree,
            } => write!(
                f,
                "failed to reduce the MST maximum degree to {MAX_MST_DEGREE} (still {remaining_max_degree})"
            ),
        }
    }
}

impl std::error::Error for EmstError {}

/// A Euclidean MST over a point set, with maximum degree at most 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EuclideanMst {
    points: Vec<Point>,
    tree: Graph,
    lmax: f64,
    #[serde(default)]
    engine: MstEngine,
}

impl EuclideanMst {
    /// Builds the Euclidean MST of `points` and repairs it to maximum degree
    /// 5, selecting the engine by input size ([`MstEngine::Auto`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use antennae_geometry::Point;
    /// use antennae_graph::euclidean::EuclideanMst;
    ///
    /// let points = vec![
    ///     Point::new(0.0, 0.0),
    ///     Point::new(3.0, 4.0),
    ///     Point::new(3.0, 5.0),
    /// ];
    /// let mst = EuclideanMst::build(&points)?;
    /// assert_eq!(mst.edges().len(), 2);
    /// // The longest edge (0,0)–(3,4) normalises every radius guarantee.
    /// assert!((mst.lmax() - 5.0).abs() < 1e-12);
    /// assert!(mst.max_degree() <= 5);
    /// # Ok::<(), antennae_graph::euclidean::EmstError>(())
    /// ```
    pub fn build(points: &[Point]) -> Result<Self, EmstError> {
        Self::build_with_engine(points, MstEngine::Auto)
    }

    /// Builds the Euclidean MST of `points` with an explicitly chosen engine,
    /// using [`antennae_parallel::default_threads`] worker threads for the
    /// kd-tree engine's build pipeline.
    ///
    /// `MstEngine::DensePrim` runs in O(n²) time and O(n) additional memory;
    /// `MstEngine::KdTreeBoruvka` in O(n log n)-class time.  Both produce a
    /// genuine MST (identical `total_weight` and `lmax`; the trees themselves
    /// may differ on tied edge weights).
    pub fn build_with_engine(points: &[Point], engine: MstEngine) -> Result<Self, EmstError> {
        Self::build_with_engine_threads(points, engine, default_threads())
    }

    /// [`EuclideanMst::build_with_engine`] with an explicit worker-thread
    /// count for the kd-tree engine (index construction and the per-round
    /// Borůvka scans fan out; dense Prim and the degree-repair pass are
    /// serial at every thread count).
    ///
    /// The result is **bit-identical** for every `threads` value: the
    /// parallel kd-tree build produces the same logical tree as the serial
    /// one, kd queries are layout-independent pure functions of the point
    /// set, and each Borůvka round's per-component minimum under the
    /// tie-broken total order does not depend on how the scan is chunked.
    /// The `parallel_build_oracle` integration suite in `antennae-core`
    /// pins this equality end-to-end (MST, scheme, digraph, report).
    pub fn build_with_engine_threads(
        points: &[Point],
        engine: MstEngine,
        threads: usize,
    ) -> Result<Self, EmstError> {
        if points.is_empty() {
            return Err(EmstError::EmptyPointSet);
        }
        let n = points.len();
        let resolved = engine.resolve(n);
        let spanning = if n > 1 {
            match resolved {
                MstEngine::DensePrim => dense_prim(points),
                MstEngine::KdTreeBoruvka => kd_boruvka(points, threads),
                MstEngine::Auto => unreachable!("resolve() returns a concrete engine"),
            }
        } else {
            Vec::new()
        };
        Self::assemble(points, &spanning, resolved)
    }

    /// Shared tail of every engine path: assemble the spanning edges into a
    /// canonical tree (adjacency sorted before *and* after the degree-repair
    /// pass, so the result depends only on the spanning edge **set**, never
    /// on the order an engine discovered the edges in) and validate the
    /// degree bound.  The sharded stitched builder (`crate::sharded`) feeds
    /// its boundary-merged edge set through this same tail, which is what
    /// makes it bit-identical to the global build.
    pub(crate) fn assemble(
        points: &[Point],
        spanning: &[Edge],
        engine: MstEngine,
    ) -> Result<Self, EmstError> {
        if points.is_empty() {
            return Err(EmstError::EmptyPointSet);
        }
        let mut tree = Graph::new(points.len());
        for e in spanning {
            tree.add_edge(e.u, e.v, e.weight);
        }
        tree.sort_adjacency();
        repair_degree(points, &mut tree);
        tree.sort_adjacency();
        let max_degree = tree.max_degree();
        if max_degree > MAX_MST_DEGREE {
            return Err(EmstError::DegreeRepairFailed {
                remaining_max_degree: max_degree,
            });
        }
        let lmax = tree.max_edge_weight();
        Ok(EuclideanMst {
            points: points.to_vec(),
            tree,
            lmax,
            engine,
        })
    }

    /// Wraps an already-computed spanning tree as a [`EuclideanMst`] without
    /// re-running an engine — the materialization hook of the incremental
    /// engine ([`crate::dynamic::DynamicEmst`]).
    ///
    /// The caller asserts that `tree` is a genuine Euclidean MST over
    /// `points`; only the degree bound is re-validated here (the incremental
    /// engine's repair pass mirrors the static one, so a violation means a
    /// bug upstream).  `lmax` is derived from the tree, and the engine field
    /// reports [`MstEngine::Auto`] ("provenance unknown"), matching the
    /// contract for payloads that predate the engine field.
    pub fn from_precomputed(points: Vec<Point>, mut tree: Graph) -> Result<Self, EmstError> {
        if points.is_empty() {
            return Err(EmstError::EmptyPointSet);
        }
        // Same canonical neighbour order as the engine paths (a no-op for
        // the incremental engine, whose materialization already inserts
        // edges in ascending order).
        tree.sort_adjacency();
        let max_degree = tree.max_degree();
        if max_degree > MAX_MST_DEGREE {
            return Err(EmstError::DegreeRepairFailed {
                remaining_max_degree: max_degree,
            });
        }
        let lmax = tree.max_edge_weight();
        Ok(EuclideanMst {
            points,
            tree,
            lmax,
            engine: MstEngine::Auto,
        })
    }

    /// Returns a copy of the tree with every coordinate and edge length
    /// divided by `divisor` (which must be positive and finite).
    ///
    /// A Euclidean MST's topology is scale-invariant, so no rebuild is
    /// needed: the edge set is preserved exactly and only the lengths
    /// change.  Dividing each stored weight `w` by `divisor` makes
    /// `rescaled(lmax).lmax() == 1.0` *exact* (`x/x == 1.0` for any finite
    /// positive `x`), which is what `Instance::normalized` relies on.  Note
    /// the rescaled weights may differ by an ulp from distances recomputed
    /// from the rescaled coordinates — `(xu − xv)/d` is not bit-identical
    /// to `xu/d − xv/d` in floating point — so don't assert exact equality
    /// between the two.
    pub fn rescaled(&self, divisor: f64) -> EuclideanMst {
        assert!(
            divisor.is_finite() && divisor > 0.0,
            "rescale divisor must be positive and finite"
        );
        let points: Vec<Point> = self
            .points
            .iter()
            .map(|p| Point::new(p.x / divisor, p.y / divisor))
            .collect();
        let mut tree = self.tree.clone();
        tree.map_weights(|w| w / divisor);
        EuclideanMst {
            points,
            tree,
            lmax: self.lmax / divisor,
            engine: self.engine,
        }
    }

    /// The engine that produced this tree.
    ///
    /// Freshly built trees always report a concrete engine
    /// ([`MstEngine::Auto`] is resolved before building); only a tree
    /// deserialized from a payload predating the engine field reports the
    /// [`MstEngine::default`] of `Auto`, meaning "provenance unknown".
    pub fn engine(&self) -> MstEngine {
        self.engine
    }

    /// The underlying point set (indices of the tree refer to this slice).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The tree as an undirected weighted graph.
    pub fn tree(&self) -> &Graph {
        &self.tree
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the MST has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The longest edge of the MST (`lmax`), the paper's lower bound on the
    /// antenna range needed for connectivity.  Zero for a single point.
    pub fn lmax(&self) -> f64 {
        self.lmax
    }

    /// Total weight of the tree.
    pub fn total_weight(&self) -> f64 {
        self.tree.total_weight()
    }

    /// Degree of vertex `v` in the tree.
    pub fn degree(&self, v: usize) -> usize {
        self.tree.degree(v)
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.tree.max_degree()
    }

    /// Neighbours of `v` in the tree (with edge lengths).
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        self.tree.neighbors(v)
    }

    /// Edges of the tree.
    pub fn edges(&self) -> Vec<Edge> {
        self.tree.edges()
    }

    /// Indices of the degree-one vertices (leaves).  Every tree with ≥ 2
    /// vertices has at least two.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len()).filter(|&v| self.degree(v) == 1).collect()
    }

    /// The minimum interior angle (radians) between two tree edges sharing a
    /// vertex, over all such pairs — Fact 1(1) of the paper states that this
    /// is at least π/3 for a true MST.  Returns `None` when no vertex has two
    /// or more neighbours.
    pub fn min_adjacent_edge_angle(&self) -> Option<f64> {
        let mut min_angle: Option<f64> = None;
        for v in 0..self.len() {
            let neighbors: Vec<Point> = self
                .neighbors(v)
                .iter()
                .map(|&(u, _)| self.points[u])
                .collect();
            if neighbors.len() < 2 {
                continue;
            }
            let sorted = sort_ccw(&self.points[v], &neighbors);
            let gaps = circular_gaps(&sorted);
            // Adjacent-edge angles are the circular gaps; exclude the single
            // "wrap-around" gap only when there are exactly 2 neighbours
            // (both gaps are genuine angles then as well, so keep all).
            for g in gaps {
                if min_angle.is_none_or(|m| g < m) {
                    min_angle = Some(g);
                }
            }
        }
        min_angle
    }
}

/// Dense Prim over the complete Euclidean graph: O(n²) time, O(n) memory.
///
/// Ties between equal candidate distances are broken by preferring the
/// lexicographically smaller `(target, source)` pair, which keeps the tree
/// deterministic and helps avoid the degree-6 tie configurations.
fn dense_prim(points: &[Point]) -> Vec<Edge> {
    let n = points.len();
    let mut in_tree = vec![false; n];
    // best_dist[v] = squared distance from v to the tree, best_from[v] = the
    // tree vertex realising it.
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for v in 1..n {
        best_dist[v] = points[0].distance_squared(&points[v]);
        best_from[v] = 0;
    }
    for _ in 1..n {
        // Pick the unvisited vertex closest to the tree.
        let mut pick = usize::MAX;
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            if pick == usize::MAX
                || best_dist[v] < best_dist[pick]
                || (best_dist[v] == best_dist[pick] && v < pick)
            {
                pick = v;
            }
        }
        let from = best_from[pick];
        edges.push(Edge::new(from, pick, points[from].distance(&points[pick])));
        in_tree[pick] = true;
        // Relax the remaining vertices.
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            let d = points[pick].distance_squared(&points[v]);
            if d < best_dist[v] || (d == best_dist[v] && pick < best_from[v]) {
                best_dist[v] = d;
                best_from[v] = pick;
            }
        }
    }
    edges
}

/// Smallest input for which a Borůvka round's scan is worth fanning out;
/// below this the thread-scope setup dwarfs the queries themselves.
pub(crate) const PARALLEL_BORUVKA_MIN: usize = 4096;

/// Kd-tree Borůvka over the implicit complete Euclidean graph.
///
/// Each round relabels every vertex with its component root, asks the kd-tree
/// for every vertex's nearest *foreign* point ([`KdIndex::nearest_foreign`]),
/// keeps the minimal candidate edge per component, and merges.  Candidate
/// edges are compared by the total order `(weight, min endpoint, max
/// endpoint)`; because the kd-tree breaks distance ties towards the smaller
/// index, each component's winner is *the* minimum outgoing edge under that
/// order, which makes the procedure the plain Borůvka algorithm on a graph
/// with all-distinct (tie-perturbed) weights: no cycles form, and the result
/// is a true MST even for duplicate points and exact-tie lattices.
///
/// The component count at least halves per round, so there are O(log n)
/// rounds of n pruned nearest-neighbour queries each.  With `threads > 1`
/// each round's scan is chunked over [`chunk_ranges`] and the per-chunk
/// winners merged serially; the per-component minimum under the total order
/// is the same whatever the chunking (see [`scan_run`]), so every thread
/// count yields the identical edge list, bit for bit.
pub(crate) fn kd_boruvka(points: &[Point], threads: usize) -> Vec<Edge> {
    let n = points.len();
    // The index borrows `points` — the MST build path holds no extra copy of
    // the point set (the earlier owning `KdTree` doubled point storage,
    // which at a million sensors is 16 MB of needless resident memory).
    let tree = KdIndex::build_with_threads(points, threads);
    let mut uf = UnionFind::new(n);
    let mut labels = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    // Cross-round cache: `cache[v]` is v's exact nearest foreign point from
    // an earlier round.  Components only ever merge, so the cached point
    // stays v's exact nearest foreigner for as long as it remains foreign —
    // only vertices whose candidate got absorbed re-query the tree.
    let mut cache: Vec<Option<(usize, f64)>> = vec![None; n];
    // Vertices grouped by component so that a component's current-best
    // distance can seed (bound) its later members' searches.
    let mut order: Vec<usize> = (0..n).collect();
    // Round-persistent scratch, allocated once and reset through `touched`
    // instead of reallocated every round: the minimal outgoing candidate per
    // component root as (weight, min endpoint, max endpoint), and the roots
    // written this round.
    let mut best: Vec<Option<(f64, usize, usize)>> = vec![None; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut round: Vec<(f64, usize, usize)> = Vec::new();

    while uf.component_count() > 1 {
        for (v, label) in labels.iter_mut().enumerate() {
            *label = uf.find(v);
        }
        order.sort_unstable_by_key(|&v| labels[v]);
        // Scan for every vertex's candidate edge, grouped into per-run
        // winners.  The parallel path chunks the sorted order; a component
        // run that straddles a chunk boundary simply produces one winner per
        // fragment, reconciled in the merge below.
        let scans: Vec<RunScan> = if threads > 1 && n >= PARALLEL_BORUVKA_MIN {
            let ranges = chunk_ranges(n, threads);
            parallel_map(&ranges, threads, |&(start, end)| {
                scan_run(points, &tree, &labels, &cache, &order[start..end])
            })
        } else {
            vec![scan_run(points, &tree, &labels, &cache, &order)]
        };
        for (winners, cache_updates) in scans {
            // Chunks cover disjoint vertex sets (each v appears once in
            // `order`), so these writes never conflict.
            for (v, found) in cache_updates {
                cache[v] = Some(found);
            }
            for (root, candidate) in winners {
                match &mut best[root] {
                    Some(b) => {
                        if edge_order(candidate, *b) == std::cmp::Ordering::Less {
                            *b = candidate;
                        }
                    }
                    slot => {
                        touched.push(root);
                        *slot = Some(candidate);
                    }
                }
            }
        }
        round.clear();
        for &root in &touched {
            round.extend(best[root].take()); // take() resets the scratch slot
        }
        touched.clear();
        round.sort_by(|&a, &b| edge_order(a, b));
        let before = uf.component_count();
        for &(d, a, b) in &round {
            // Two components may nominate the same edge; the second union is
            // a no-op rather than a duplicate edge.
            if uf.union(a, b) {
                edges.push(Edge::new(a, b, d));
            }
        }
        debug_assert!(
            uf.component_count() < before,
            "every Borůvka round merges at least two components"
        );
    }
    edges
}

/// Per-run winners and newly learned nearest-foreigner facts from one scan
/// over a slice of the component-sorted vertex order: `(root, candidate)`
/// pairs (one per contiguous same-root run in the slice) and `(v, nearest
/// foreigner)` cache updates.
type RunScan = (
    Vec<(usize, (f64, usize, usize))>,
    Vec<(usize, (usize, f64))>,
);

/// Scans one slice of the component-sorted vertex order for candidate edges.
///
/// Within a contiguous same-root run the running best distance seeds
/// (bounds) later members' searches — a farther point cannot win the run
/// anyway, and points at exactly the bound are still found.  A bounded query
/// that returns `None` merely means "cannot beat the run's best"; a `Some`
/// is the vertex's true nearest foreigner (the bound only hides strictly
/// farther points) and is recorded as a cache update.
///
/// **Chunking invariance:** splitting a component's run across chunks only
/// weakens the seeding bounds (each fragment starts from ∞), which can make
/// more queries return `Some` — but every `Some` is the exact per-vertex
/// nearest foreigner, so the per-root minimum of the merged fragment winners
/// under [`edge_order`] equals the single-scan winner.  Cache contents may
/// likewise differ across thread counts, but a cache entry is only ever an
/// exact nearest foreigner and is used only while still foreign, when a
/// fresh query would return the very same pair.  Hence the merged result —
/// and therefore the whole MST — is bit-identical for every chunking.
fn scan_run(
    points: &[Point],
    tree: &KdIndex,
    labels: &[usize],
    cache: &[Option<(usize, f64)>],
    order: &[usize],
) -> RunScan {
    let mut winners: Vec<(usize, (f64, usize, usize))> = Vec::new();
    let mut cache_updates: Vec<(usize, (usize, f64))> = Vec::new();
    // The current contiguous run's root and its best candidate so far.
    let mut current: Option<(usize, (f64, usize, usize))> = None;
    for &v in order {
        let root = labels[v];
        let bound = match current {
            Some((r, (d, _, _))) if r == root => d,
            _ => {
                // A new run begins: flush the finished one.
                if let Some(done) = current.take() {
                    winners.push(done);
                }
                f64::INFINITY
            }
        };
        let candidate = match cache[v] {
            Some((u, d)) if labels[u] != root => Some((u, d)),
            _ => {
                let found = tree.nearest_foreign_within(points, &points[v], labels, root, bound);
                if let Some(f) = found {
                    cache_updates.push((v, f));
                }
                found
            }
        };
        let Some((u, d)) = candidate else {
            continue;
        };
        let candidate = (d, v.min(u), v.max(u));
        match &mut current {
            Some((r, b)) if *r == root => {
                if edge_order(candidate, *b) == std::cmp::Ordering::Less {
                    *b = candidate;
                }
            }
            _ => current = Some((root, candidate)),
        }
    }
    if let Some(done) = current {
        winners.push(done);
    }
    (winners, cache_updates)
}

/// The tie-broken total order on candidate edges shared by both engines.
pub(crate) fn edge_order(a: (f64, usize, usize), b: (f64, usize, usize)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

/// Local exchange pass that reduces vertices of degree > 5 (which can only
/// arise from exact 60° / equal-length ties) without increasing the tree
/// weight by more than floating-point noise.
pub(crate) fn repair_degree(points: &[Point], tree: &mut Graph) {
    let n = points.len();
    // A generous iteration cap: each exchange strictly reduces the number of
    // (vertex, excess-degree) units, but guard against pathological floating
    // point behaviour anyway.
    let mut budget = 4 * n + 16;
    loop {
        let Some(v) = (0..n).find(|&v| tree.degree(v) > MAX_MST_DEGREE) else {
            return;
        };
        if budget == 0 {
            return;
        }
        budget -= 1;
        // Sort v's neighbours counterclockwise and find the angularly closest
        // adjacent pair.
        let neighbor_ids: Vec<usize> = tree.neighbors(v).iter().map(|&(u, _)| u).collect();
        let neighbor_pts: Vec<Point> = neighbor_ids.iter().map(|&u| points[u]).collect();
        let sorted = sort_ccw(&points[v], &neighbor_pts);
        let gaps = circular_gaps(&sorted);
        let d = sorted.len();
        let (closest_pair_idx, _) = gaps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("degree > 5 vertex has neighbours");
        let a = neighbor_ids[sorted[closest_pair_idx].index];
        let b = neighbor_ids[sorted[(closest_pair_idx + 1) % d].index];
        // Replace the longer of (v,a),(v,b) by (a,b).
        let da = points[v].distance(&points[a]);
        let db = points[v].distance(&points[b]);
        let drop_endpoint = if da >= db { a } else { b };
        tree.remove_edge(v, drop_endpoint);
        tree.add_edge(a, b, points[a].distance(&points[b]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::kruskal_mst;
    use antennae_geometry::PI;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect()
    }

    #[test]
    fn empty_input_is_rejected() {
        match EuclideanMst::build(&[]) {
            Err(EmstError::EmptyPointSet) => {}
            other => panic!("expected EmptyPointSet error, got {other:?}"),
        }
    }

    #[test]
    fn single_point_tree() {
        let mst = EuclideanMst::build(&[Point::new(1.0, 2.0)]).unwrap();
        assert_eq!(mst.len(), 1);
        assert_eq!(mst.lmax(), 0.0);
        assert!(mst.edges().is_empty());
        assert_eq!(mst.max_degree(), 0);
    }

    #[test]
    fn two_points_single_edge() {
        let mst = EuclideanMst::build(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]).unwrap();
        assert_eq!(mst.edges().len(), 1);
        assert!((mst.lmax() - 5.0).abs() < 1e-12);
        assert_eq!(mst.leaves(), vec![0, 1]);
    }

    #[test]
    fn collinear_points_form_a_path() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        let mst = EuclideanMst::build(&pts).unwrap();
        assert_eq!(mst.edges().len(), 5);
        assert!((mst.total_weight() - 5.0).abs() < 1e-12);
        assert!((mst.lmax() - 1.0).abs() < 1e-12);
        assert_eq!(mst.max_degree(), 2);
        assert_eq!(mst.leaves().len(), 2);
    }

    #[test]
    fn matches_kruskal_on_random_points() {
        for seed in 0..5 {
            let pts = random_points(60, seed);
            let mst = EuclideanMst::build(&pts).unwrap();
            let complete = Graph::complete(pts.len(), |u, v| pts[u].distance(&pts[v]));
            let reference = kruskal_mst(&complete);
            assert!(
                (mst.total_weight() - reference.total_weight).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                mst.total_weight(),
                reference.total_weight
            );
        }
    }

    #[test]
    fn max_degree_is_at_most_five_on_random_points() {
        for seed in 0..10 {
            let pts = random_points(200, seed);
            let mst = EuclideanMst::build(&pts).unwrap();
            assert!(mst.max_degree() <= MAX_MST_DEGREE);
        }
    }

    #[test]
    fn hexagonal_star_is_repaired_to_degree_five() {
        // A centre with 6 neighbours at exactly 60° and equal distance: the
        // adversarial tie configuration that produces degree 6.
        let mut pts = vec![Point::new(0.0, 0.0)];
        for k in 0..6 {
            let theta = k as f64 * PI / 3.0;
            pts.push(Point::new(theta.cos(), theta.sin()));
        }
        let mst = EuclideanMst::build(&pts).unwrap();
        assert!(mst.max_degree() <= MAX_MST_DEGREE);
        // The repair must preserve the spanning property and the weight.
        assert_eq!(mst.edges().len(), pts.len() - 1);
        assert!((mst.total_weight() - 6.0).abs() < 1e-9);
        assert!((mst.lmax() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hexagonal_lattice_is_repaired() {
        // Several rings of a triangular lattice: many exact ties at once.
        let mut pts = Vec::new();
        for i in -3i32..=3 {
            for j in -3i32..=3 {
                let x = i as f64 + 0.5 * j as f64;
                let y = j as f64 * (3.0f64).sqrt() / 2.0;
                pts.push(Point::new(x, y));
            }
        }
        let mst = EuclideanMst::build(&pts).unwrap();
        assert!(mst.max_degree() <= MAX_MST_DEGREE);
        assert_eq!(mst.edges().len(), pts.len() - 1);
    }

    #[test]
    fn duplicate_points_are_connected_with_zero_length_edges() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ];
        let mst = EuclideanMst::build(&pts).unwrap();
        assert_eq!(mst.edges().len(), 2);
        assert!((mst.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fact1_minimum_adjacent_angle_at_least_sixty_degrees() {
        // Fact 1(1): adjacent MST edges form an angle of at least π/3.  We
        // allow a tiny tolerance for floating point and for the repair pass.
        for seed in 20..26 {
            let pts = random_points(150, seed);
            let mst = EuclideanMst::build(&pts).unwrap();
            if let Some(min_angle) = mst.min_adjacent_edge_angle() {
                assert!(
                    min_angle >= PI / 3.0 - 1e-6,
                    "seed {seed}: min adjacent angle {min_angle} < π/3"
                );
            }
        }
    }

    #[test]
    fn rescaled_preserves_topology_and_normalizes_lmax_exactly() {
        let pts = random_points(80, 7);
        let mst = EuclideanMst::build(&pts).unwrap();
        let scaled = mst.rescaled(mst.lmax());
        // lmax/lmax is exactly 1.0 — no tolerance needed.
        assert_eq!(scaled.lmax(), 1.0);
        assert_eq!(scaled.engine(), mst.engine());
        // Identical edge sets (topology is scale-invariant), lengths divided.
        let key = |e: &Edge| (e.u.min(e.v), e.u.max(e.v));
        let mut original: Vec<_> = mst.edges().iter().map(key).collect();
        let mut rescaled: Vec<_> = scaled.edges().iter().map(key).collect();
        original.sort_unstable();
        rescaled.sort_unstable();
        assert_eq!(original, rescaled);
        for e in scaled.edges() {
            let expected = mst.points()[e.u].distance(&mst.points()[e.v]) / mst.lmax();
            assert!((e.weight - expected).abs() < 1e-15);
        }
        assert!(scaled.max_degree() <= MAX_MST_DEGREE);
    }

    #[test]
    fn engines_agree_on_collinear_points() {
        let pts: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_engines_agree(&pts);
    }

    #[test]
    fn engines_agree_on_duplicate_and_shared_coordinate_points() {
        // Duplicates and duplicate-coordinate columns/rows: worst case for
        // kd-tree splitting planes and for distance ties.
        let mut pts = Vec::new();
        for i in 0..8 {
            for j in 0..4 {
                pts.push(Point::new(i as f64, j as f64));
                pts.push(Point::new(i as f64, j as f64)); // exact duplicate
            }
        }
        assert_engines_agree(&pts);
    }

    #[test]
    fn engines_agree_on_hexagonal_lattice() {
        let mut pts = Vec::new();
        for i in -3i32..=3 {
            for j in -3i32..=3 {
                let x = i as f64 + 0.5 * j as f64;
                let y = j as f64 * (3.0f64).sqrt() / 2.0;
                pts.push(Point::new(x, y));
            }
        }
        assert_engines_agree(&pts);
    }

    #[test]
    fn auto_engine_switches_at_the_crossover() {
        let small = random_points(8, 1);
        let mst = EuclideanMst::build(&small).unwrap();
        assert_eq!(mst.engine(), MstEngine::DensePrim);

        let big = random_points(KDTREE_CROSSOVER, 2);
        let mst = EuclideanMst::build(&big).unwrap();
        assert_eq!(mst.engine(), MstEngine::KdTreeBoruvka);
        assert_eq!(mst.edges().len(), big.len() - 1);
        assert!(mst.max_degree() <= MAX_MST_DEGREE);
    }

    #[test]
    fn kd_engine_matches_dense_on_larger_random_sets() {
        for seed in 0..3 {
            let pts = random_points(600, 100 + seed);
            assert_engines_agree(&pts);
        }
    }

    #[test]
    fn kd_engine_is_bit_identical_across_thread_counts() {
        // Above PARALLEL_BORUVKA_MIN so the chunked scan path actually runs;
        // the edge lists (not just the weights) must match bit for bit.
        let pts = random_points(PARALLEL_BORUVKA_MIN + 500, 42);
        let serial =
            EuclideanMst::build_with_engine_threads(&pts, MstEngine::KdTreeBoruvka, 1).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel =
                EuclideanMst::build_with_engine_threads(&pts, MstEngine::KdTreeBoruvka, threads)
                    .unwrap();
            let key = |e: &Edge| (e.u, e.v, e.weight.to_bits());
            let serial_edges: Vec<_> = serial.edges().iter().map(key).collect();
            let parallel_edges: Vec<_> = parallel.edges().iter().map(key).collect();
            assert_eq!(serial_edges, parallel_edges, "threads={threads}");
            assert_eq!(serial.lmax().to_bits(), parallel.lmax().to_bits());
        }
    }

    /// Both engines must produce genuine MSTs: spanning, degree ≤ 5, and —
    /// since all MSTs of a graph share one multiset of edge weights —
    /// identical total weight and identical `lmax`.
    fn assert_engines_agree(pts: &[Point]) {
        let dense = EuclideanMst::build_with_engine(pts, MstEngine::DensePrim).unwrap();
        let kd = EuclideanMst::build_with_engine(pts, MstEngine::KdTreeBoruvka).unwrap();
        assert_eq!(dense.edges().len(), pts.len() - 1);
        assert_eq!(kd.edges().len(), pts.len() - 1);
        assert!(
            (dense.total_weight() - kd.total_weight()).abs() < 1e-6,
            "total weight: dense {} vs kd {}",
            dense.total_weight(),
            kd.total_weight()
        );
        assert!(
            (dense.lmax() - kd.lmax()).abs() < 1e-9,
            "lmax: dense {} vs kd {}",
            dense.lmax(),
            kd.lmax()
        );
        assert!(kd.max_degree() <= MAX_MST_DEGREE);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_kdtree_engine_matches_dense_oracle(
            xs in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..120)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let dense = EuclideanMst::build_with_engine(&pts, MstEngine::DensePrim).unwrap();
            let kd = EuclideanMst::build_with_engine(&pts, MstEngine::KdTreeBoruvka).unwrap();
            prop_assert_eq!(kd.edges().len(), pts.len() - 1);
            prop_assert!((dense.total_weight() - kd.total_weight()).abs() < 1e-6,
                "weight {} vs {}", dense.total_weight(), kd.total_weight());
            prop_assert!((dense.lmax() - kd.lmax()).abs() < 1e-9,
                "lmax {} vs {}", dense.lmax(), kd.lmax());
            prop_assert!(kd.max_degree() <= MAX_MST_DEGREE);
        }

        #[test]
        fn prop_kdtree_engine_handles_snapped_degenerate_grids(
            xs in proptest::collection::vec((0usize..12, 0usize..12), 2..80)
        ) {
            // Integer-snapped points: many exact duplicates, shared x/y
            // columns, and tied candidate distances in every round.
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x as f64, y as f64)).collect();
            let dense = EuclideanMst::build_with_engine(&pts, MstEngine::DensePrim).unwrap();
            let kd = EuclideanMst::build_with_engine(&pts, MstEngine::KdTreeBoruvka).unwrap();
            prop_assert!((dense.total_weight() - kd.total_weight()).abs() < 1e-6,
                "weight {} vs {}", dense.total_weight(), kd.total_weight());
            prop_assert!((dense.lmax() - kd.lmax()).abs() < 1e-9,
                "lmax {} vs {}", dense.lmax(), kd.lmax());
            prop_assert!(kd.max_degree() <= MAX_MST_DEGREE);
        }

        #[test]
        fn prop_spanning_tree_with_degree_bound(
            xs in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..80)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mst = EuclideanMst::build(&pts).unwrap();
            prop_assert_eq!(mst.edges().len(), pts.len() - 1);
            prop_assert!(mst.max_degree() <= MAX_MST_DEGREE);
            // lmax is indeed the maximum edge weight.
            let lmax = mst.edges().iter().map(|e| e.weight).fold(0.0, f64::max);
            prop_assert!((mst.lmax() - lmax).abs() < 1e-12);
        }

        #[test]
        fn prop_weight_matches_kruskal(
            xs in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 2..40)
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mst = EuclideanMst::build(&pts).unwrap();
            let complete = Graph::complete(pts.len(), |u, v| pts[u].distance(&pts[v]));
            let reference = kruskal_mst(&complete);
            prop_assert!((mst.total_weight() - reference.total_weight).abs() < 1e-6);
        }
    }
}
