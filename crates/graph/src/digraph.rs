//! Directed graphs over vertices `0..n`, stored in compressed sparse row
//! (CSR) form.
//!
//! The communication graph induced by an antenna orientation is directed: a
//! sensor `u` reaches `v` when `v` lies inside one of `u`'s sectors, but not
//! necessarily vice versa.  [`DiGraph`] stores such graphs and answers the
//! reachability / strong-connectivity queries the verification layer needs.
//!
//! # Memory layout
//!
//! A digraph is four flat vectors — `out_offsets`/`out_targets` and
//! `in_offsets`/`in_targets` — one offset array and one target array per
//! direction.  The out-neighbours of `u` are the contiguous slice
//! `out_targets[out_offsets[u] .. out_offsets[u + 1]]`, so a traversal walks
//! one cache-friendly array instead of chasing `Vec<Vec<_>>` spines, and
//! [`DiGraph::out_neighbors`] / [`DiGraph::in_neighbors`] are free slices.
//! Vertex ids are stored as `u32` (half the memory of `usize` adjacency
//! lists; a digraph is limited to `u32::MAX` vertices and edges, far above
//! anything the experiments build).  Storing *both* directions means strong
//! connectivity runs its backward pass directly on the in-CSR — no
//! materialized [`DiGraph::reversed`] copy on the hot path.
//!
//! # Construction
//!
//! CSR is a frozen layout, so bulk construction goes through O(n + m)
//! counting builders — [`DiGraph::from_adjacency`], [`DiGraph::from_edges`],
//! [`DiGraph::from_csr`] — that deduplicate with an epoch array instead of
//! the per-insert `contains` scan the old adjacency-list representation
//! paid.  The one-off [`DiGraph::add_edge`] is kept for tests and small
//! hand-built graphs; it splices into the flat arrays and costs O(n + m)
//! per call, which is exactly why production builders assemble rows first.
//!
//! # Invariants
//!
//! * Out-adjacency rows preserve the order edges were supplied in (first
//!   occurrence wins; duplicates and self-loops are ignored).
//! * In-adjacency rows list sources in ascending order — a canonical form
//!   that every builder (and `add_edge`) maintains, so the in-CSR is a pure
//!   function of the out-CSR.
//! * Equality is structural *including out-adjacency order*: two digraphs
//!   compare equal iff every vertex lists the same out-neighbours in the
//!   same order.  The verification layer relies on this to assert that its
//!   kd-tree and dense induced-digraph builders are bit-identical.
//!
//! Allocation-free traversal kernels over this layout (with optional vertex
//! masks) live in [`crate::traversal`]; the pre-CSR `Vec<Vec<usize>>`
//! implementation is preserved verbatim in [`crate::reference`] as the
//! property-test oracle and benchmark baseline.

use serde::{Deserialize, Serialize};

use crate::traversal::TraversalScratch;

/// A directed graph in compressed sparse row form (see the module docs for
/// the layout and its invariants).
///
/// Serialization note: like the rest of this workspace's derived types, the
/// serde impls are structural — deserializing a hand-crafted payload does
/// not re-validate the CSR invariants (monotonic offsets, in-CSR derived
/// from the out-CSR).  Payloads are trusted round-trip artifacts of this
/// crate, not an untrusted-input boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph {
    /// `out_offsets[u] .. out_offsets[u + 1]` indexes `out_targets`; length
    /// `n + 1`.
    out_offsets: Vec<u32>,
    /// Concatenated out-adjacency rows (row order = edge-supply order).
    out_targets: Vec<u32>,
    /// `in_offsets[v] .. in_offsets[v + 1]` indexes `in_targets`; length
    /// `n + 1`.
    in_offsets: Vec<u32>,
    /// Concatenated in-adjacency rows (each row ascending by source).
    in_targets: Vec<u32>,
}

impl Default for DiGraph {
    fn default() -> Self {
        DiGraph::new(0)
    }
}

/// Equality is ordered-structural on the out-CSR.  The in-CSR is a pure
/// function of the out-CSR (canonical ascending rows), so comparing it would
/// be redundant work.
impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.out_offsets == other.out_offsets && self.out_targets == other.out_targets
    }
}

impl Eq for DiGraph {}

impl DiGraph {
    /// Creates a digraph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 capacity");
        DiGraph {
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_targets: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Adds the directed edge `u → v` (duplicates and self-loops are
    /// ignored).
    ///
    /// CSR is a frozen layout, so this splices into the flat arrays at
    /// O(n + m) per call.  It exists for tests and small hand-built graphs;
    /// bulk construction must go through [`DiGraph::from_adjacency`],
    /// [`DiGraph::from_edges`] or [`DiGraph::from_csr`], which build in
    /// O(n + m) *total*.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        if u == v || self.has_edge(u, v) {
            return;
        }
        assert!(
            self.out_targets.len() < u32::MAX as usize,
            "edge count exceeds u32 capacity"
        );
        // Append v at the end of u's out row (preserving supply order).
        self.out_targets
            .insert(self.out_offsets[u + 1] as usize, v as u32);
        for off in &mut self.out_offsets[u + 1..] {
            *off += 1;
        }
        // Insert u into v's in row keeping the canonical ascending order.
        let row_start = self.in_offsets[v] as usize;
        let row_end = self.in_offsets[v + 1] as usize;
        let row = &self.in_targets[row_start..row_end];
        let pos = row_start + row.partition_point(|&w| w < u as u32);
        self.in_targets.insert(pos, u as u32);
        for off in &mut self.in_offsets[v + 1..] {
            *off += 1;
        }
    }

    /// Builds a digraph over `n` vertices from per-vertex out-adjacency
    /// rows: row `u` of `rows` lists the out-neighbours of vertex `u`.
    ///
    /// `rows` may yield fewer than `n` rows (remaining vertices stay
    /// isolated) but never more.  Duplicate neighbours and self-loops are
    /// ignored exactly as [`DiGraph::add_edge`] ignores them, and neighbour
    /// order within each row is preserved — feeding this builder the rows of
    /// an existing digraph reproduces it bit-for-bit.  This is the bridge
    /// the sub-quadratic verification engine uses: candidate neighbour lists
    /// are computed per sensor (possibly in parallel) and assembled here in
    /// one deterministic O(n + m) counting pass (per-row deduplication uses
    /// an epoch array, not a linear scan per edge).
    pub fn from_adjacency<I>(n: usize, rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = usize>,
    {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 capacity");
        let mut out_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        let mut out_targets: Vec<u32> = Vec::new();
        // seen[v] == row epoch  ⇔  v already appeared in the current row.
        let mut seen: Vec<u32> = vec![0; n];
        for (u, row) in rows.into_iter().enumerate() {
            assert!(u < n, "more adjacency rows than vertices");
            let epoch = u as u32 + 1;
            for v in row {
                assert!(v < n, "edge endpoint out of range");
                if v == u || seen[v] == epoch {
                    continue;
                }
                seen[v] = epoch;
                out_targets.push(v as u32);
            }
            assert!(
                out_targets.len() < u32::MAX as usize,
                "edge count exceeds u32 capacity"
            );
            out_offsets.push(out_targets.len() as u32);
        }
        out_offsets.resize(n + 1, out_targets.len() as u32);
        Self::from_out_csr(out_offsets, out_targets)
    }

    /// Builds a digraph over `n` vertices from a flat edge list, in
    /// O(n + m) total (stable counting sort by source, then the same
    /// epoch-array deduplication as [`DiGraph::from_adjacency`]).
    ///
    /// Equivalent to calling [`DiGraph::add_edge`] for each pair in order —
    /// per-source adjacency order follows the edge list order, duplicates
    /// and self-loops are ignored — without the quadratic cost.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 capacity");
        assert!(
            edges.len() < u32::MAX as usize,
            "edge count exceeds u32 capacity"
        );
        // Stable counting sort of the targets by source vertex.
        let mut counts: Vec<u32> = vec![0; n + 1];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            counts[u + 1] += 1;
        }
        for u in 0..n {
            counts[u + 1] += counts[u];
        }
        let mut grouped: Vec<u32> = vec![0; edges.len()];
        let mut cursor = counts.clone();
        for &(u, v) in edges {
            grouped[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
        }
        // `counts` is now exactly the offset array of the grouped rows.
        Self::from_csr(n, counts, grouped)
    }

    /// Builds a digraph directly from pre-assembled CSR parts: `offsets`
    /// must have length `rows + 1` for some `rows ≤ n` (remaining vertices
    /// stay isolated), be non-decreasing, start at 0 and end at
    /// `targets.len()`; row `u` of `targets` lists the out-neighbours of
    /// `u`.  Duplicates and self-loops within a row are ignored (epoch-array
    /// deduplication), so a caller that already produces clean rows — the
    /// verification engine's per-sensor candidate lists — pays one O(n + m)
    /// validation-and-assembly pass and no intermediate `Vec<Vec<_>>`.
    ///
    /// Panics when the offsets are malformed or a target is out of range.
    pub fn from_csr(n: usize, mut offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        assert!(n < u32::MAX as usize, "vertex count exceeds u32 capacity");
        assert!(
            !offsets.is_empty() && offsets.len() <= n + 1,
            "offsets must cover between 0 and n rows"
        );
        assert!(offsets[0] == 0, "offsets must start at 0");
        assert!(
            *offsets.last().unwrap() as usize == targets.len(),
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        offsets.resize(n + 1, targets.len() as u32);
        // One validation pass with an epoch array.  Engine-produced rows are
        // already clean (no duplicates, no self-loops), in which case the
        // caller's arrays are adopted as-is; only dirty input pays the
        // dedup copy that keeps the add_edge semantics exact.
        let mut seen: Vec<u32> = vec![0; n];
        let mut clean = true;
        'scan: for u in 0..n {
            let epoch = u as u32 + 1;
            for &v in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                assert!((v as usize) < n, "edge endpoint out of range");
                if v as usize == u || seen[v as usize] == epoch {
                    clean = false;
                    break 'scan;
                }
                seen[v as usize] = epoch;
            }
        }
        if clean {
            return Self::from_out_csr(offsets, targets);
        }
        let mut clean_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        clean_offsets.push(0);
        let mut clean_targets: Vec<u32> = Vec::with_capacity(targets.len());
        seen.fill(0);
        for u in 0..n {
            let epoch = u as u32 + 1;
            for &v in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                if v as usize == u || seen[v as usize] == epoch {
                    continue;
                }
                seen[v as usize] = epoch;
                clean_targets.push(v);
            }
            clean_offsets.push(clean_targets.len() as u32);
        }
        Self::from_out_csr(clean_offsets, clean_targets)
    }

    /// Completes a digraph from validated, deduplicated out-CSR parts by
    /// deriving the canonical in-CSR with one counting pass.
    fn from_out_csr(out_offsets: Vec<u32>, out_targets: Vec<u32>) -> Self {
        assert!(
            out_targets.len() < u32::MAX as usize,
            "edge count exceeds u32 capacity"
        );
        let n = out_offsets.len() - 1;
        let mut in_offsets: Vec<u32> = vec![0; n + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for v in 0..n {
            in_offsets[v + 1] += in_offsets[v];
        }
        let mut in_targets: Vec<u32> = vec![0; out_targets.len()];
        let mut cursor = in_offsets.clone();
        // Scanning sources in ascending order makes every in row ascending.
        for u in 0..n {
            for &v in &out_targets[out_offsets[u] as usize..out_offsets[u + 1] as usize] {
                in_targets[cursor[v as usize] as usize] = u as u32;
                cursor[v as usize] += 1;
            }
        }
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Returns `true` when the edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_neighbors(u).contains(&(v as u32))
    }

    /// Out-neighbours of `u`, as a contiguous slice of the CSR target array.
    pub fn out_neighbors(&self, u: usize) -> &[u32] {
        &self.out_targets[self.out_offsets[u] as usize..self.out_offsets[u + 1] as usize]
    }

    /// In-neighbours of `u` (ascending by source), as a contiguous slice of
    /// the CSR target array.
    pub fn in_neighbors(&self, u: usize) -> &[u32] {
        &self.in_targets[self.in_offsets[u] as usize..self.in_offsets[u + 1] as usize]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        (self.out_offsets[u + 1] - self.out_offsets[u]) as usize
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        (self.in_offsets[u + 1] - self.in_offsets[u]) as usize
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        (0..self.len())
            .map(|u| self.out_degree(u))
            .max()
            .unwrap_or(0)
    }

    /// All directed edges as `(u, v)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.len() {
            for &v in self.out_neighbors(u) {
                out.push((u, v as usize));
            }
        }
        out
    }

    /// The set of vertices reachable from `start` (including `start`),
    /// as a boolean membership vector.
    ///
    /// Allocating convenience wrapper; repeated or masked queries should
    /// reuse a [`TraversalScratch`].
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if start >= self.len() {
            return seen;
        }
        let mut scratch = TraversalScratch::new();
        for &v in scratch.bfs(self, start, None) {
            seen[v as usize] = true;
        }
        seen
    }

    /// Number of vertices reachable from `start` (including itself).
    pub fn reachable_count(&self, start: usize) -> usize {
        if start >= self.len() {
            return 0;
        }
        TraversalScratch::new().reachable_count(self, start, None)
    }

    /// The reverse digraph (every edge flipped).
    ///
    /// Out rows of the reverse list targets in ascending order (they are the
    /// canonical in rows of `self`).  Note that strong-connectivity checks no
    /// longer need this: the in-CSR is stored, so backward traversals run on
    /// `self` directly.
    pub fn reversed(&self) -> DiGraph {
        // The in-CSR is already the reverse out-CSR; rebuild the reverse's
        // own in side so its canonical-ascending invariant holds.
        Self::from_out_csr(self.in_offsets.clone(), self.in_targets.clone())
    }

    /// Returns `true` when the digraph is strongly connected.
    ///
    /// The empty digraph and the single-vertex digraph are considered
    /// strongly connected.  This check runs two BFS passes — forward on the
    /// out-CSR and backward on the stored in-CSR (no reverse copy).  For SCC
    /// decompositions see [`crate::scc`]; for repeated or masked queries
    /// reuse a [`TraversalScratch`].
    pub fn is_strongly_connected(&self) -> bool {
        self.len() <= 1 || TraversalScratch::new().is_strongly_connected(self, None)
    }

    /// BFS hop distances from `start` (`None` where unreachable).
    ///
    /// Allocating convenience wrapper over
    /// [`TraversalScratch::hop_distances`].
    pub fn hop_distances(&self, start: usize) -> Vec<Option<usize>> {
        if start >= self.len() {
            return vec![None; self.len()];
        }
        let mut scratch = TraversalScratch::new();
        scratch
            .hop_distances(self, start, None)
            .iter()
            .map(|&d| (d != u32::MAX).then_some(d as usize))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        DiGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn add_edge_and_queries() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 1); // duplicate ignored
        g.add_edge(2, 2); // self loop ignored
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.out_neighbors(1), &[2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.max_out_degree(), 1);
    }

    #[test]
    fn from_adjacency_reproduces_incremental_construction() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 2);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        // Same rows, same order → structurally equal (vertex 1 and 3 rows
        // may be omitted entirely).
        let built = DiGraph::from_adjacency(4, vec![vec![0, 2, 1], vec![], vec![3, 2]]);
        assert_eq!(built, g);
        // A different neighbour order is a different structure.
        let reordered = DiGraph::from_adjacency(4, vec![vec![1, 2], vec![], vec![3]]);
        assert_ne!(reordered, g);
        assert_eq!(reordered.edges().len(), g.edges().len());
    }

    #[test]
    fn from_edges_matches_add_edge_sequence() {
        let pairs = [(2usize, 0usize), (0, 2), (0, 1), (0, 2), (1, 1), (3, 0)];
        let mut incremental = DiGraph::new(4);
        for &(u, v) in &pairs {
            incremental.add_edge(u, v);
        }
        let bulk = DiGraph::from_edges(4, &pairs);
        assert_eq!(bulk, incremental);
        assert_eq!(bulk.edge_count(), 4);
        assert_eq!(bulk.out_neighbors(0), &[2, 1]);
        assert_eq!(bulk.in_neighbors(0), &[2, 3]);
    }

    #[test]
    fn from_csr_accepts_clean_and_messy_rows() {
        // Clean rows pass straight through.
        let g = DiGraph::from_csr(3, vec![0, 2, 3, 3], vec![1, 2, 2]);
        assert_eq!(g, DiGraph::from_adjacency(3, vec![vec![1, 2], vec![2]]));
        // Duplicates and self-loops are dropped exactly like add_edge.
        let messy = DiGraph::from_csr(3, vec![0, 4, 5, 5], vec![1, 0, 1, 2, 2]);
        assert_eq!(messy, g);
        // Short offset arrays leave the remaining vertices isolated.
        let short = DiGraph::from_csr(3, vec![0, 1], vec![2]);
        assert_eq!(short.edge_count(), 1);
        assert!(short.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "offsets must be non-decreasing")]
    fn from_csr_rejects_malformed_offsets() {
        let _ = DiGraph::from_csr(3, vec![0, 2, 1, 2], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "more adjacency rows than vertices")]
    fn from_adjacency_rejects_extra_rows() {
        let _ = DiGraph::from_adjacency(1, vec![vec![], vec![0]]);
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        assert!(cycle(5).is_strongly_connected());
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn trivial_graphs_are_strongly_connected() {
        assert!(DiGraph::new(0).is_strongly_connected());
        assert!(DiGraph::new(1).is_strongly_connected());
        assert!(!DiGraph::new(2).is_strongly_connected());
    }

    #[test]
    fn reachability_and_hops() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // vertex 3 unreachable
        let reach = g.reachable_from(0);
        assert_eq!(reach, vec![true, true, true, false]);
        assert_eq!(g.reachable_count(0), 3);
        let d = g.hop_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
        // Out-of-range starts are all-unreachable, not a panic.
        assert_eq!(g.reachable_count(9), 0);
        assert_eq!(g.hop_distances(9), vec![None; 4]);
    }

    #[test]
    fn reversed_flips_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
        assert_eq!(r.edge_count(), 2);
        // Double reversal restores the original edge set (rows may be
        // reordered into the canonical ascending form).
        let rr = r.reversed();
        let mut original = g.edges();
        original.sort_unstable();
        let mut back = rr.edges();
        back.sort_unstable();
        assert_eq!(back, original);
    }

    #[test]
    fn edges_listing() {
        let g = cycle(3);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn strongly_connected_after_adding_back_edge() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(!g.is_strongly_connected());
        g.add_edge(3, 0);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn in_rows_stay_ascending_under_every_builder() {
        let edges = [(3usize, 1usize), (0, 1), (2, 1), (1, 0), (3, 0)];
        let mut incremental = DiGraph::new(4);
        for &(u, v) in &edges {
            incremental.add_edge(u, v);
        }
        for g in [&incremental, &DiGraph::from_edges(4, &edges)] {
            assert_eq!(g.in_neighbors(1), &[0, 2, 3]);
            assert_eq!(g.in_neighbors(0), &[1, 3]);
        }
    }
}
