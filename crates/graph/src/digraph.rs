//! Directed graphs over vertices `0..n`.
//!
//! The communication graph induced by an antenna orientation is directed: a
//! sensor `u` reaches `v` when `v` lies inside one of `u`'s sectors, but not
//! necessarily vice versa.  [`DiGraph`] stores such graphs and answers the
//! reachability / strong-connectivity queries the verification layer needs.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A directed graph stored as out- and in-adjacency lists.
///
/// Equality is structural *including adjacency order*: two digraphs compare
/// equal iff every vertex lists the same out-neighbours in the same order.
/// The verification layer relies on this to assert that its kd-tree and
/// dense induced-digraph builders are bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    out_adj: Vec<Vec<usize>>,
    in_adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a digraph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.out_adj.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the directed edge `u → v` (duplicates are ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.len() && v < self.len(), "edge endpoint out of range");
        if u == v || self.out_adj[u].contains(&v) {
            return;
        }
        self.out_adj[u].push(v);
        self.in_adj[v].push(u);
        self.edge_count += 1;
    }

    /// Builds a digraph over `n` vertices from per-vertex out-adjacency
    /// rows: row `u` of `rows` lists the out-neighbours of vertex `u`.
    ///
    /// `rows` may yield fewer than `n` rows (remaining vertices stay
    /// isolated) but never more.  Duplicate neighbours and self-loops are
    /// ignored exactly as [`DiGraph::add_edge`] ignores them, and neighbour
    /// order within each row is preserved — feeding this builder the rows of
    /// an existing digraph reproduces it bit-for-bit.  This is the bridge
    /// the sub-quadratic verification engine uses: candidate neighbour lists
    /// are computed per sensor (possibly in parallel) and assembled here in
    /// one deterministic pass.
    pub fn from_adjacency<I>(n: usize, rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = usize>,
    {
        let mut g = DiGraph::new(n);
        for (u, row) in rows.into_iter().enumerate() {
            assert!(u < n, "more adjacency rows than vertices");
            for v in row {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Returns `true` when the edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_adj[u].contains(&v)
    }

    /// Out-neighbours of `u`.
    pub fn out_neighbors(&self, u: usize) -> &[usize] {
        &self.out_adj[u]
    }

    /// In-neighbours of `u`.
    pub fn in_neighbors(&self, u: usize) -> &[usize] {
        &self.in_adj[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.out_adj[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.in_adj[u].len()
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        (0..self.len()).map(|u| self.out_degree(u)).max().unwrap_or(0)
    }

    /// All directed edges as `(u, v)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in 0..self.len() {
            for &v in &self.out_adj[u] {
                out.push((u, v));
            }
        }
        out
    }

    /// The set of vertices reachable from `start` (including `start`),
    /// as a boolean membership vector.
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if start >= self.len() {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.out_adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Number of vertices reachable from `start` (including itself).
    pub fn reachable_count(&self, start: usize) -> usize {
        self.reachable_from(start).iter().filter(|&&b| b).count()
    }

    /// The reverse digraph (every edge flipped).
    pub fn reversed(&self) -> DiGraph {
        let mut rev = DiGraph::new(self.len());
        for u in 0..self.len() {
            for &v in &self.out_adj[u] {
                rev.add_edge(v, u);
            }
        }
        rev
    }

    /// Returns `true` when the digraph is strongly connected.
    ///
    /// The empty digraph and the single-vertex digraph are considered
    /// strongly connected.  This check runs two BFS passes (forward and on
    /// the reverse graph); for SCC decompositions see [`crate::scc`].
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        if self.reachable_count(0) != n {
            return false;
        }
        self.reversed().reachable_count(0) == n
    }

    /// BFS hop distances from `start` (`None` where unreachable).
    pub fn hop_distances(&self, start: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        if start >= self.len() {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist[start] = Some(0);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.out_adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(dist[u].unwrap() + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn add_edge_and_queries() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 1); // duplicate ignored
        g.add_edge(2, 2); // self loop ignored
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.out_neighbors(1), &[2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.max_out_degree(), 1);
    }

    #[test]
    fn from_adjacency_reproduces_incremental_construction() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 2);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        // Same rows, same order → structurally equal (vertex 1 and 3 rows
        // may be omitted entirely).
        let built = DiGraph::from_adjacency(4, vec![vec![0, 2, 1], vec![], vec![3, 2]]);
        assert_eq!(built, g);
        // A different neighbour order is a different structure.
        let reordered = DiGraph::from_adjacency(4, vec![vec![1, 2], vec![], vec![3]]);
        assert_ne!(reordered, g);
        assert_eq!(reordered.edges().len(), g.edges().len());
    }

    #[test]
    #[should_panic(expected = "more adjacency rows than vertices")]
    fn from_adjacency_rejects_extra_rows() {
        let _ = DiGraph::from_adjacency(1, vec![vec![], vec![0]]);
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        assert!(cycle(5).is_strongly_connected());
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.is_strongly_connected());
    }

    #[test]
    fn trivial_graphs_are_strongly_connected() {
        assert!(DiGraph::new(0).is_strongly_connected());
        assert!(DiGraph::new(1).is_strongly_connected());
        assert!(!DiGraph::new(2).is_strongly_connected());
    }

    #[test]
    fn reachability_and_hops() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // vertex 3 unreachable
        let reach = g.reachable_from(0);
        assert_eq!(reach, vec![true, true, true, false]);
        assert_eq!(g.reachable_count(0), 3);
        let d = g.hop_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
    }

    #[test]
    fn reversed_flips_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn edges_listing() {
        let g = cycle(3);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn strongly_connected_after_adding_back_edge() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(!g.is_strongly_connected());
        g.add_edge(3, 0);
        assert!(g.is_strongly_connected());
    }
}
