//! The pre-CSR `Vec<Vec<usize>>` digraph, preserved as an oracle.
//!
//! [`crate::digraph::DiGraph`] moved to a flat CSR layout with
//! allocation-free traversal kernels; this module keeps the original
//! adjacency-list representation and its traversal algorithms **verbatim**
//! so that
//!
//! * the oracle property suite (`tests/digraph_oracle.rs`) can assert that
//!   every CSR kernel — BFS order, hop distances, strong connectivity, SCC
//!   decomposition, masked variants via
//!   [`AdjListDiGraph::remove_vertices`] — is output-identical to the
//!   pre-refactor behaviour, and
//! * the `traversal` criterion bench can measure the dense-vs-CSR and
//!   clone-vs-mask deltas against the real historical baseline rather than
//!   a synthetic one.
//!
//! This mirrors the repo's standing pattern of keeping the slow reference
//! alive (dense Prim for the MST engine, the dense pairwise
//! induced-digraph construction for the verification engine).  Nothing in
//! the production paths uses this module.

use crate::digraph::DiGraph;
use std::collections::VecDeque;

/// The legacy adjacency-list digraph (out- and in-rows as nested vectors).
///
/// Duplicate edges and self-loops are ignored via the original per-insert
/// linear scan.  Equality is structural including adjacency order, exactly
/// like the CSR [`DiGraph`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdjListDiGraph {
    out_adj: Vec<Vec<usize>>,
    in_adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl AdjListDiGraph {
    /// Creates a digraph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        AdjListDiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.out_adj.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.out_adj.is_empty()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the directed edge `u → v` (duplicates ignored via the original
    /// O(deg) `contains` scan this module exists to preserve).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        if u == v || self.out_adj[u].contains(&v) {
            return;
        }
        self.out_adj[u].push(v);
        self.in_adj[v].push(u);
        self.edge_count += 1;
    }

    /// Builds a digraph from per-vertex out-adjacency rows (same contract
    /// as [`DiGraph::from_adjacency`]).
    pub fn from_adjacency<I>(n: usize, rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = usize>,
    {
        let mut g = AdjListDiGraph::new(n);
        for (u, row) in rows.into_iter().enumerate() {
            assert!(u < n, "more adjacency rows than vertices");
            for v in row {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Out-neighbours of `u`.
    pub fn out_neighbors(&self, u: usize) -> &[usize] {
        &self.out_adj[u]
    }

    /// Returns `true` when the edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_adj[u].contains(&v)
    }

    /// Breadth-first visit order from `start` (the queue-BFS order every
    /// CSR kernel must reproduce).
    pub fn bfs_order(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut order = Vec::new();
        if start >= self.len() {
            return order;
        }
        let mut queue = VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.out_adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Number of vertices reachable from `start` (including itself).
    pub fn reachable_count(&self, start: usize) -> usize {
        self.bfs_order(start).len()
    }

    /// The reverse digraph (every edge flipped), rebuilt edge by edge as the
    /// legacy strong-connectivity check did.
    pub fn reversed(&self) -> AdjListDiGraph {
        let mut rev = AdjListDiGraph::new(self.len());
        for u in 0..self.len() {
            for &v in &self.out_adj[u] {
                rev.add_edge(v, u);
            }
        }
        rev
    }

    /// Returns `true` when the digraph is strongly connected (two BFS
    /// passes, the backward one over a materialized reverse copy).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        if self.reachable_count(0) != n {
            return false;
        }
        self.reversed().reachable_count(0) == n
    }

    /// BFS hop distances from `start` (`None` where unreachable).
    pub fn hop_distances(&self, start: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        if start >= self.len() {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist[start] = Some(0);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.out_adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(dist[u].unwrap() + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Iterative Tarjan SCC decomposition (sorted components, reverse
    /// topological order of the condensation).
    pub fn tarjan_scc(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut call_stack: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call_stack.push((start, 0));
            while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
                if *child_pos == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let out = &self.out_adj[v];
                if *child_pos < out.len() {
                    let w = out[*child_pos];
                    *child_pos += 1;
                    if index[w] == usize::MAX {
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// The digraph obtained by deleting the given vertices (remaining
    /// vertices re-indexed in increasing order of their original index) —
    /// the clone-per-probe subgraph path masked kernels replace.
    pub fn remove_vertices(&self, removed: &[usize]) -> AdjListDiGraph {
        let n = self.len();
        let mut keep = vec![true; n];
        for &r in removed {
            if r < n {
                keep[r] = false;
            }
        }
        let mut new_index = vec![usize::MAX; n];
        let mut next = 0usize;
        for v in 0..n {
            if keep[v] {
                new_index[v] = next;
                next += 1;
            }
        }
        let mut out = AdjListDiGraph::new(next);
        for u in 0..n {
            if !keep[u] {
                continue;
            }
            for &v in &self.out_adj[u] {
                if keep[v] {
                    out.add_edge(new_index[u], new_index[v]);
                }
            }
        }
        out
    }

    /// Converts to the CSR representation (preserving adjacency order, so
    /// the result is structurally equal by the CSR ordered-equality
    /// contract).
    pub fn to_csr(&self) -> DiGraph {
        DiGraph::from_adjacency(
            self.len(),
            self.out_adj.iter().map(|row| row.iter().copied()),
        )
    }
}

impl From<&DiGraph> for AdjListDiGraph {
    /// Re-expresses a CSR digraph in the legacy layout (adjacency order
    /// preserved).
    fn from(g: &DiGraph) -> Self {
        AdjListDiGraph::from_adjacency(
            g.len(),
            (0..g.len()).map(|u| {
                g.out_neighbors(u)
                    .iter()
                    .map(|&v| v as usize)
                    .collect::<Vec<_>>()
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> AdjListDiGraph {
        let mut g = AdjListDiGraph::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)] {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn basic_queries_match_legacy_semantics() {
        let g = two_triangles();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_neighbors(0), &[1, 3]);
        assert!(g.is_strongly_connected());
        assert_eq!(g.bfs_order(1), vec![1, 2, 0, 3, 4]);
        assert_eq!(
            g.hop_distances(0),
            vec![Some(0), Some(1), Some(2), Some(1), Some(2)]
        );
        assert_eq!(g.tarjan_scc().len(), 1);
        assert!(!g.remove_vertices(&[0]).is_strongly_connected());
        assert!(!g.is_empty());
        assert_eq!(g.reversed().out_neighbors(0), &[2, 4]);
    }

    #[test]
    fn round_trips_through_csr() {
        let g = two_triangles();
        let csr = g.to_csr();
        assert_eq!(csr.edge_count(), g.edge_count());
        let back = AdjListDiGraph::from(&csr);
        assert_eq!(back, g);
    }
}
