//! Structural statistics of graphs and digraphs, used by the experiment
//! drivers to report the "shape" of generated instances (degree
//! distributions, MST edge-length statistics, out-degree histograms of the
//! induced communication graphs).

use crate::digraph::DiGraph;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Degree histogram of an undirected graph: `histogram[d]` counts vertices of
/// degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = g.max_degree();
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.len() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Out-degree histogram of a directed graph (per-vertex degrees are offset
/// differences in the CSR layout, so this is two O(n) passes).
pub fn out_degree_histogram(g: &DiGraph) -> Vec<usize> {
    let max_deg = g.max_out_degree();
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.len() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

/// In-degree histogram of a directed graph — cheap now that the digraph
/// stores its in-CSR alongside the out-CSR.
pub fn in_degree_histogram(g: &DiGraph) -> Vec<usize> {
    let max_deg = (0..g.len()).map(|v| g.in_degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.len() {
        hist[g.in_degree(v)] += 1;
    }
    hist
}

/// Summary statistics of a set of edge lengths / weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightStats {
    /// Number of edges considered.
    pub count: usize,
    /// Minimum weight (0 when empty).
    pub min: f64,
    /// Maximum weight (0 when empty).
    pub max: f64,
    /// Mean weight (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
}

/// Computes weight statistics over all edges of `g`.
pub fn edge_weight_stats(g: &Graph) -> WeightStats {
    let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
    weight_stats(&weights)
}

/// Computes summary statistics of an arbitrary weight slice.
pub fn weight_stats(weights: &[f64]) -> WeightStats {
    if weights.is_empty() {
        return WeightStats {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let count = weights.len();
    let min = weights.iter().copied().fold(f64::INFINITY, f64::min);
    let max = weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = weights.iter().sum::<f64>() / count as f64;
    let var = weights.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / count as f64;
    WeightStats {
        count,
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Density of a directed graph: edges divided by the maximum possible
/// `n·(n−1)`.  Zero for graphs with fewer than two vertices.
pub fn digraph_density(g: &DiGraph) -> f64 {
    let n = g.len();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_histogram_of_star() {
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf, 1.0);
        }
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn out_degree_histogram_of_cycle() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert_eq!(out_degree_histogram(&g), vec![0, 3]);
        assert_eq!(in_degree_histogram(&g), vec![0, 3]);
    }

    #[test]
    fn in_degree_histogram_of_star() {
        // Everything beams at vertex 0.
        let g = DiGraph::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(in_degree_histogram(&g), vec![3, 0, 0, 1]);
        assert_eq!(out_degree_histogram(&g), vec![1, 3]);
    }

    #[test]
    fn weight_stats_of_known_values() {
        let stats = weight_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 4.0);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weight_stats_empty() {
        let stats = weight_stats(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean, 0.0);
    }

    #[test]
    fn edge_weight_stats_matches_manual() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 4.0);
        let stats = edge_weight_stats(&g);
        assert_eq!(stats.count, 2);
        assert!((stats.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_complete_digraph_is_one() {
        let mut g = DiGraph::new(3);
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        assert!((digraph_density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(digraph_density(&DiGraph::new(1)), 0.0);
    }
}
