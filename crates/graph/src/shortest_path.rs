//! Shortest paths on weighted undirected graphs and directed graphs.

use crate::digraph::DiGraph;
use crate::graph::Graph;
use crate::traversal::TraversalScratch;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap entry for Dijkstra ordered by tentative distance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct State {
    dist: f64,
    vertex: usize,
}

impl Eq for State {}

impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.vertex.cmp(&other.vertex))
    }
}

/// Dijkstra single-source shortest paths on an undirected weighted graph.
///
/// Returns the distance to every vertex (`None` where unreachable).
/// Panics if a negative edge weight is encountered.
pub fn dijkstra(g: &Graph, source: usize) -> Vec<Option<f64>> {
    let n = g.len();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    if source >= n {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist[source] = Some(0.0);
    heap.push(Reverse(State {
        dist: 0.0,
        vertex: source,
    }));
    while let Some(Reverse(State { dist: d, vertex: u })) = heap.pop() {
        if dist[u].is_some_and(|best| d > best + 1e-15) {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            assert!(w >= 0.0, "Dijkstra requires non-negative edge weights");
            let candidate = d + w;
            if dist[v].is_none_or(|best| candidate < best) {
                dist[v] = Some(candidate);
                heap.push(Reverse(State {
                    dist: candidate,
                    vertex: v,
                }));
            }
        }
    }
    dist
}

/// Graph-distance diameter of a connected undirected graph: the largest
/// shortest-path distance over all vertex pairs.  Returns `None` when the
/// graph is disconnected or empty.
pub fn weighted_diameter(g: &Graph) -> Option<f64> {
    if g.is_empty() {
        return None;
    }
    let mut best = 0.0f64;
    for source in 0..g.len() {
        let dist = dijkstra(g, source);
        for d in &dist {
            match d {
                None => return None,
                Some(x) => best = best.max(*x),
            }
        }
    }
    Some(best)
}

/// Hop-count diameter of a directed graph (longest shortest hop distance over
/// ordered reachable pairs); `None` when some ordered pair is unreachable.
///
/// Runs `n` BFS passes through one reused [`TraversalScratch`] — no
/// per-source allocation.
pub fn hop_diameter(g: &DiGraph) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut scratch = TraversalScratch::new();
    let mut best = 0u32;
    for source in 0..g.len() {
        for &d in scratch.hop_distances(g, source, None) {
            if d == u32::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best as usize)
}

/// Average hop distance over all ordered pairs of a strongly connected
/// digraph; `None` when unreachable pairs exist or fewer than two vertices.
///
/// Runs `n` BFS passes through one reused [`TraversalScratch`] — no
/// per-source allocation.
pub fn average_hop_distance(g: &DiGraph) -> Option<f64> {
    let n = g.len();
    if n < 2 {
        return None;
    }
    let mut scratch = TraversalScratch::new();
    let mut total = 0u64;
    for source in 0..n {
        for (target, &d) in scratch.hop_distances(g, source, None).iter().enumerate() {
            if target == source {
                continue;
            }
            if d == u32::MAX {
                return None;
            }
            total += d as u64;
        }
    }
    Some(total as f64 / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dijkstra_on_weighted_path() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(0, 3, 10.0);
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], Some(0.0));
        assert_eq!(d[1], Some(1.0));
        assert_eq!(d[2], Some(3.0));
        assert_eq!(d[3], Some(6.0)); // the path is shorter than the direct edge
    }

    #[test]
    fn dijkstra_unreachable_vertices_are_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], None);
    }

    #[test]
    fn weighted_diameter_of_path() {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1, 2.0);
        }
        assert_eq!(weighted_diameter(&g), Some(6.0));
        let disconnected = Graph::new(3);
        assert_eq!(weighted_diameter(&disconnected), None);
    }

    #[test]
    fn hop_diameter_of_directed_cycle() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        assert_eq!(hop_diameter(&g), Some(3));
        assert!((average_hop_distance(&g).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hop_diameter_none_when_not_strongly_connected() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(hop_diameter(&g), None);
        assert_eq!(average_hop_distance(&g), None);
    }
}
