//! Traversals: connectivity for undirected graphs, and allocation-free,
//! mask-aware kernels for CSR digraphs.
//!
//! # Digraph traversal kernels
//!
//! The post-orientation analysis layer (verification, flooding,
//! c-connectivity sweeps) runs *many* traversals over *one* digraph.  The
//! kernels here make that cheap along two axes:
//!
//! * **Scratch reuse** — every kernel borrows a [`TraversalScratch`] holding
//!   the visited stamps and queue/stack buffers.  Buffers are sized on first
//!   contact with a graph and then recycled: an epoch counter invalidates
//!   the visited stamps in O(1), so steady-state queries perform **zero heap
//!   allocations** (asserted by the allocation-counting test in
//!   `tests/traversal_alloc.rs`).
//! * **Vertex masks** — every kernel takes an optional [`VertexMask`] and
//!   simply skips masked-out vertices, so "is the graph still strongly
//!   connected after deleting v?" costs one traversal over the original CSR
//!   instead of materializing a re-indexed subgraph
//!   ([`crate::connectivity::remove_vertices`]) per candidate.  Results are
//!   reported in original vertex ids.
//!
//! The strong-connectivity kernel runs its backward pass directly on the
//! digraph's stored in-CSR — no reversed copy.  The single-pass masked SCC
//! kernel lives in [`crate::scc`] (same scratch, Tarjan buffers).
//!
//! The pre-CSR `Vec<Vec<usize>>` implementations these kernels are
//! property-tested against live in [`crate::reference`].

use crate::digraph::DiGraph;
use crate::graph::Graph;
use std::collections::VecDeque;

/// A set of temporarily deleted vertices, toggled in O(1) per vertex.
///
/// The c-connectivity sweep's inner loop is `remove(v) → masked kernel →
/// restore(v)` for every candidate `v`: one mask allocation per deployment,
/// zero per probe.
#[derive(Debug, Clone)]
pub struct VertexMask {
    removed: Vec<bool>,
    removed_count: usize,
}

impl VertexMask {
    /// A mask over `n` vertices with nothing removed.
    pub fn new(n: usize) -> Self {
        VertexMask {
            removed: vec![false; n],
            removed_count: 0,
        }
    }

    /// Number of vertices the mask covers.
    pub fn len(&self) -> usize {
        self.removed.len()
    }

    /// Returns `true` when the mask covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty()
    }

    /// Marks `v` as deleted (idempotent).
    pub fn remove(&mut self, v: usize) {
        if !self.removed[v] {
            self.removed[v] = true;
            self.removed_count += 1;
        }
    }

    /// Restores `v` (idempotent).
    pub fn restore(&mut self, v: usize) {
        if self.removed[v] {
            self.removed[v] = false;
            self.removed_count -= 1;
        }
    }

    /// Restores every vertex.
    pub fn clear(&mut self) {
        self.removed.fill(false);
        self.removed_count = 0;
    }

    /// Returns `true` when `v` is currently deleted.
    pub fn is_removed(&self, v: usize) -> bool {
        self.removed[v]
    }

    /// Number of currently deleted vertices.
    pub fn removed_count(&self) -> usize {
        self.removed_count
    }
}

/// Returns `true` when `v` is alive under the (optional) mask.
#[inline]
pub(crate) fn alive(mask: Option<&VertexMask>, v: usize) -> bool {
    mask.is_none_or(|m| !m.is_removed(v))
}

/// Every mask-taking kernel requires the mask to cover exactly the graph's
/// vertex set — a larger mask would silently skew alive counts, a smaller
/// one would panic mid-traversal.
#[inline]
pub(crate) fn debug_assert_mask_matches(g: &DiGraph, mask: Option<&VertexMask>) {
    debug_assert!(
        mask.is_none_or(|m| m.len() == g.len()),
        "vertex mask size does not match the graph"
    );
}

/// Reusable traversal state: visited epochs plus queue/stack buffers.
///
/// One scratch serves any number of graphs and queries; buffers grow to the
/// largest graph seen and are never shrunk.  See the module docs for the
/// zero-allocation contract.
#[derive(Debug, Default, Clone)]
pub struct TraversalScratch {
    /// Current query epoch; `visited[v] == epoch` ⇔ v visited this query.
    pub(crate) epoch: u32,
    pub(crate) visited: Vec<u32>,
    /// BFS queue storage; after a BFS this is the visit order.
    queue: Vec<u32>,
    /// Per-vertex u32 payload: hop distances (BFS) or Tarjan indices.
    pub(crate) value: Vec<u32>,
    /// Tarjan lowlink values.
    pub(crate) low: Vec<u32>,
    /// Tarjan's explicit DFS call stack: (vertex, next-child-position).
    pub(crate) call: Vec<(u32, u32)>,
    /// Tarjan's component stack.
    pub(crate) stack: Vec<u32>,
    /// Tarjan's on-stack flags (self-cleaning: false between queries).
    pub(crate) on_stack: Vec<bool>,
}

impl TraversalScratch {
    /// A scratch with empty buffers (they size themselves on first use).
    pub fn new() -> Self {
        TraversalScratch::default()
    }

    /// A scratch pre-sized for graphs of `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = TraversalScratch::new();
        s.begin(n);
        s
    }

    /// Starts a query over an `n`-vertex graph: sizes the buffers (growing
    /// only when `n` exceeds everything seen before) and opens a fresh
    /// epoch.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
            self.value.resize(n, 0);
            self.low.resize(n, 0);
            self.on_stack.resize(n, false);
        }
        self.queue.clear();
        self.call.clear();
        self.stack.clear();
        // After the clears len == 0, so reserve(n) guarantees capacity ≥ n
        // and no traversal can reallocate mid-query.
        if self.queue.capacity() < n {
            self.queue.reserve(n);
        }
        if self.call.capacity() < n {
            self.call.reserve(n);
        }
        if self.stack.capacity() < n {
            self.stack.reserve(n);
        }
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` visited in the current epoch; returns `true` when it was
    /// not yet visited.
    #[inline]
    pub(crate) fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Returns `true` when `v` was visited in the current epoch.
    #[inline]
    pub(crate) fn is_marked(&self, v: u32) -> bool {
        self.visited[v as usize] == self.epoch
    }

    /// Breadth-first order of the alive vertices reachable from `start`
    /// along out-edges (empty when `start` is masked out or out of range).
    ///
    /// The returned slice borrows the scratch's queue buffer and is valid
    /// until the next query.
    pub fn bfs<'s>(
        &'s mut self,
        g: &DiGraph,
        start: usize,
        mask: Option<&VertexMask>,
    ) -> &'s [u32] {
        self.bfs_directed(g, start, mask, false)
    }

    /// Number of alive vertices reachable from `start` (including itself)
    /// along out-edges; 0 when `start` is masked out or out of range.
    pub fn reachable_count(
        &mut self,
        g: &DiGraph,
        start: usize,
        mask: Option<&VertexMask>,
    ) -> usize {
        self.bfs(g, start, mask).len()
    }

    /// The shared BFS engine: forward over the out-CSR or backward over the
    /// in-CSR.
    fn bfs_directed<'s>(
        &'s mut self,
        g: &DiGraph,
        start: usize,
        mask: Option<&VertexMask>,
        backward: bool,
    ) -> &'s [u32] {
        debug_assert_mask_matches(g, mask);
        self.begin(g.len());
        if start >= g.len() || !alive(mask, start) {
            return &self.queue;
        }
        self.mark(start as u32);
        self.queue.push(start as u32);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let row = if backward {
                g.in_neighbors(u)
            } else {
                g.out_neighbors(u)
            };
            for &v in row {
                if alive(mask, v as usize) && self.mark(v) {
                    self.queue.push(v);
                }
            }
        }
        &self.queue
    }

    /// BFS hop distances from `start` over alive vertices, with `u32::MAX`
    /// marking "unreachable" (masked-out vertices are unreachable by
    /// definition).  The returned slice has one entry per vertex, borrows
    /// the scratch and is valid until the next query.
    pub fn hop_distances<'s>(
        &'s mut self,
        g: &DiGraph,
        start: usize,
        mask: Option<&VertexMask>,
    ) -> &'s [u32] {
        debug_assert_mask_matches(g, mask);
        let n = g.len();
        self.begin(n);
        self.value[..n].fill(u32::MAX);
        if start < n && alive(mask, start) {
            self.mark(start as u32);
            self.value[start] = 0;
            self.queue.push(start as u32);
            let mut head = 0usize;
            while head < self.queue.len() {
                let u = self.queue[head] as usize;
                head += 1;
                let next = self.value[u] + 1;
                for &v in g.out_neighbors(u) {
                    if alive(mask, v as usize) && self.mark(v) {
                        self.value[v as usize] = next;
                        self.queue.push(v);
                    }
                }
            }
        }
        &self.value[..n]
    }

    /// Returns `true` when the alive subgraph is strongly connected (an
    /// alive set of 0 or 1 vertices counts as strongly connected, matching
    /// [`DiGraph::is_strongly_connected`]).
    ///
    /// Two BFS passes from the first alive vertex: forward on the out-CSR,
    /// backward on the stored in-CSR — no reversed copy, no subgraph
    /// materialization, zero steady-state allocation.
    pub fn is_strongly_connected(&mut self, g: &DiGraph, mask: Option<&VertexMask>) -> bool {
        debug_assert_mask_matches(g, mask);
        let n = g.len();
        let alive_count = n - mask.map_or(0, |m| m.removed_count());
        if alive_count <= 1 {
            return true;
        }
        let Some(start) = (0..n).find(|&v| alive(mask, v)) else {
            return true;
        };
        if self.bfs_directed(g, start, mask, false).len() != alive_count {
            return false;
        }
        self.bfs_directed(g, start, mask, true).len() == alive_count
    }
}

/// Breadth-first order of the vertices reachable from `start`.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    if start >= g.len() {
        return order;
    }
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Depth-first order of the vertices reachable from `start` (iterative,
/// children visited in adjacency order).
pub fn dfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    if start >= g.len() {
        return order;
    }
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        order.push(u);
        // Push in reverse so that the first neighbour is processed first.
        for &(v, _) in g.neighbors(u).iter().rev() {
            if !visited[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected components of the graph; each component is a sorted vertex list.
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let mut visited = vec![false; g.len()];
    let mut components = Vec::new();
    for start in 0..g.len() {
        if visited[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &(v, _) in g.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Returns `true` when the undirected graph is connected (trivially true for
/// 0 or 1 vertices).
pub fn is_connected(g: &Graph) -> bool {
    g.len() <= 1 || bfs_order(g, 0).len() == g.len()
}

/// Returns `true` when the graph is a tree: connected with exactly `n − 1`
/// edges.
pub fn is_tree(g: &Graph) -> bool {
    if g.is_empty() {
        return true;
    }
    g.edge_count() == g.len() - 1 && is_connected(g)
}

/// Returns `true` when the graph contains a cycle.
pub fn has_cycle(g: &Graph) -> bool {
    // For an undirected simple graph, a cycle exists iff some component has
    // at least as many edges as vertices.
    let comps = connected_components(g);
    for comp in comps {
        let mut edges_in_comp = 0;
        for &u in &comp {
            for &(v, _) in g.neighbors(u) {
                if u < v {
                    edges_in_comp += 1;
                }
            }
        }
        if edges_in_comp >= comp.len() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    fn directed_cycle(n: usize) -> DiGraph {
        DiGraph::from_edges(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn bfs_visits_all_reachable_vertices_in_level_order() {
        let g = path(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn dfs_visits_all_reachable_vertices() {
        let g = path(5);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        let mut from_middle = dfs_order(&g, 2);
        from_middle.sort_unstable();
        assert_eq!(from_middle, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3, 4]));
        assert!(comps.contains(&vec![5]));
        assert!(!is_connected(&g));
    }

    #[test]
    fn tree_and_cycle_detection() {
        let g = path(4);
        assert!(is_tree(&g));
        assert!(!has_cycle(&g));
        assert!(is_connected(&g));

        let mut with_cycle = path(4);
        with_cycle.add_edge(3, 0, 1.0);
        assert!(!is_tree(&with_cycle));
        assert!(has_cycle(&with_cycle));

        let mut forest = Graph::new(4);
        forest.add_edge(0, 1, 1.0);
        assert!(!is_tree(&forest)); // disconnected
        assert!(!has_cycle(&forest));
    }

    #[test]
    fn trivial_graphs() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_tree(&Graph::new(1)));
        assert!(is_tree(&Graph::new(0)));
        assert!(bfs_order(&Graph::new(0), 0).is_empty());
    }

    #[test]
    fn mask_toggles_and_counts() {
        let mut mask = VertexMask::new(4);
        assert!(!mask.is_empty());
        assert_eq!(mask.len(), 4);
        mask.remove(1);
        mask.remove(1); // idempotent
        mask.remove(3);
        assert_eq!(mask.removed_count(), 2);
        assert!(mask.is_removed(1));
        mask.restore(1);
        assert_eq!(mask.removed_count(), 1);
        mask.clear();
        assert_eq!(mask.removed_count(), 0);
        assert!(!mask.is_removed(3));
    }

    #[test]
    fn masked_bfs_skips_removed_vertices() {
        // 0 → 1 → 2 → 3 with a detour 0 → 3.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut scratch = TraversalScratch::new();
        assert_eq!(scratch.bfs(&g, 0, None), &[0, 1, 3, 2]);
        let mut mask = VertexMask::new(4);
        mask.remove(1);
        assert_eq!(scratch.bfs(&g, 0, Some(&mask)), &[0, 3]);
        // A masked start is empty.
        mask.remove(0);
        assert!(scratch.bfs(&g, 0, Some(&mask)).is_empty());
        assert_eq!(scratch.reachable_count(&g, 0, Some(&mask)), 0);
    }

    #[test]
    fn masked_hop_distances_report_unreachable() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let mut scratch = TraversalScratch::new();
        assert_eq!(scratch.hop_distances(&g, 0, None), &[0, 1, 2, 1]);
        let mut mask = VertexMask::new(4);
        mask.remove(1);
        assert_eq!(
            scratch.hop_distances(&g, 0, Some(&mask)),
            &[0, u32::MAX, u32::MAX, 1]
        );
    }

    #[test]
    fn masked_strong_connectivity_matches_subgraph_semantics() {
        // Two triangles sharing vertex 0: strongly connected, but 0 is a cut
        // vertex.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let mut scratch = TraversalScratch::new();
        assert!(scratch.is_strongly_connected(&g, None));
        let mut mask = VertexMask::new(5);
        mask.remove(0);
        assert!(!scratch.is_strongly_connected(&g, Some(&mask)));
        mask.restore(0);
        mask.remove(1); // removing a triangle vertex keeps the rest connected
        assert!(!scratch.is_strongly_connected(&g, Some(&mask)));
        // {0,3,4} alone is a cycle.
        mask.remove(2);
        assert!(scratch.is_strongly_connected(&g, Some(&mask)));
        // Masking down to ≤ 1 alive vertex is trivially connected.
        mask.remove(3);
        mask.remove(4);
        assert!(scratch.is_strongly_connected(&g, Some(&mask)));
        mask.remove(0);
        assert!(scratch.is_strongly_connected(&g, Some(&mask)));
    }

    #[test]
    fn scratch_is_reusable_across_graphs_and_epochs() {
        let mut scratch = TraversalScratch::with_capacity(8);
        let small = directed_cycle(3);
        let large = directed_cycle(20);
        for _ in 0..5 {
            assert!(scratch.is_strongly_connected(&small, None));
            assert!(scratch.is_strongly_connected(&large, None));
            assert_eq!(scratch.reachable_count(&large, 7, None), 20);
        }
    }

    #[test]
    fn epoch_overflow_resets_cleanly() {
        let g = directed_cycle(4);
        let mut scratch = TraversalScratch::new();
        scratch.epoch = u32::MAX - 1;
        assert!(scratch.is_strongly_connected(&g, None));
        assert_eq!(scratch.bfs(&g, 2, None).len(), 4);
        assert!(scratch.epoch < 10, "epoch must wrap through a reset");
    }
}
