//! Traversals and connectivity for undirected graphs.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Breadth-first order of the vertices reachable from `start`.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    if start >= g.len() {
        return order;
    }
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Depth-first order of the vertices reachable from `start` (iterative,
/// children visited in adjacency order).
pub fn dfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    if start >= g.len() {
        return order;
    }
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        order.push(u);
        // Push in reverse so that the first neighbour is processed first.
        for &(v, _) in g.neighbors(u).iter().rev() {
            if !visited[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected components of the graph; each component is a sorted vertex list.
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let mut visited = vec![false; g.len()];
    let mut components = Vec::new();
    for start in 0..g.len() {
        if visited[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &(v, _) in g.neighbors(u) {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Returns `true` when the undirected graph is connected (trivially true for
/// 0 or 1 vertices).
pub fn is_connected(g: &Graph) -> bool {
    g.len() <= 1 || bfs_order(g, 0).len() == g.len()
}

/// Returns `true` when the graph is a tree: connected with exactly `n − 1`
/// edges.
pub fn is_tree(g: &Graph) -> bool {
    if g.is_empty() {
        return true;
    }
    g.edge_count() == g.len() - 1 && is_connected(g)
}

/// Returns `true` when the graph contains a cycle.
pub fn has_cycle(g: &Graph) -> bool {
    // For an undirected simple graph, a cycle exists iff some component has
    // at least as many edges as vertices.
    let comps = connected_components(g);
    for comp in comps {
        let mut edges_in_comp = 0;
        for &u in &comp {
            for &(v, _) in g.neighbors(u) {
                if u < v {
                    edges_in_comp += 1;
                }
            }
        }
        if edges_in_comp >= comp.len() {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn bfs_visits_all_reachable_vertices_in_level_order() {
        let g = path(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn dfs_visits_all_reachable_vertices() {
        let g = path(5);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        let mut from_middle = dfs_order(&g, 2);
        from_middle.sort_unstable();
        assert_eq!(from_middle, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3, 4]));
        assert!(comps.contains(&vec![5]));
        assert!(!is_connected(&g));
    }

    #[test]
    fn tree_and_cycle_detection() {
        let g = path(4);
        assert!(is_tree(&g));
        assert!(!has_cycle(&g));
        assert!(is_connected(&g));

        let mut with_cycle = path(4);
        with_cycle.add_edge(3, 0, 1.0);
        assert!(!is_tree(&with_cycle));
        assert!(has_cycle(&with_cycle));

        let mut forest = Graph::new(4);
        forest.add_edge(0, 1, 1.0);
        assert!(!is_tree(&forest)); // disconnected
        assert!(!has_cycle(&forest));
    }

    #[test]
    fn trivial_graphs() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_tree(&Graph::new(1)));
        assert!(is_tree(&Graph::new(0)));
        assert!(bfs_order(&Graph::new(0), 0).is_empty());
    }
}
