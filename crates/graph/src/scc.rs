//! Strongly connected components.
//!
//! Two independent implementations are provided — Tarjan's single-pass
//! algorithm (iterative, used in production paths) and Kosaraju's two-pass
//! algorithm (simpler, used as a cross-check in tests and kept public for
//! callers that want the components in reverse topological order of the
//! condensation).

use crate::digraph::DiGraph;

/// Computes the strongly connected components of `g` using an iterative
/// version of Tarjan's algorithm.
///
/// Returns the list of components; each component is a sorted list of vertex
/// indices.  Components are emitted in reverse topological order of the
/// condensation (i.e. a component is emitted only after every component it
/// can reach).
pub fn tarjan_scc(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack of (vertex, next-child-position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call_stack.push((start, 0));
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = g.out_neighbors(v);
            if *child_pos < out.len() {
                let w = out[*child_pos];
                *child_pos += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Finished v.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Computes the strongly connected components of `g` using Kosaraju's
/// algorithm.  Returned components are sorted internally; the component order
/// follows the finishing order of the first DFS pass.
pub fn kosaraju_scc(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    // First pass: order vertices by DFS finish time (iteratively).
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let out = g.out_neighbors(v);
            if *pos < out.len() {
                let w = out[*pos];
                *pos += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Second pass: DFS on the reverse graph in reverse finishing order.
    let rev = g.reversed();
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for &start in order.iter().rev() {
        if assigned[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        assigned[start] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            for &w in rev.out_neighbors(v) {
                if !assigned[w] {
                    assigned[w] = true;
                    stack.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Number of strongly connected components of `g`.
pub fn scc_count(g: &DiGraph) -> usize {
    tarjan_scc(g).len()
}

/// Returns `true` when the digraph consists of a single strongly connected
/// component covering every vertex (trivially true for 0 or 1 vertices).
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    g.len() <= 1 || scc_count(g) == 1
}

/// Size of the largest strongly connected component (0 for an empty graph).
pub fn largest_scc_size(g: &DiGraph) -> usize {
    tarjan_scc(g).iter().map(|c| c.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn normalize(mut sccs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        sccs.sort();
        sccs
    }

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        assert_eq!(tarjan_scc(&g).len(), 1);
        assert_eq!(kosaraju_scc(&g).len(), 1);
        assert!(is_strongly_connected(&g));
        assert_eq!(largest_scc_size(&g), 4);
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(scc_count(&g), 4);
        assert!(!is_strongly_connected(&g));
        assert_eq!(largest_scc_size(&g), 1);
    }

    #[test]
    fn two_cycles_connected_by_one_edge() {
        let mut g = DiGraph::new(6);
        // Cycle A: 0-1-2, Cycle B: 3-4-5, bridge 2 -> 3.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        let sccs = normalize(tarjan_scc(&g));
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(normalize(kosaraju_scc(&g)), sccs);
    }

    #[test]
    fn tarjan_emits_reverse_topological_order() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let sccs = tarjan_scc(&g);
        // Sink component {3} must come first, source {0} last.
        assert_eq!(sccs.first().unwrap(), &vec![3]);
        assert_eq!(sccs.last().unwrap(), &vec![0]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert_eq!(scc_count(&DiGraph::new(0)), 0);
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert_eq!(scc_count(&DiGraph::new(1)), 1);
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert_eq!(scc_count(&DiGraph::new(3)), 3);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // The iterative implementations must handle long paths.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        assert_eq!(scc_count(&g), n);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_tarjan_matches_kosaraju(n in 1usize..30, edges in proptest::collection::vec((0usize..30, 0usize..30), 0..120)) {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            prop_assert_eq!(normalize(tarjan_scc(&g)), normalize(kosaraju_scc(&g)));
        }

        #[test]
        fn prop_scc_agrees_with_digraph_check(n in 1usize..20, edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            prop_assert_eq!(is_strongly_connected(&g), g.is_strongly_connected());
        }
    }
}
