//! Strongly connected components.
//!
//! Three entry points at different cost/detail trade-offs:
//!
//! * [`TraversalScratch::scc_summary`] — a masked, allocation-free Tarjan
//!   pass returning only component count and largest size (what the
//!   verification report needs), reusing the shared traversal scratch.
//! * [`tarjan_scc`] — full decomposition (iterative Tarjan, production
//!   paths that need the components themselves).
//! * [`kosaraju_scc`] — a second, independent implementation kept as a
//!   cross-check in tests and for callers that want the components in
//!   reverse topological order of the condensation.

use crate::digraph::DiGraph;
use crate::traversal::{alive, debug_assert_mask_matches, TraversalScratch, VertexMask};

/// Component count and largest component size, as computed by one masked
/// Tarjan pass ([`TraversalScratch::scc_summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SccSummary {
    /// Number of strongly connected components of the alive subgraph.
    pub count: usize,
    /// Size of the largest component (0 when no vertex is alive).
    pub largest: usize,
}

impl SccSummary {
    /// Returns `true` when the summarized (sub)graph of `alive_vertices`
    /// vertices is strongly connected (trivially true for 0 or 1 vertices).
    pub fn is_strongly_connected(&self, alive_vertices: usize) -> bool {
        alive_vertices <= 1 || self.count == 1
    }
}

impl TraversalScratch {
    /// Computes the SCC count and largest component size of the alive
    /// subgraph of `g` in one iterative Tarjan pass, without materializing
    /// the components — zero steady-state allocation (the Tarjan buffers
    /// live in the scratch).
    ///
    /// Masked-out vertices are skipped entirely; results are over alive
    /// vertices only.
    pub fn scc_summary(&mut self, g: &DiGraph, mask: Option<&VertexMask>) -> SccSummary {
        debug_assert_mask_matches(g, mask);
        let n = g.len();
        self.begin(n);
        let mut next_index: u32 = 0;
        let mut count = 0usize;
        let mut largest = 0usize;
        for start in 0..n {
            if self.is_marked(start as u32) || !alive(mask, start) {
                continue;
            }
            self.call.push((start as u32, 0));
            while let Some(&mut (v, ref mut child_pos)) = self.call.last_mut() {
                let v_us = v as usize;
                if *child_pos == 0 {
                    self.visited[v_us] = self.epoch;
                    self.value[v_us] = next_index;
                    self.low[v_us] = next_index;
                    next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v_us] = true;
                }
                let out = g.out_neighbors(v_us);
                if (*child_pos as usize) < out.len() {
                    let w = out[*child_pos as usize];
                    *child_pos += 1;
                    let w_us = w as usize;
                    if !alive(mask, w_us) {
                        continue;
                    }
                    if self.visited[w_us] != self.epoch {
                        self.call.push((w, 0));
                    } else if self.on_stack[w_us] {
                        self.low[v_us] = self.low[v_us].min(self.value[w_us]);
                    }
                } else {
                    // Finished v.
                    self.call.pop();
                    if let Some(&(parent, _)) = self.call.last() {
                        let p = parent as usize;
                        self.low[p] = self.low[p].min(self.low[v_us]);
                    }
                    if self.low[v_us] == self.value[v_us] {
                        let mut size = 0usize;
                        loop {
                            let w = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[w as usize] = false;
                            size += 1;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                        largest = largest.max(size);
                    }
                }
            }
        }
        SccSummary { count, largest }
    }
}

impl TraversalScratch {
    /// [`TraversalScratch::scc_summary`] over an **adjacency-list digraph**
    /// (`rows[v]` = out-neighbors of `v`) with an aliveness predicate,
    /// instead of a materialized CSR [`DiGraph`] with a [`VertexMask`].
    ///
    /// This is the kernel incremental maintainers want: they keep rows in a
    /// stable id space with tombstoned entries, and re-checking strong
    /// connectivity after an edit should not pay an O(n + m) dense
    /// re-indexing first.  Dead vertices are skipped exactly like
    /// masked-out ones; results equal `scc_summary` on the equivalent
    /// subgraph (component count and largest size are graph invariants,
    /// independent of visit order).
    pub fn scc_summary_rows<F: Fn(usize) -> bool>(
        &mut self,
        rows: &[Vec<u32>],
        alive: F,
    ) -> SccSummary {
        let n = rows.len();
        self.begin(n);
        let mut next_index: u32 = 0;
        let mut count = 0usize;
        let mut largest = 0usize;
        for start in 0..n {
            if self.is_marked(start as u32) || !alive(start) {
                continue;
            }
            self.call.push((start as u32, 0));
            while let Some(&mut (v, ref mut child_pos)) = self.call.last_mut() {
                let v_us = v as usize;
                if *child_pos == 0 {
                    self.visited[v_us] = self.epoch;
                    self.value[v_us] = next_index;
                    self.low[v_us] = next_index;
                    next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v_us] = true;
                }
                let out = &rows[v_us];
                if (*child_pos as usize) < out.len() {
                    let w = out[*child_pos as usize];
                    *child_pos += 1;
                    let w_us = w as usize;
                    if !alive(w_us) {
                        continue;
                    }
                    if self.visited[w_us] != self.epoch {
                        self.call.push((w, 0));
                    } else if self.on_stack[w_us] {
                        self.low[v_us] = self.low[v_us].min(self.value[w_us]);
                    }
                } else {
                    // Finished v.
                    self.call.pop();
                    if let Some(&(parent, _)) = self.call.last() {
                        let p = parent as usize;
                        self.low[p] = self.low[p].min(self.low[v_us]);
                    }
                    if self.low[v_us] == self.value[v_us] {
                        let mut size = 0usize;
                        loop {
                            let w = self.stack.pop().expect("tarjan stack underflow");
                            self.on_stack[w as usize] = false;
                            size += 1;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                        largest = largest.max(size);
                    }
                }
            }
        }
        SccSummary { count, largest }
    }
}

/// Computes the SCC count and largest component size of `g` with a
/// throwaway scratch; loops over many graphs or masks should hold a
/// [`TraversalScratch`] and call [`TraversalScratch::scc_summary`] directly.
pub fn scc_summary(g: &DiGraph) -> SccSummary {
    TraversalScratch::new().scc_summary(g, None)
}

/// Computes the strongly connected components of `g` using an iterative
/// version of Tarjan's algorithm.
///
/// Returns the list of components; each component is a sorted list of vertex
/// indices.  Components are emitted in reverse topological order of the
/// condensation (i.e. a component is emitted only after every component it
/// can reach).
pub fn tarjan_scc(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack of (vertex, next-child-position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != u32::MAX {
            continue;
        }
        call_stack.push((start, 0));
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = g.out_neighbors(v);
            if *child_pos < out.len() {
                let w = out[*child_pos] as usize;
                *child_pos += 1;
                if index[w] == u32::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Finished v.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Computes the strongly connected components of `g` using Kosaraju's
/// algorithm.  Returned components are sorted internally; the component order
/// follows the finishing order of the first DFS pass.
///
/// The second pass walks the digraph's stored in-CSR directly — no reversed
/// copy is materialized.
pub fn kosaraju_scc(g: &DiGraph) -> Vec<Vec<usize>> {
    let n = g.len();
    // First pass: order vertices by DFS finish time (iteratively).
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            let out = g.out_neighbors(v);
            if *pos < out.len() {
                let w = out[*pos] as usize;
                *pos += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Second pass: DFS against the edge direction (in-CSR) in reverse
    // finishing order.
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for &start in order.iter().rev() {
        if assigned[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        assigned[start] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            for &w in g.in_neighbors(v) {
                if !assigned[w as usize] {
                    assigned[w as usize] = true;
                    stack.push(w as usize);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Number of strongly connected components of `g`.
pub fn scc_count(g: &DiGraph) -> usize {
    scc_summary(g).count
}

/// Returns `true` when the digraph consists of a single strongly connected
/// component covering every vertex (trivially true for 0 or 1 vertices).
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    g.len() <= 1 || TraversalScratch::new().is_strongly_connected(g, None)
}

/// Size of the largest strongly connected component (0 for an empty graph).
pub fn largest_scc_size(g: &DiGraph) -> usize {
    scc_summary(g).largest
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn normalize(mut sccs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        sccs.sort();
        sccs
    }

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = DiGraph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        assert_eq!(tarjan_scc(&g).len(), 1);
        assert_eq!(kosaraju_scc(&g).len(), 1);
        assert!(is_strongly_connected(&g));
        assert_eq!(largest_scc_size(&g), 4);
        assert_eq!(
            scc_summary(&g),
            SccSummary {
                count: 1,
                largest: 4
            }
        );
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(scc_count(&g), 4);
        assert!(!is_strongly_connected(&g));
        assert_eq!(largest_scc_size(&g), 1);
    }

    #[test]
    fn two_cycles_connected_by_one_edge() {
        let mut g = DiGraph::new(6);
        // Cycle A: 0-1-2, Cycle B: 3-4-5, bridge 2 -> 3.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        g.add_edge(2, 3);
        let sccs = normalize(tarjan_scc(&g));
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(normalize(kosaraju_scc(&g)), sccs);
        assert_eq!(
            scc_summary(&g),
            SccSummary {
                count: 2,
                largest: 3
            }
        );
    }

    #[test]
    fn tarjan_emits_reverse_topological_order() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let sccs = tarjan_scc(&g);
        // Sink component {3} must come first, source {0} last.
        assert_eq!(sccs.first().unwrap(), &vec![3]);
        assert_eq!(sccs.last().unwrap(), &vec![0]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert_eq!(scc_count(&DiGraph::new(0)), 0);
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert_eq!(scc_count(&DiGraph::new(1)), 1);
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert_eq!(scc_count(&DiGraph::new(3)), 3);
        let empty = scc_summary(&DiGraph::new(0));
        assert!(empty.is_strongly_connected(0));
        assert_eq!(empty.largest, 0);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // The iterative implementations must handle long paths.
        let n = 200_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        assert_eq!(scc_count(&g), n);
        assert_eq!(tarjan_scc(&g).len(), n);
    }

    #[test]
    fn masked_summary_matches_subgraph_decomposition() {
        // Two triangles sharing vertex 0.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let mut scratch = TraversalScratch::new();
        assert_eq!(
            scratch.scc_summary(&g, None),
            SccSummary {
                count: 1,
                largest: 5
            }
        );
        let mut mask = VertexMask::new(5);
        mask.remove(0);
        let masked = scratch.scc_summary(&g, Some(&mask));
        // Without the shared vertex both triangles fall apart into paths.
        assert_eq!(masked.count, 4);
        assert_eq!(masked.largest, 1);
        assert!(!masked.is_strongly_connected(4));
        // Masking everything yields the empty summary.
        for v in 1..5 {
            mask.remove(v);
        }
        let empty = scratch.scc_summary(&g, Some(&mask));
        assert_eq!(
            empty,
            SccSummary {
                count: 0,
                largest: 0
            }
        );
        assert!(empty.is_strongly_connected(0));
    }

    #[test]
    fn rows_kernel_matches_masked_csr_summary() {
        // Two triangles sharing vertex 0, vertex 5 dead with a stale row.
        let rows: Vec<Vec<u32>> = vec![vec![1, 3], vec![2], vec![0], vec![4], vec![0], vec![0, 2]];
        let alive = [true, true, true, true, true, false];
        let g = DiGraph::from_adjacency(6, rows.iter().map(|r| r.iter().map(|&v| v as usize)));
        let mut mask = VertexMask::new(6);
        mask.remove(5);
        let mut scratch = TraversalScratch::new();
        let dense = scratch.scc_summary(&g, Some(&mask));
        let sparse = scratch.scc_summary_rows(&rows, |v| alive[v]);
        assert_eq!(dense, sparse);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_rows_kernel_matches_masked_csr(
            n in 1usize..20,
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80),
            dead in proptest::collection::vec(0usize..20, 0..6),
        ) {
            let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    rows[u].push(v as u32);
                }
            }
            for row in &mut rows {
                row.sort_unstable();
                row.dedup();
            }
            let g = DiGraph::from_adjacency(n, rows.iter().map(|r| r.iter().map(|&v| v as usize)));
            let mut mask = VertexMask::new(n);
            let mut alive = vec![true; n];
            for d in dead {
                if d < n {
                    mask.remove(d);
                    alive[d] = false;
                }
            }
            let mut scratch = TraversalScratch::new();
            let dense = scratch.scc_summary(&g, Some(&mask));
            let sparse = scratch.scc_summary_rows(&rows, |v| alive[v]);
            prop_assert_eq!(dense, sparse);
        }
        #[test]
        fn prop_tarjan_matches_kosaraju(n in 1usize..30, edges in proptest::collection::vec((0usize..30, 0usize..30), 0..120)) {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            prop_assert_eq!(normalize(tarjan_scc(&g)), normalize(kosaraju_scc(&g)));
        }

        #[test]
        fn prop_scc_agrees_with_digraph_check(n in 1usize..20, edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u < n && v < n && u != v {
                    g.add_edge(u, v);
                }
            }
            prop_assert_eq!(is_strongly_connected(&g), g.is_strongly_connected());
        }

        #[test]
        fn prop_summary_matches_full_decomposition(n in 1usize..24, edges in proptest::collection::vec((0usize..24, 0usize..24), 0..96)) {
            let pairs: Vec<(usize, usize)> = edges.into_iter()
                .filter(|&(u, v)| u < n && v < n && u != v)
                .collect();
            let g = DiGraph::from_edges(n, &pairs);
            let full = tarjan_scc(&g);
            let summary = scc_summary(&g);
            prop_assert_eq!(summary.count, full.len());
            prop_assert_eq!(summary.largest, full.iter().map(|c| c.len()).max().unwrap_or(0));
        }
    }
}
