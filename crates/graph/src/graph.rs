//! Weighted undirected graphs over vertices `0..n`.

use serde::{Deserialize, Serialize};

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Edge weight (a Euclidean distance in this workspace).
    pub weight: f64,
}

impl Edge {
    /// Creates an edge.
    pub fn new(u: usize, v: usize, weight: f64) -> Self {
        Edge { u, v, weight }
    }

    /// The endpoint different from `x`; panics if `x` is not an endpoint.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// A weighted undirected graph stored as adjacency lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// adjacency[u] = list of (neighbour, weight)
    adjacency: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = Graph::new(n);
        for e in edges {
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }

    /// Builds the complete graph over `n` vertices using the provided weight
    /// function.
    pub fn complete<F: Fn(usize, usize) -> f64>(n: usize, weight: F) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, weight(u, v));
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an undirected edge; parallel edges are allowed but unused in this
    /// workspace.  Panics when an endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not supported");
        self.adjacency[u].push((v, weight));
        self.adjacency[v].push((u, weight));
        self.edge_count += 1;
    }

    /// Removes the edge `(u, v)` if present; returns `true` when an edge was
    /// removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let before = self.adjacency[u].len();
        self.adjacency[u].retain(|&(w, _)| w != v);
        let removed = before != self.adjacency[u].len();
        if removed {
            self.adjacency[v].retain(|&(w, _)| w != u);
            self.edge_count -= 1;
        }
        removed
    }

    /// Neighbours of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adjacency[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Weight of the edge `(u, v)`, if present (the first parallel edge wins).
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adjacency[u]
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, wt)| wt)
    }

    /// Returns `true` when the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// All edges, each reported once with `u < v`.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in 0..self.len() {
            for &(v, w) in &self.adjacency[u] {
                if u < v {
                    out.push(Edge::new(u, v, w));
                }
            }
        }
        out
    }

    /// Applies `f` to every edge weight in place (both directions of each
    /// stored edge see the same new value).  Used by the rescaling path of
    /// `EuclideanMst`, where topology is preserved and only lengths change.
    pub fn map_weights<F: Fn(f64) -> f64>(&mut self, f: F) {
        for row in &mut self.adjacency {
            for (_, w) in row {
                *w = f(*w);
            }
        }
    }

    /// Sorts every adjacency list ascending by neighbour index (weight as a
    /// deterministic tie-break for parallel edges), making the stored graph
    /// a **canonical function of its edge set** — two builds that produce
    /// the same edges in different orders become bit-identical structures,
    /// with identical neighbour iteration order and identical (order-
    /// dependent) floating-point sums in [`Graph::total_weight`].  The MST
    /// engines canonicalize after building precisely so the sharded stitched
    /// build can be compared bit-for-bit against the global one.
    pub fn sort_adjacency(&mut self) {
        for row in &mut self.adjacency {
            row.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.total_cmp(&b.1)));
        }
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges().iter().map(|e| e.weight).sum()
    }

    /// Maximum edge weight, or 0 for an edgeless graph.
    pub fn max_edge_weight(&self) -> f64 {
        self.edges().iter().map(|e| e.weight).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 0, 3.0);
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
        assert!((g.max_edge_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn edges_reported_once() {
        let g = triangle();
        let edges = g.edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|e| e.u < e.v));
    }

    #[test]
    fn remove_edge_updates_both_endpoints() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.remove_edge(0, 1));
    }

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = Graph::complete(5, |u, v| (u + v) as f64);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.edge_weight(2, 3), Some(5.0));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(3, 7, 1.0);
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(3, 7, 1.0).other(5);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    fn from_edges_builder() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.5)];
        let g = Graph::from_edges(4, &edges);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(3), 0);
    }
}
