//! Shared report-formatting helpers.

use std::fmt;

/// A simple fixed-width text table used by every experiment report.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, width) in cells.iter().zip(&widths) {
                write!(f, " {cell:<width$} |", width = width)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an optional bound for display (`-` when absent).
pub fn fmt_bound(bound: Option<f64>) -> String {
    match bound {
        Some(b) if b.is_finite() => format!("{b:.4}"),
        _ => "-".to_string(),
    }
}

/// Formats a boolean as a check mark / cross for report tables.
pub fn fmt_check(ok: bool) -> String {
    if ok {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["alpha", "1"]);
        t.add_row(vec!["a-much-longer-name", "12345"]);
        let rendered = t.to_string();
        assert!(rendered.contains("| name"));
        assert!(rendered.contains("a-much-longer-name"));
        // Header separator present.
        assert!(rendered.lines().nth(1).unwrap().starts_with("|-"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only-one"]);
        let rendered = t.to_string();
        assert_eq!(rendered.lines().count(), 3);
    }

    #[test]
    fn bound_and_check_formatting() {
        assert_eq!(fmt_bound(Some(1.23456)), "1.2346");
        assert_eq!(fmt_bound(None), "-");
        assert_eq!(fmt_bound(Some(f64::INFINITY)), "-");
        assert_eq!(fmt_check(true), "yes");
        assert_eq!(fmt_check(false), "NO");
    }
}
