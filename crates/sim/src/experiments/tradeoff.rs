//! EXP-TR: the spread–radius trade-off curves motivated in §1.1 and §5.
//!
//! The paper's central message is a trade-off: fewer/narrower antennae can be
//! compensated by a longer range.  This driver produces the two families of
//! curves that make the trade-off concrete:
//!
//! * `radius(φ₂)` for two antennae, sweeping `φ₂` across `[2π/3, 6π/5]` —
//!   the measured worst radius next to the Theorem 3 / Theorem 2 bounds, and
//! * `radius(k)` at zero spread for `k ∈ {1, …, 5}` — the measured worst
//!   radius of the beam-only constructions next to the Table 1 bounds.

use crate::experiments::common::{fmt_bound, TextTable};
use crate::generators::{standard_workloads, PointSetGenerator};
use crate::record::SeriesPoint;
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::table1_radius;
use antennae_core::instance::Instance;
use antennae_core::solver::{implemented_radius_guarantee, Solver};
use antennae_core::verify::verify_with_budget;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the trade-off experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffConfig {
    /// Number of φ₂ sample points across `[2π/3, 6π/5]`.
    pub phi_steps: usize,
    /// Workloads.
    pub workloads: Vec<PointSetGenerator>,
    /// Seeds per workload.
    pub seeds_per_workload: u64,
    /// Worker threads.
    pub threads: usize,
}

impl TradeoffConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        TradeoffConfig {
            phi_steps: 12,
            workloads: standard_workloads(),
            seeds_per_workload: 10,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        TradeoffConfig {
            phi_steps: 4,
            workloads: vec![PointSetGenerator::UniformSquare { n: 40, side: 10.0 }],
            seeds_per_workload: 2,
            threads: default_threads(),
        }
    }
}

/// The trade-off report: the φ₂ sweep for `k = 2` and the zero-spread sweep
/// over `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffReport {
    /// Measured worst radius (y) against φ₂ (x); `y_reference` holds the
    /// paper bound.
    pub phi_sweep: Vec<SeriesPoint>,
    /// Measured worst radius (y) against `k` (x) at zero spread.
    pub k_sweep: Vec<SeriesPoint>,
    /// Whether every configuration verified strongly connected.
    pub all_connected: bool,
}

impl fmt::Display for TradeoffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-TR — spread/radius trade-off (radii in units of lmax), all connected: {}",
            self.all_connected
        )?;
        writeln!(f, "\nTwo antennae: radius as a function of φ₂")?;
        let mut table = TextTable::new(vec!["φ₂ (rad)", "φ₂/π", "measured worst", "paper bound"]);
        for p in &self.phi_sweep {
            table.add_row(vec![
                format!("{:.4}", p.x),
                format!("{:.3}", p.x / PI),
                format!("{:.4}", p.y),
                fmt_bound(p.y_reference),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(f, "\nZero spread: radius as a function of k")?;
        let mut table = TextTable::new(vec!["k", "measured worst", "paper bound"]);
        for p in &self.k_sweep {
            table.add_row(vec![
                format!("{}", p.x as usize),
                format!("{:.4}", p.y),
                fmt_bound(p.y_reference),
            ]);
        }
        write!(f, "{table}")
    }
}

fn worst_radius_for_budget(budget: AntennaBudget, config: &TradeoffConfig) -> (f64, bool) {
    let mut jobs: Vec<(PointSetGenerator, u64)> = Vec::new();
    for workload in &config.workloads {
        for seed in 0..config.seeds_per_workload {
            jobs.push((workload.clone(), seed));
        }
    }
    let results = parallel_map(&jobs, config.threads, |(workload, seed)| {
        let points = workload.generate(*seed);
        let instance = Instance::new(points).expect("non-empty workload");
        let outcome = Solver::on(&instance)
            .with_budget(budget)
            .run()
            .expect("valid budget");
        let report = verify_with_budget(&instance, &outcome.scheme, Some(budget));
        (report.max_radius_over_lmax, report.is_valid())
    });
    let worst = results.iter().map(|(r, _)| *r).fold(0.0, f64::max);
    let all_ok = results.iter().all(|(_, ok)| *ok);
    (worst, all_ok)
}

/// Runs the trade-off experiment.
pub fn run(config: &TradeoffConfig) -> TradeoffReport {
    let mut all_connected = true;

    // φ₂ sweep for two antennae, from 2π/3 up to the Theorem 2 threshold
    // 6π/5 (beyond which the radius is 1 and the curve is flat).
    let lo = 2.0 * PI / 3.0;
    let hi = 6.0 * PI / 5.0;
    let steps = config.phi_steps.max(2);
    let mut phi_sweep = Vec::with_capacity(steps);
    for i in 0..steps {
        let phi = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
        let budget = AntennaBudget::new(2, phi);
        let (worst, ok) = worst_radius_for_budget(budget, config);
        all_connected &= ok;
        phi_sweep.push(SeriesPoint {
            x: phi,
            y: worst,
            y_reference: table1_radius(2, phi),
            series: "k=2 measured".into(),
        });
    }

    // k sweep at zero spread.
    let mut k_sweep = Vec::with_capacity(5);
    for k in 1..=5usize {
        let budget = AntennaBudget::beams_only(k);
        let (worst, ok) = worst_radius_for_budget(budget, config);
        all_connected &= ok;
        k_sweep.push(SeriesPoint {
            x: k as f64,
            y: worst,
            y_reference: table1_radius(k, 0.0),
            series: "zero-spread measured".into(),
        });
        // Record the implemented guarantee check (used in tests via records).
        if let Some(bound) = implemented_radius_guarantee(k, 0.0) {
            debug_assert!(worst <= bound + 1e-6 || k == 1);
        }
    }

    TradeoffReport {
        phi_sweep,
        k_sweep,
        all_connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tradeoff_curves_are_monotone_and_bounded() {
        let report = run(&TradeoffConfig::quick());
        assert!(report.all_connected);
        assert_eq!(report.phi_sweep.len(), 4);
        assert_eq!(report.k_sweep.len(), 5);

        // The measured worst radius of the φ₂ sweep never exceeds the paper
        // bound (every point of the sweep is covered by Theorem 3 / 2).
        for p in &report.phi_sweep {
            let bound = p.y_reference.unwrap();
            assert!(p.y <= bound + 1e-6, "phi {}: {} > {}", p.x, p.y, bound);
        }

        // The zero-spread sweep is monotone non-increasing in k from k = 2
        // onward (k = 1 is the heuristic baseline with no guarantee).
        let tail: Vec<f64> = report.k_sweep.iter().skip(1).map(|p| p.y).collect();
        assert!(tail.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        for p in report.k_sweep.iter().skip(1) {
            assert!(p.y <= p.y_reference.unwrap() + 1e-6);
        }

        let rendered = report.to_string();
        assert!(rendered.contains("radius as a function of"));
    }
}
