//! EXP-F1: Lemma 1 on the regular polygon (Figure 1).
//!
//! Lemma 1 states that `2π(d−k)/d` spread is always sufficient at a
//! degree-`d` vertex with `k` antennae, and necessary on the configuration of
//! Figure 1: a centre vertex whose `d` MST neighbours form a regular `d`-gon.
//! This driver, for every `(d, k)` with `1 ≤ k ≤ d ≤ 5`:
//!
//! * runs the Lemma 1 construction at the centre of the regular polygon and
//!   measures the spread it uses,
//! * computes the *minimum possible* spread of any `k`-antenna cover of the
//!   `d` neighbours (by the optimal grouping of the neighbours into `k`
//!   angularly consecutive groups), and
//! * compares both against the analytic value `2π(d−k)/d`.

use crate::experiments::common::{fmt_check, TextTable};
use crate::generators::PointSetGenerator;
use antennae_core::algorithms::lemma1;
use antennae_core::antenna::SensorAssignment;
use antennae_geometry::angular::{circular_gaps, max_window_sum, sort_ccw};
use antennae_geometry::{Point, TAU};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(d, k)` cell of the Lemma 1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lemma1Cell {
    /// Degree of the centre vertex (number of polygon vertices).
    pub d: usize,
    /// Number of antennae at the centre.
    pub k: usize,
    /// The analytic bound `2π(d−k)/d`.
    pub analytic: f64,
    /// Spread used by the implemented construction.
    pub construction_spread: f64,
    /// Minimum possible spread of any `k`-antenna cover (optimal grouping).
    pub optimal_spread: f64,
    /// Whether the construction covered every neighbour.
    pub covers_all: bool,
}

impl Lemma1Cell {
    /// The construction is optimal on the regular polygon when it matches the
    /// optimal grouping spread (up to numerical noise).
    pub fn construction_is_optimal(&self) -> bool {
        (self.construction_spread - self.optimal_spread).abs() < 1e-9
    }

    /// The lemma's claim holds: analytic value is both achievable and
    /// necessary.
    pub fn lemma_holds(&self) -> bool {
        self.covers_all
            && self.construction_spread <= self.analytic + 1e-9
            && self.optimal_spread >= self.analytic - 1e-9
    }
}

/// The Lemma 1 experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lemma1Report {
    /// All `(d, k)` cells.
    pub cells: Vec<Lemma1Cell>,
}

impl Lemma1Report {
    /// Whether Lemma 1's claim held in every cell.
    pub fn all_hold(&self) -> bool {
        self.cells.iter().all(|c| c.lemma_holds())
    }
}

impl fmt::Display for Lemma1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-F1 — Lemma 1 on the regular d-gon (spreads in radians)"
        )?;
        let mut table = TextTable::new(vec![
            "d",
            "k",
            "analytic 2π(d−k)/d",
            "construction",
            "optimal",
            "covers all",
            "lemma holds",
        ]);
        for c in &self.cells {
            table.add_row(vec![
                c.d.to_string(),
                c.k.to_string(),
                format!("{:.4}", c.analytic),
                format!("{:.4}", c.construction_spread),
                format!("{:.4}", c.optimal_spread),
                fmt_check(c.covers_all),
                fmt_check(c.lemma_holds()),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Minimum possible total spread of `k` antennae at `apex` covering all of
/// `neighbors`: partition the neighbours into `k` angularly consecutive
/// groups; the optimal total spread is `2π` minus the sum of the `k` largest
/// gaps (equivalently, minimize the spanned arcs).
pub fn minimal_cover_spread(apex: &Point, neighbors: &[Point], k: usize) -> f64 {
    let d = neighbors.len();
    if d == 0 || k == 0 {
        return 0.0;
    }
    if k >= d {
        return 0.0;
    }
    let sorted = sort_ccw(apex, neighbors);
    let gaps = circular_gaps(&sorted);
    // The k groups leave exactly k gaps uncovered; to minimize the covered
    // arcs we leave the k largest gaps uncovered.  (For equally spaced
    // points every choice is equivalent and equals 2π(d−k)/d.)
    let mut sorted_gaps = gaps.clone();
    sorted_gaps.sort_by(f64::total_cmp);
    let skipped: f64 = sorted_gaps.iter().rev().take(k).sum();
    (TAU - skipped).max(0.0)
}

/// Runs the Lemma 1 experiment for `1 ≤ k ≤ d ≤ max_degree`.
pub fn run(max_degree: usize) -> Lemma1Report {
    let mut cells = Vec::new();
    for d in 1..=max_degree {
        let generator = PointSetGenerator::RegularPolygonStar { d };
        let points = generator.generate(0);
        let apex = points[0];
        let neighbors = &points[1..];
        for k in 1..=d {
            let antennas = lemma1::orient_node(&apex, neighbors, k);
            let assignment = SensorAssignment::new(antennas);
            let covers_all = neighbors.iter().all(|t| assignment.covers(&apex, t));
            cells.push(Lemma1Cell {
                d,
                k,
                analytic: lemma1::sufficient_spread(d, k),
                construction_spread: assignment.total_spread(),
                optimal_spread: minimal_cover_spread(&apex, neighbors, k),
                covers_all,
            });
        }
    }
    Lemma1Report { cells }
}

/// Sanity helper used by tests: the largest-window argument of Lemma 1 on an
/// arbitrary neighbour set (`max Σ of k consecutive gaps ≥ 2πk/d`).
pub fn averaging_argument_holds(apex: &Point, neighbors: &[Point], k: usize) -> bool {
    let d = neighbors.len();
    if d == 0 || k == 0 || k > d {
        return true;
    }
    let sorted = sort_ccw(apex, neighbors);
    let gaps = circular_gaps(&sorted);
    match max_window_sum(&gaps, k) {
        Some((_, sum)) => sum + 1e-9 >= TAU * k as f64 / d as f64,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lemma_holds_on_every_cell_up_to_degree_five() {
        let report = run(5);
        assert_eq!(report.cells.len(), 1 + 2 + 3 + 4 + 5);
        assert!(report.all_hold(), "{report}");
        // On the regular polygon the construction is optimal in every cell.
        for c in &report.cells {
            assert!(c.construction_is_optimal(), "d={} k={}", c.d, c.k);
        }
        let rendered = report.to_string();
        assert!(rendered.contains("2π(d−k)/d"));
    }

    #[test]
    fn minimal_cover_spread_on_regular_polygon_matches_analytic() {
        for d in 1..=6 {
            let pts = PointSetGenerator::RegularPolygonStar { d }.generate(0);
            for k in 1..=d {
                let minimal = minimal_cover_spread(&pts[0], &pts[1..], k);
                let analytic = TAU * (d - k) as f64 / d as f64;
                assert!(
                    (minimal - analytic).abs() < 1e-9,
                    "d={d} k={k}: {minimal} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn minimal_cover_spread_degenerate_cases() {
        assert_eq!(minimal_cover_spread(&Point::ORIGIN, &[], 2), 0.0);
        let single = [Point::new(1.0, 0.0)];
        assert_eq!(minimal_cover_spread(&Point::ORIGIN, &single, 1), 0.0);
        assert_eq!(minimal_cover_spread(&Point::ORIGIN, &single, 0), 0.0);
    }

    #[test]
    fn averaging_argument_on_random_neighborhoods() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let d = rng.random_range(1..=6usize);
            let neighbors: Vec<Point> = (0..d)
                .map(|_| {
                    let theta: f64 = rng.random_range(0.0..TAU);
                    Point::new(theta.cos(), theta.sin())
                })
                .collect();
            for k in 1..=d {
                assert!(averaging_argument_holds(&Point::ORIGIN, &neighbors, k));
            }
        }
    }
}
