//! EXP-F2: empirical validation of Facts 1 and 2 (Figure 2).
//!
//! Fact 1: for adjacent MST neighbours `u, w` of a vertex `v`, the angle
//! `∠uvw` is at least `π/3`, `d(u, w) ≤ 2·sin(∠uvw / 2)` (in units of
//! `lmax`), and the triangle `△uvw` is empty.  Fact 2: at a degree-5 vertex
//! the consecutive neighbour angles lie in `[π/3, 2π/3]` and the two-apart
//! angles in `[2π/3, π]`.  This driver measures all of these quantities on
//! generated MSTs and reports the worst observations.

use crate::experiments::common::{fmt_check, TextTable};
use crate::generators::{standard_workloads, PointSetGenerator};
use crate::sweep::{default_threads, parallel_map};
use antennae_geometry::angular::{circular_gaps, sort_ccw};
use antennae_geometry::{Point, Triangle, PI};
use antennae_graph::euclidean::EuclideanMst;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measurements over one generated MST.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MstFactsSample {
    /// Number of sensors.
    pub n: usize,
    /// Maximum vertex degree of the MST (must be ≤ 5).
    pub max_degree: usize,
    /// Minimum angle between adjacent MST edges (radians); `f64::INFINITY`
    /// when no vertex has two neighbours.
    pub min_adjacent_angle: f64,
    /// Maximum ratio `d(u, w) / (2·sin(∠uvw / 2) · lmax)` over adjacent
    /// neighbour pairs (Fact 1(2) claims ≤ 1).
    pub max_chord_ratio: f64,
    /// Number of adjacent-neighbour triangles that contained another sensor
    /// strictly inside (Fact 1(3) claims 0).
    pub non_empty_triangles: usize,
    /// Minimum consecutive angle at degree-5 vertices (Fact 2(1): ≥ π/3);
    /// `f64::INFINITY` when there is no degree-5 vertex.
    pub degree5_min_consecutive: f64,
    /// Maximum consecutive angle at degree-5 vertices (Fact 2(1): ≤ 2π/3).
    pub degree5_max_consecutive: f64,
    /// Number of degree-5 vertices observed.
    pub degree5_vertices: usize,
}

/// Aggregated report of the MST-facts experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MstFactsReport {
    /// One row per (workload, seed).
    pub samples: Vec<(String, MstFactsSample)>,
}

impl MstFactsReport {
    /// Whether every sample satisfied Fact 1 and Fact 2 (within numerical
    /// tolerance).
    pub fn all_facts_hold(&self) -> bool {
        self.samples.iter().all(|(_, s)| {
            s.max_degree <= 5
                && (s.min_adjacent_angle.is_infinite() || s.min_adjacent_angle >= PI / 3.0 - 1e-6)
                && s.max_chord_ratio <= 1.0 + 1e-6
                && s.non_empty_triangles == 0
                && (s.degree5_vertices == 0
                    || (s.degree5_min_consecutive >= PI / 3.0 - 1e-6
                        && s.degree5_max_consecutive <= 2.0 * PI / 3.0 + 1e-6))
        })
    }
}

impl fmt::Display for MstFactsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXP-F2 — MST Facts 1 & 2 (angles in radians)")?;
        let mut table = TextTable::new(vec![
            "workload",
            "n",
            "max degree",
            "min adj angle",
            "max chord ratio",
            "non-empty triangles",
            "deg5 vertices",
            "deg5 angle range",
            "facts hold",
        ]);
        for (label, s) in &self.samples {
            let angle_range = if s.degree5_vertices == 0 {
                "-".to_string()
            } else {
                format!(
                    "[{:.3}, {:.3}]",
                    s.degree5_min_consecutive, s.degree5_max_consecutive
                )
            };
            let holds =
                s.max_degree <= 5 && s.max_chord_ratio <= 1.0 + 1e-6 && s.non_empty_triangles == 0;
            table.add_row(vec![
                label.clone(),
                s.n.to_string(),
                s.max_degree.to_string(),
                if s.min_adjacent_angle.is_finite() {
                    format!("{:.4}", s.min_adjacent_angle)
                } else {
                    "-".to_string()
                },
                format!("{:.4}", s.max_chord_ratio),
                s.non_empty_triangles.to_string(),
                s.degree5_vertices.to_string(),
                angle_range,
                fmt_check(holds),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Measures Facts 1 and 2 on the MST of `points`.
pub fn measure(points: &[Point]) -> MstFactsSample {
    let mst = EuclideanMst::build(points).expect("non-empty point set");
    let lmax = mst.lmax().max(f64::MIN_POSITIVE);
    let mut min_adjacent_angle = f64::INFINITY;
    let mut max_chord_ratio: f64 = 0.0;
    let mut non_empty_triangles = 0usize;
    let mut degree5_min = f64::INFINITY;
    let mut degree5_max: f64 = 0.0;
    let mut degree5_vertices = 0usize;

    for v in 0..mst.len() {
        let neighbor_ids: Vec<usize> = mst.neighbors(v).iter().map(|&(u, _)| u).collect();
        if neighbor_ids.len() < 2 {
            continue;
        }
        let apex = points[v];
        let neighbor_pts: Vec<Point> = neighbor_ids.iter().map(|&u| points[u]).collect();
        let sorted = sort_ccw(&apex, &neighbor_pts);
        let gaps = circular_gaps(&sorted);
        let d = sorted.len();
        for i in 0..d {
            // Skip the wrap-around gap when it is not a genuine adjacent pair
            // (for d == 2 both gaps are genuine).
            let angle = gaps[i];
            let a_pt = neighbor_pts[sorted[i].index];
            let b_pt = neighbor_pts[sorted[(i + 1) % d].index];
            if d > 2 || i == 0 {
                min_adjacent_angle = min_adjacent_angle.min(angle);
            }
            // Fact 1(2): chord length vs 2·sin(angle/2)·lmax — only meaningful
            // for the actual adjacent pairs (consecutive in ccw order).
            if angle <= PI + 1e-9 {
                let chord = a_pt.distance(&b_pt);
                let bound = 2.0 * (angle / 2.0).sin() * lmax;
                if bound > 1e-12 {
                    max_chord_ratio = max_chord_ratio.max(chord / bound);
                }
            }
            // Fact 1(3): the triangle (a, v, b) is empty of other sensors.
            let triangle = Triangle::new(a_pt, apex, b_pt);
            let occupied = points.iter().enumerate().any(|(idx, p)| {
                idx != v
                    && idx != neighbor_ids[sorted[i].index]
                    && idx != neighbor_ids[sorted[(i + 1) % d].index]
                    && triangle.contains(p, true)
            });
            if occupied {
                non_empty_triangles += 1;
            }
        }
        if mst.degree(v) == 5 {
            degree5_vertices += 1;
            for &g in &gaps {
                degree5_min = degree5_min.min(g);
                degree5_max = degree5_max.max(g);
            }
        }
    }

    MstFactsSample {
        n: points.len(),
        max_degree: mst.max_degree(),
        min_adjacent_angle,
        max_chord_ratio,
        non_empty_triangles,
        degree5_min_consecutive: degree5_min,
        degree5_max_consecutive: degree5_max,
        degree5_vertices,
    }
}

/// Configuration of the MST-facts experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MstFactsConfig {
    /// Workloads to measure.
    pub workloads: Vec<PointSetGenerator>,
    /// Seeds per workload.
    pub seeds_per_workload: u64,
    /// Worker threads.
    pub threads: usize,
}

impl MstFactsConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        let mut workloads = standard_workloads();
        workloads.push(PointSetGenerator::UniformSquare {
            n: 1000,
            side: 40.0,
        });
        MstFactsConfig {
            workloads,
            seeds_per_workload: 10,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        MstFactsConfig {
            workloads: vec![
                PointSetGenerator::UniformSquare { n: 60, side: 10.0 },
                PointSetGenerator::StarArms {
                    arms: 5,
                    arm_length: 3,
                },
            ],
            seeds_per_workload: 2,
            threads: default_threads(),
        }
    }
}

/// Runs the MST-facts experiment.
pub fn run(config: &MstFactsConfig) -> MstFactsReport {
    let mut jobs: Vec<(PointSetGenerator, u64)> = Vec::new();
    for workload in &config.workloads {
        for seed in 0..config.seeds_per_workload {
            jobs.push((workload.clone(), seed));
        }
    }
    let samples = parallel_map(&jobs, config.threads, |(workload, seed)| {
        let points = workload.generate(*seed);
        (format!("{} #{seed}", workload.label()), measure(&points))
    });
    MstFactsReport { samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_hold_on_quick_workloads() {
        let report = run(&MstFactsConfig::quick());
        assert!(!report.samples.is_empty());
        assert!(report.all_facts_hold(), "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("max chord ratio"));
    }

    #[test]
    fn star_configuration_has_a_degree_five_vertex() {
        let points = PointSetGenerator::StarArms {
            arms: 5,
            arm_length: 2,
        }
        .generate(0);
        let sample = measure(&points);
        assert_eq!(sample.degree5_vertices, 1);
        assert!(sample.degree5_min_consecutive >= PI / 3.0 - 1e-9);
        assert!(sample.degree5_max_consecutive <= 2.0 * PI / 3.0 + 1e-9);
        assert_eq!(sample.max_degree, 5);
    }

    #[test]
    fn path_instance_has_wide_angles_only() {
        let points = PointSetGenerator::Path { n: 10 }.generate(0);
        let sample = measure(&points);
        assert_eq!(sample.max_degree, 2);
        // Interior vertices see their two neighbours at exactly π.
        assert!((sample.min_adjacent_angle - PI).abs() < 1e-9);
        assert_eq!(sample.non_empty_triangles, 0);
    }
}
