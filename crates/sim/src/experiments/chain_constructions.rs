//! EXP-F5 / EXP-F6: the zero-spread chain constructions of Theorems 5 and 6
//! (Figures 5 and 6).
//!
//! Figures 5 and 6 depict how a vertex connects its children with at most
//! two (respectively three) outgoing beams plus directed sibling edges whose
//! angles stay below `2π/3` (respectively `π/2`).  This driver measures, for
//! `k ∈ {2, 3, 4, 5}`, the quantities those figures are about: the maximum
//! number of beams a vertex aims at children (the "out-degree of the root"
//! in the induction), the largest chained sibling gap, the largest sibling
//! distance, and the worst overall radius, each against its bound.

use crate::experiments::common::{fmt_bound, fmt_check, TextTable};
use crate::generators::{standard_workloads, PointSetGenerator};
use crate::sweep::{default_threads, parallel_map};
use antennae_core::algorithms::chains::{self, ChainStats};
use antennae_core::instance::Instance;
use antennae_core::verify::verify;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated results for one `k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainRow {
    /// Number of zero-spread beams per sensor.
    pub k: usize,
    /// Largest number of child-beams used at any vertex (Theorems 5/6 bound
    /// this by `k − 1`).
    pub max_chains: usize,
    /// Largest chained sibling gap observed (radians).
    pub max_gap: f64,
    /// The gap bound implied by the construction (`2π/3` for `k = 3`, `π/2`
    /// for `k = 4`, none for `k = 2`, unused for `k = 5`).
    pub gap_bound: Option<f64>,
    /// Worst measured radius over lmax.
    pub worst_radius: f64,
    /// The Table 1 radius bound for this `k` at spread 0.
    pub radius_bound: f64,
    /// Whether every instance verified strongly connected.
    pub all_connected: bool,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Report of the chain-construction experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainReport {
    /// One row per `k`.
    pub rows: Vec<ChainRow>,
}

impl ChainReport {
    /// Whether every row stayed within its radius bound and chain bound.
    pub fn all_within_bounds(&self) -> bool {
        self.rows.iter().all(|r| {
            r.all_connected
                && r.worst_radius <= r.radius_bound + 1e-6
                && r.max_chains < r.k
                && r.gap_bound.is_none_or(|b| r.max_gap <= b + 1e-6)
        })
    }
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-F5/F6 — zero-spread chain constructions (Theorems 5 & 6, Figures 5 & 6)"
        )?;
        let mut table = TextTable::new(vec![
            "k",
            "max child-beams (≤ k−1)",
            "max chained gap",
            "gap bound",
            "worst radius",
            "radius bound",
            "connected",
            "instances",
        ]);
        for r in &self.rows {
            table.add_row(vec![
                r.k.to_string(),
                r.max_chains.to_string(),
                format!("{:.4}", r.max_gap),
                fmt_bound(r.gap_bound),
                format!("{:.4}", r.worst_radius),
                format!("{:.4}", r.radius_bound),
                fmt_check(r.all_connected),
                r.instances.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Configuration of the chain experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Values of `k` to evaluate.
    pub ks: Vec<usize>,
    /// Workloads.
    pub workloads: Vec<PointSetGenerator>,
    /// Seeds per workload.
    pub seeds_per_workload: u64,
    /// Worker threads.
    pub threads: usize,
}

impl ChainConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        let mut workloads = standard_workloads();
        workloads.push(PointSetGenerator::StarArms {
            arms: 5,
            arm_length: 4,
        });
        ChainConfig {
            ks: vec![2, 3, 4, 5],
            workloads,
            seeds_per_workload: 10,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        ChainConfig {
            ks: vec![2, 3, 4, 5],
            workloads: vec![
                PointSetGenerator::UniformSquare { n: 60, side: 10.0 },
                PointSetGenerator::StarArms {
                    arms: 5,
                    arm_length: 3,
                },
            ],
            seeds_per_workload: 2,
            threads: default_threads(),
        }
    }
}

/// The chained-gap bound of the construction for a given `k`.
pub fn gap_bound(k: usize) -> Option<f64> {
    match k {
        3 => Some(2.0 * PI / 3.0),
        4 => Some(PI / 2.0),
        _ => None,
    }
}

/// Runs the chain-construction experiment.
pub fn run(config: &ChainConfig) -> ChainReport {
    let mut rows = Vec::new();
    for &k in &config.ks {
        let mut jobs: Vec<(PointSetGenerator, u64)> = Vec::new();
        for workload in &config.workloads {
            for seed in 0..config.seeds_per_workload {
                jobs.push((workload.clone(), seed));
            }
        }
        let results: Vec<(ChainStats, f64, bool)> =
            parallel_map(&jobs, config.threads, |(workload, seed)| {
                let points = workload.generate(*seed);
                let instance = Instance::new(points).expect("non-empty workload");
                let outcome =
                    chains::orient_chains_with_stats(&instance, k).expect("k is in 2..=5");
                let report = verify(&instance, &outcome.scheme);
                (
                    outcome.stats,
                    report.max_radius_over_lmax,
                    report.is_strongly_connected,
                )
            });
        let mut row = ChainRow {
            k,
            max_chains: 0,
            max_gap: 0.0,
            gap_bound: gap_bound(k),
            worst_radius: 0.0,
            radius_bound: chains::guaranteed_radius(k).expect("k is in 2..=5"),
            all_connected: true,
            instances: results.len(),
        };
        for (stats, radius, connected) in &results {
            row.max_chains = row.max_chains.max(stats.max_chains_per_vertex);
            row.max_gap = row.max_gap.max(stats.max_chained_gap);
            row.worst_radius = row.worst_radius.max(*radius);
            row.all_connected &= connected;
        }
        rows.push(row);
    }
    ChainReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_respects_all_bounds() {
        let report = run(&ChainConfig::quick());
        assert_eq!(report.rows.len(), 4);
        assert!(report.all_within_bounds(), "{report}");
        // Radii are ordered: more beams never increase the worst radius on
        // identical workloads.
        let radii: Vec<f64> = report.rows.iter().map(|r| r.worst_radius).collect();
        assert!(radii.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        let rendered = report.to_string();
        assert!(rendered.contains("Theorems 5 & 6"));
    }

    #[test]
    fn gap_bounds_match_the_theorems() {
        assert_eq!(gap_bound(2), None);
        assert!((gap_bound(3).unwrap() - 2.0 * PI / 3.0).abs() < 1e-12);
        assert!((gap_bound(4).unwrap() - PI / 2.0).abs() < 1e-12);
        assert_eq!(gap_bound(5), None);
    }
}
