//! Experiment drivers: one per table / figure of the paper.
//!
//! | driver | paper artifact | what it regenerates |
//! |---|---|---|
//! | [`table1`] | Table 1 | per-row worst measured radius vs. the paper's bound, over the standard workloads |
//! | [`lemma1_polygon`] | Figure 1 / Lemma 1 | necessity & sufficiency of `2π(d−k)/d` on the regular `d`-gon |
//! | [`mst_facts`] | Figure 2 / Facts 1–2 | empirical MST angle and degree statistics |
//! | [`theorem3_cases`] | Figures 3–4 | case histogram of the Theorem 3 construction |
//! | [`chain_constructions`] | Figures 5–6 | out-degree / gap / radius statistics of Theorems 5–6 |
//! | [`tradeoff`] | §1.1 / §5 trade-offs | radius as a function of the angular budget and of `k` |
//! | [`energy_compare`] | §1 motivation | energy & interference of each scheme vs. an omnidirectional deployment |
//! | [`c_connectivity`] | §5 open problem | fault tolerance (strong c-connectivity) of the produced orientations |
//! | [`churn`] | §1 ad-hoc-network motivation | incremental re-orientation latency & radius drift under arrival/failure/mobility churn |
//! | [`shard_churn`] | §1 ad-hoc-network motivation | sharded vs. global dynamic engines on identical churn traces: per-edit latency plus bit-identity |
//!
//! Every driver has a `*Config` with `quick()` (seconds, used in tests) and
//! `full()` (the defaults of the report binaries) constructors, produces a
//! typed report, and renders it as a plain-text table via `Display`.

pub mod c_connectivity;
pub mod chain_constructions;
pub mod churn;
pub mod common;
pub mod energy_compare;
pub mod lemma1_polygon;
pub mod mst_facts;
pub mod shard_churn;
pub mod table1;
pub mod theorem3_cases;
pub mod tradeoff;

pub use common::TextTable;
