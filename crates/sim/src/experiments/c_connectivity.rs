//! EXP-CC: strong c-connectivity of the produced orientations (the paper's
//! open problem, §5).
//!
//! The conclusion of the paper asks whether the constructions can be extended
//! to guarantee strong *c*-connectivity (survival of any `c − 1` node
//! failures).  The constructions themselves only target `c = 1`; this
//! experiment measures how far they already are from `c = 2`: for each
//! `(k, φ)` regime it reports the fraction of instances whose induced
//! digraph tolerates any single node failure, and the average number of
//! "critical" sensors (cut vertices of the communication graph).

use crate::experiments::common::TextTable;
use crate::generators::PointSetGenerator;
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::VerificationEngine;
use antennae_geometry::PI;
use antennae_graph::traversal::{TraversalScratch, VertexMask};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated fault-tolerance results for one `(k, φ)` regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CConnectivityRow {
    /// Antennae per sensor.
    pub k: usize,
    /// Spread budget (radians).
    pub phi: f64,
    /// Fraction of instances that were strongly connected (should be 1.0).
    pub strongly_connected: f64,
    /// Fraction of instances that tolerate any single node failure
    /// (strongly 2-connected).
    pub survives_single_failure: f64,
    /// Mean fraction of sensors that are critical (their individual removal
    /// disconnects the remaining network).
    pub mean_critical_fraction: f64,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Report of the c-connectivity experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CConnectivityReport {
    /// One row per regime.
    pub rows: Vec<CConnectivityRow>,
}

impl fmt::Display for CConnectivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-CC — strong c-connectivity of the produced orientations (paper §5 open problem)"
        )?;
        let mut table = TextTable::new(vec![
            "k",
            "φ (rad)",
            "strongly connected",
            "survives 1 failure",
            "mean critical sensors",
            "instances",
        ]);
        for r in &self.rows {
            table.add_row(vec![
                r.k.to_string(),
                format!("{:.3}", r.phi),
                format!("{:.0}%", r.strongly_connected * 100.0),
                format!("{:.0}%", r.survives_single_failure * 100.0),
                format!("{:.1}%", r.mean_critical_fraction * 100.0),
                r.instances.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Configuration of the c-connectivity experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CConnectivityConfig {
    /// Regimes `(k, φ)` to evaluate.
    pub regimes: Vec<(usize, f64)>,
    /// Workload generator.
    pub workload: PointSetGenerator,
    /// Seeds (instances) per regime.
    pub seeds: u64,
    /// Worker threads.
    pub threads: usize,
}

impl CConnectivityConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        CConnectivityConfig {
            regimes: vec![(1, 8.0 * PI / 5.0), (2, PI), (3, 0.0), (4, 0.0), (5, 0.0)],
            workload: PointSetGenerator::UniformSquare { n: 60, side: 10.0 },
            seeds: 15,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        CConnectivityConfig {
            regimes: vec![(2, PI), (5, 0.0)],
            workload: PointSetGenerator::UniformSquare { n: 30, side: 8.0 },
            seeds: 3,
            threads: default_threads(),
        }
    }
}

/// Runs the c-connectivity experiment.
pub fn run(config: &CConnectivityConfig) -> CConnectivityReport {
    let rows = config
        .regimes
        .iter()
        .map(|&(k, phi)| {
            let jobs: Vec<u64> = (0..config.seeds).collect();
            let results = parallel_map(&jobs, config.threads, |seed| {
                let points = config.workload.generate(*seed);
                let instance = Instance::new(points.clone()).expect("non-empty workload");
                let scheme = Solver::on(&instance)
                    .with_budget(AntennaBudget::new(k, phi))
                    .run()
                    .expect("valid budget")
                    .scheme;
                // One CSR build per deployment (sub-quadratic engine), then
                // n masked strong-connectivity probes through one reused
                // scratch — no per-candidate subgraph clone.
                // threads = 1: this closure already runs inside the seed
                // fan-out above, and the outer level saturates the pool (the
                // same no-nested-oversubscription split the batch pipeline
                // and table1 use).
                let digraph = VerificationEngine::new()
                    .with_threads(1)
                    .induced_digraph(&points, &scheme);
                let n = digraph.len();
                let mut scratch = TraversalScratch::new();
                let connected = n <= 1 || scratch.is_strongly_connected(&digraph, None);
                // Critical sensors: vertices whose individual removal
                // disconnects the rest — probed for every deployment
                // (connected or not, matching the pre-mask statistics) with
                // the one scratch and mask.  A deployment survives any
                // single failure iff it is connected and has none.
                let mut mask = VertexMask::new(n);
                let mut critical = 0usize;
                for v in 0..n {
                    mask.remove(v);
                    if !scratch.is_strongly_connected(&digraph, Some(&mask)) {
                        critical += 1;
                    }
                    mask.restore(v);
                }
                let survives = connected && critical == 0;
                (
                    connected,
                    survives,
                    critical as f64 / digraph.len().max(1) as f64,
                )
            });
            let count = results.len().max(1) as f64;
            CConnectivityRow {
                k,
                phi,
                strongly_connected: results.iter().filter(|(c, _, _)| *c).count() as f64 / count,
                survives_single_failure: results.iter().filter(|(_, s, _)| *s).count() as f64
                    / count,
                mean_critical_fraction: results.iter().map(|(_, _, f)| f).sum::<f64>() / count,
                instances: results.len(),
            }
        })
        .collect();
    CConnectivityReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_connectivity_and_criticality() {
        let report = run(&CConnectivityConfig::quick());
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            // Every produced orientation is strongly connected...
            assert!((row.strongly_connected - 1.0).abs() < 1e-9);
            // ...but tree-based constructions have critical sensors, so the
            // critical fraction is a sensible probability.
            assert!(row.mean_critical_fraction >= 0.0 && row.mean_critical_fraction <= 1.0);
            assert!(row.survives_single_failure >= 0.0 && row.survives_single_failure <= 1.0);
        }
        let rendered = report.to_string();
        assert!(rendered.contains("survives 1 failure"));
    }

    #[test]
    fn tree_based_schemes_have_critical_vertices_on_a_path() {
        // On a path instance every interior sensor is critical regardless of
        // k, so single-failure survival must be 0.
        let config = CConnectivityConfig {
            regimes: vec![(3, 0.0)],
            workload: PointSetGenerator::Path { n: 12 },
            seeds: 1,
            threads: 1,
        };
        let report = run(&config);
        assert_eq!(report.rows[0].survives_single_failure, 0.0);
        assert!(report.rows[0].mean_critical_fraction > 0.5);
    }
}
