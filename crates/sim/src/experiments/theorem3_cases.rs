//! EXP-F3 / EXP-F4: case histogram of the Theorem 3 construction
//! (Figures 3 and 4).
//!
//! Figures 3 and 4 of the paper illustrate the local configurations the
//! two-antenna construction uses, by vertex degree, for `φ₂ = π` (Figure 3)
//! and `2π/3 ≤ φ₂ < π` (Figure 4).  This driver runs the construction over
//! the standard workloads and tallies, per vertex degree, how the vertices
//! were actually configured: how many children the vertex covered itself,
//! how many were delegated to a sibling, and whether the spread budget was
//! split across two wide antennae — together with the worst radius measured
//! for that spread regime.

use crate::experiments::common::{fmt_bound, TextTable};
use crate::generators::{standard_workloads, PointSetGenerator};
use crate::sweep::{default_threads, parallel_map};
use antennae_core::algorithms::theorem3::{self, CaseLabel};
use antennae_core::instance::Instance;
use antennae_core::verify::verify;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregated case counts for one spread regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseHistogram {
    /// The spread budget `φ₂` (radians).
    pub phi: f64,
    /// Counts per configuration label.
    pub counts: BTreeMap<CaseLabel, usize>,
    /// Worst measured radius over lmax for this regime.
    pub worst_radius: f64,
    /// The Theorem 3 bound for this regime.
    pub bound: Option<f64>,
    /// Whether every instance verified strongly connected.
    pub all_connected: bool,
    /// Number of instances evaluated.
    pub instances: usize,
}

impl CaseHistogram {
    /// Total number of configured vertices.
    pub fn total_vertices(&self) -> usize {
        self.counts.values().sum()
    }

    /// Counts aggregated by vertex degree (the figures are organized per
    /// degree).
    pub fn by_degree(&self) -> BTreeMap<usize, usize> {
        let mut out = BTreeMap::new();
        for (label, count) in &self.counts {
            *out.entry(label.degree).or_insert(0) += count;
        }
        out
    }
}

/// Report of the Theorem 3 case experiment (one histogram per regime).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theorem3CasesReport {
    /// One histogram per spread budget evaluated.
    pub histograms: Vec<CaseHistogram>,
}

impl fmt::Display for Theorem3CasesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-F3/F4 — Theorem 3 local-configuration histogram (Figures 3 & 4)"
        )?;
        for h in &self.histograms {
            writeln!(
                f,
                "\nφ₂ = {:.4} rad — worst radius {:.4} (bound {}), {} vertices over {} instances, all connected: {}",
                h.phi,
                h.worst_radius,
                fmt_bound(h.bound),
                h.total_vertices(),
                h.instances,
                h.all_connected
            )?;
            let mut table = TextTable::new(vec![
                "degree",
                "children covered by vertex",
                "children covered by sibling",
                "two wide antennas",
                "count",
            ]);
            for (label, count) in &h.counts {
                table.add_row(vec![
                    label.degree.to_string(),
                    label.children_covered_by_vertex.to_string(),
                    label.children_covered_by_sibling.to_string(),
                    if label.two_wide_antennas { "yes" } else { "no" }.to_string(),
                    count.to_string(),
                ]);
            }
            write!(f, "{table}")?;
        }
        Ok(())
    }
}

/// Configuration of the Theorem 3 case experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Theorem3CasesConfig {
    /// Spread budgets to evaluate (defaults: π for Figure 3, 3π/4 for
    /// Figure 4).
    pub phis: Vec<f64>,
    /// Workloads.
    pub workloads: Vec<PointSetGenerator>,
    /// Seeds per workload.
    pub seeds_per_workload: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Theorem3CasesConfig {
    /// Full configuration used by the report binary.
    ///
    /// The star workload is included on top of the standard mix because
    /// uniform deployments rarely contain degree-5 MST vertices, and the
    /// degree-5 cases are exactly what Figures 3(d–e) and 4(c–f) are about.
    pub fn full() -> Self {
        let mut workloads = standard_workloads();
        workloads.push(PointSetGenerator::StarArms {
            arms: 5,
            arm_length: 4,
        });
        Theorem3CasesConfig {
            phis: vec![PI, 0.75 * PI, 2.0 * PI / 3.0],
            workloads,
            seeds_per_workload: 10,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        Theorem3CasesConfig {
            phis: vec![PI, 0.75 * PI],
            workloads: vec![
                PointSetGenerator::UniformSquare { n: 50, side: 10.0 },
                PointSetGenerator::StarArms {
                    arms: 5,
                    arm_length: 3,
                },
            ],
            seeds_per_workload: 2,
            threads: default_threads(),
        }
    }
}

/// Runs the Theorem 3 case experiment.
pub fn run(config: &Theorem3CasesConfig) -> Theorem3CasesReport {
    let mut histograms = Vec::new();
    for &phi in &config.phis {
        let mut jobs: Vec<(PointSetGenerator, u64)> = Vec::new();
        for workload in &config.workloads {
            for seed in 0..config.seeds_per_workload {
                jobs.push((workload.clone(), seed));
            }
        }
        let results = parallel_map(&jobs, config.threads, |(workload, seed)| {
            let points = workload.generate(*seed);
            let instance = Instance::new(points).expect("non-empty workload");
            let outcome = theorem3::orient_two_antennae(&instance, phi)
                .expect("phi is above the Theorem 3 threshold");
            let report = verify(&instance, &outcome.scheme);
            (
                outcome.case_counts,
                report.max_radius_over_lmax,
                report.is_strongly_connected,
            )
        });
        let mut counts: BTreeMap<CaseLabel, usize> = BTreeMap::new();
        let mut worst_radius: f64 = 0.0;
        let mut all_connected = true;
        for (case_counts, radius, connected) in &results {
            for (label, count) in case_counts {
                *counts.entry(*label).or_insert(0) += count;
            }
            worst_radius = worst_radius.max(*radius);
            all_connected &= connected;
        }
        histograms.push(CaseHistogram {
            phi,
            counts,
            worst_radius,
            bound: theorem3::guaranteed_radius(phi),
            all_connected,
            instances: results.len(),
        });
    }
    Theorem3CasesReport { histograms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_histograms_within_bounds() {
        let report = run(&Theorem3CasesConfig::quick());
        assert_eq!(report.histograms.len(), 2);
        for h in &report.histograms {
            assert!(h.all_connected);
            assert!(h.total_vertices() > 0);
            assert!(h.worst_radius <= h.bound.unwrap() + 1e-6);
            // Degrees seen are between 1 and 5.
            for degree in h.by_degree().keys() {
                assert!((1..=5).contains(degree));
            }
        }
        let rendered = report.to_string();
        assert!(rendered.contains("Theorem 3"));
        assert!(rendered.contains("degree"));
    }

    #[test]
    fn smaller_budget_never_yields_smaller_worst_radius() {
        let report = run(&Theorem3CasesConfig::quick());
        // histograms[0] is φ = π, histograms[1] is φ = 3π/4 on the same
        // workloads; the tighter budget cannot do better in the worst case.
        let at_pi = report.histograms[0].worst_radius;
        let at_three_quarters = report.histograms[1].worst_radius;
        assert!(at_pi <= at_three_quarters + 1e-9);
    }
}
