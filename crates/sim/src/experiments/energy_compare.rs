//! EXP-EN: energy and interference of the paper's orientations versus an
//! omnidirectional deployment.
//!
//! The introduction of the paper motivates directional antennae with energy
//! and capacity arguments (citing \[9\], \[11\], \[19\]) but never quantifies them.
//! This driver closes that loop with the simulation substrate: for each
//! `(k, φ_k)` regime of Table 1 it reports the total and maximum per-sensor
//! energy of the produced orientation, the energy of an omnidirectional
//! deployment that uses the radius the scheme actually needed, and the mean
//! number of unintended receivers per antenna (the interference proxy
//! of \[19\]).

use crate::energy::EnergyModel;
use crate::experiments::common::TextTable;
use crate::generators::PointSetGenerator;
use crate::interference::{interference_stats, omnidirectional_interference};
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated energy results for one `(k, φ)` regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Antennae per sensor.
    pub k: usize,
    /// Spread budget (radians).
    pub phi: f64,
    /// Mean (over instances) of the total directional network energy.
    pub directional_total: f64,
    /// Mean of the maximum per-sensor directional energy.
    pub directional_max_sensor: f64,
    /// Mean total energy of the omnidirectional deployment at the radius the
    /// directional scheme needed.
    pub omni_total: f64,
    /// Mean unintended receivers per directional antenna.
    pub directional_interference: f64,
    /// Mean receivers per omnidirectional antenna.
    pub omni_interference: f64,
    /// Mean measured radius / lmax of the directional scheme.
    pub radius_over_lmax: f64,
}

impl EnergyRow {
    /// Ratio of omnidirectional to directional total energy (> 1 means the
    /// directional scheme saves energy).
    pub fn energy_gain(&self) -> f64 {
        if self.directional_total <= f64::EPSILON {
            0.0
        } else {
            self.omni_total / self.directional_total
        }
    }
}

/// Report of the energy experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// One row per `(k, φ)` regime.
    pub rows: Vec<EnergyRow>,
    /// Path-loss exponent used.
    pub path_loss_exponent: f64,
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-EN — energy & interference vs. omnidirectional (α = {})",
            self.path_loss_exponent
        )?;
        let mut table = TextTable::new(vec![
            "k",
            "φ (rad)",
            "radius/lmax",
            "directional total",
            "omni total",
            "gain",
            "max sensor",
            "dir. interference",
            "omni interference",
        ]);
        for r in &self.rows {
            table.add_row(vec![
                r.k.to_string(),
                format!("{:.3}", r.phi),
                format!("{:.3}", r.radius_over_lmax),
                format!("{:.3}", r.directional_total),
                format!("{:.3}", r.omni_total),
                format!("{:.2}x", r.energy_gain()),
                format!("{:.3}", r.directional_max_sensor),
                format!("{:.2}", r.directional_interference),
                format!("{:.2}", r.omni_interference),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Configuration of the energy experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// The `(k, φ)` regimes to evaluate.
    pub regimes: Vec<(usize, f64)>,
    /// Workload evaluated for each regime.
    pub workload: PointSetGenerator,
    /// Seeds per regime.
    pub seeds: u64,
    /// Path-loss exponent.
    pub path_loss_exponent: f64,
    /// Worker threads.
    pub threads: usize,
}

impl EnergyConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        EnergyConfig {
            regimes: vec![
                (1, 8.0 * PI / 5.0),
                (2, PI),
                (2, 6.0 * PI / 5.0),
                (3, 0.0),
                (4, 0.0),
                (5, 0.0),
            ],
            workload: PointSetGenerator::UniformSquare { n: 150, side: 15.0 },
            seeds: 10,
            path_loss_exponent: 2.0,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        EnergyConfig {
            regimes: vec![(2, PI), (3, 0.0), (5, 0.0)],
            workload: PointSetGenerator::UniformSquare { n: 50, side: 10.0 },
            seeds: 2,
            path_loss_exponent: 2.0,
            threads: default_threads(),
        }
    }
}

/// Runs the energy experiment.
pub fn run(config: &EnergyConfig) -> EnergyReport {
    let model = EnergyModel::with_exponent(config.path_loss_exponent);
    let rows = config
        .regimes
        .iter()
        .map(|&(k, phi)| {
            let jobs: Vec<u64> = (0..config.seeds).collect();
            let results = parallel_map(&jobs, config.threads, |seed| {
                let points = config.workload.generate(*seed);
                let instance = Instance::new(points.clone()).expect("non-empty workload");
                let budget = AntennaBudget::new(k, phi);
                let outcome = Solver::on(&instance)
                    .with_budget(budget)
                    .run()
                    .expect("valid budget");
                let scheme = outcome.scheme;
                let radius = scheme.max_radius();
                let lmax = instance.lmax().max(f64::MIN_POSITIVE);
                let directional_total = model.total_power(&scheme);
                let directional_max = model.max_sensor_power(&scheme);
                let omni_total = model.omnidirectional_total(points.len(), radius);
                let dir_intf = interference_stats(&points, &scheme).mean_covered_per_antenna;
                let omni_intf =
                    omnidirectional_interference(&points, radius).mean_covered_per_antenna;
                (
                    directional_total,
                    directional_max,
                    omni_total,
                    dir_intf,
                    omni_intf,
                    radius / lmax,
                )
            });
            let count = results.len().max(1) as f64;
            let mut row = EnergyRow {
                k,
                phi,
                directional_total: 0.0,
                directional_max_sensor: 0.0,
                omni_total: 0.0,
                directional_interference: 0.0,
                omni_interference: 0.0,
                radius_over_lmax: 0.0,
            };
            for (total, max_sensor, omni, dir_intf, omni_intf, radius) in results {
                row.directional_total += total / count;
                row.directional_max_sensor += max_sensor / count;
                row.omni_total += omni / count;
                row.directional_interference += dir_intf / count;
                row.omni_interference += omni_intf / count;
                row.radius_over_lmax += radius / count;
            }
            row
        })
        .collect();
    EnergyReport {
        rows,
        path_loss_exponent: config.path_loss_exponent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directional_schemes_save_energy_and_interference() {
        let report = run(&EnergyConfig::quick());
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.directional_total > 0.0);
            assert!(row.omni_total > 0.0);
            assert!(
                row.energy_gain() > 1.0,
                "k={} phi={}: expected a directional energy gain, got {}",
                row.k,
                row.phi,
                row.energy_gain()
            );
            assert!(row.directional_interference <= row.omni_interference + 1e-9);
            assert!(row.radius_over_lmax >= 1.0 - 1e-9);
        }
        let rendered = report.to_string();
        assert!(rendered.contains("omni total"));
    }
}
