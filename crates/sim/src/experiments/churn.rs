//! EXP-CHURN: dynamic deployments under arrival / failure / mobility churn.
//!
//! Every other experiment freezes a deployment before orienting it; this one
//! drives the ROADMAP's ad-hoc-network motivation end to end.  Each cell of
//! the sweep (workload × churn mix × budget × seed) opens a
//! [`DynamicSolverSession`], replays a deterministic
//! [`churn_trace`], and records per edit:
//!
//! * the **dynamic latency** — time to update the MST, re-orient
//!   (incrementally in the Theorem 2 regime) and re-verify after the edit,
//! * at checkpoints, the **static baseline latency** — a from-scratch
//!   `Instance::new` + solve + verify over the same live point set,
//! * the **radius drift** — |dynamic − baseline| measured radius at the
//!   checkpoints (zero whenever both sides select the same construction),
//!   plus the worst measured radius seen across the run,
//! * whether every verdict along the trace was valid.
//!
//! The quick configuration runs in test time; the full one sweeps the edit
//! rates × generators × k × φ grid the issue calls for.

use crate::events::{churn_trace, ChurnEvent, ChurnMix, ChurnOp};
use crate::experiments::common::{fmt_check, TextTable};
use crate::generators::PointSetGenerator;
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae_core::instance::Instance;
use antennae_core::solver::Solver;
use antennae_core::verify::verify_with_budget;
use antennae_geometry::{Point, PI};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Configuration of the churn experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Initial deployments.
    pub workloads: Vec<PointSetGenerator>,
    /// Churn mixes to sweep (the edit-rate axis).
    pub mixes: Vec<ChurnMix>,
    /// `(k, φ)` budgets to sweep.
    pub budgets: Vec<(usize, f64)>,
    /// Events replayed per run.
    pub events: usize,
    /// Seeds per (workload, mix, budget) cell.
    pub seeds_per_cell: u64,
    /// Every how many events the static re-solve baseline is sampled.
    pub baseline_every: usize,
    /// Side of the arrival region and scale of mobility steps.
    pub region_side: f64,
    /// Worker threads (cells are independent).
    pub threads: usize,
}

impl ChurnConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        ChurnConfig {
            workloads: vec![
                PointSetGenerator::UniformSquare { n: 250, side: 20.0 },
                PointSetGenerator::Clustered {
                    n: 200,
                    clusters: 5,
                    side: 30.0,
                    spread: 1.5,
                },
                PointSetGenerator::PerturbedGrid {
                    cols: 15,
                    rows: 15,
                    jitter: 0.3,
                },
            ],
            mixes: vec![
                ChurnMix::balanced(3.0),
                ChurnMix {
                    arrival: 4.0,
                    failure: 1.0,
                    mobility: 1.0,
                },
                ChurnMix {
                    arrival: 0.5,
                    failure: 0.5,
                    mobility: 5.0,
                },
            ],
            budgets: vec![
                (2, theorem2_spread_threshold(2)),
                (3, theorem2_spread_threshold(3)),
                (2, PI),
                (3, 0.0),
            ],
            events: 300,
            seeds_per_cell: 3,
            baseline_every: 25,
            region_side: 20.0,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        ChurnConfig {
            workloads: vec![PointSetGenerator::UniformSquare { n: 40, side: 10.0 }],
            mixes: vec![ChurnMix::balanced(3.0)],
            budgets: vec![(2, theorem2_spread_threshold(2)), (2, PI)],
            events: 30,
            seeds_per_cell: 1,
            baseline_every: 10,
            region_side: 10.0,
            threads: default_threads(),
        }
    }
}

/// Aggregated measurements of one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnCell {
    /// Workload label.
    pub workload: String,
    /// Churn-mix label.
    pub mix: String,
    /// Antennae per sensor.
    pub k: usize,
    /// Spread budget (radians).
    pub phi: f64,
    /// Seed of the run.
    pub seed: u64,
    /// Events applied (skipped events — e.g. failures at the population
    /// floor — are not counted).
    pub events: usize,
    /// Whether the session ran the incremental Theorem 2 path.
    pub incremental: bool,
    /// Live sensors after the trace.
    pub final_n: usize,
    /// Mean dynamic per-edit latency (µs).
    pub dyn_mean_us: f64,
    /// Worst dynamic per-edit latency (µs).
    pub dyn_max_us: f64,
    /// Mean static re-solve+re-verify latency at the checkpoints (µs).
    pub baseline_mean_us: f64,
    /// `baseline_mean_us / dyn_mean_us`.
    pub speedup: f64,
    /// Mean digraph rows recomputed per edit.
    pub mean_rows_recomputed: f64,
    /// Worst measured radius over `lmax` seen along the trace.
    pub worst_radius_over_lmax: f64,
    /// Max |dynamic − baseline| measured radius at the checkpoints.
    pub max_radius_drift: f64,
    /// Whether every per-edit verdict was valid.
    pub all_valid: bool,
}

/// The churn report: one [`ChurnCell`] per (workload, mix, budget, seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// All sweep cells, in configuration order.
    pub cells: Vec<ChurnCell>,
}

impl ChurnReport {
    /// Whether every verdict across every cell was valid.
    pub fn all_valid(&self) -> bool {
        self.cells.iter().all(|c| c.all_valid)
    }

    /// The worst radius drift across all cells.
    pub fn max_radius_drift(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.max_radius_drift)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-CHURN — dynamic re-orientation under churn (latencies per edit), all valid: {}",
            self.all_valid()
        )?;
        let mut table = TextTable::new(vec![
            "workload",
            "mix",
            "k",
            "φ",
            "inc",
            "events",
            "n_end",
            "dyn µs",
            "max µs",
            "rebuild µs",
            "speedup",
            "rows/edit",
            "worst r",
            "drift",
            "valid",
        ]);
        for c in &self.cells {
            table.add_row(vec![
                c.workload.clone(),
                c.mix.clone(),
                c.k.to_string(),
                format!("{:.3}", c.phi),
                fmt_check(c.incremental),
                c.events.to_string(),
                c.final_n.to_string(),
                format!("{:.1}", c.dyn_mean_us),
                format!("{:.1}", c.dyn_max_us),
                format!("{:.1}", c.baseline_mean_us),
                format!("{:.1}x", c.speedup),
                format!("{:.1}", c.mean_rows_recomputed),
                format!("{:.4}", c.worst_radius_over_lmax),
                format!("{:.2e}", c.max_radius_drift),
                fmt_check(c.all_valid),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Translates a trace event into a session edit against the current live
/// population.  Returns `None` for events that must be skipped (failures at
/// the 2-sensor population floor).  Shared with the sharded-vs-global
/// comparison ([`crate::experiments::shard_churn`]).
pub(crate) fn resolve_edit(
    session: &DynamicSolverSession,
    event: &ChurnEvent,
    side: f64,
) -> Option<Edit> {
    match event.op {
        ChurnOp::Arrive(p) => Some(Edit::Insert(p)),
        ChurnOp::Fail { pick } => {
            let ids = session.instance().ids();
            (ids.len() > 2).then(|| Edit::Remove(ids[(pick % ids.len() as u64) as usize]))
        }
        ChurnOp::Step { pick, dx, dy } => {
            let ids = session.instance().ids();
            let id = ids[(pick % ids.len() as u64) as usize];
            let p = session.instance().point(id).expect("live id");
            Some(Edit::Move(
                id,
                Point::new((p.x + dx).clamp(0.0, side), (p.y + dy).clamp(0.0, side)),
            ))
        }
    }
}

fn run_cell(
    workload: &PointSetGenerator,
    mix: ChurnMix,
    (k, phi): (usize, f64),
    seed: u64,
    config: &ChurnConfig,
) -> ChurnCell {
    let budget = AntennaBudget::new(k, phi);
    let points = workload.generate(seed);
    let inst = DynamicInstance::new(&points).expect("non-empty workload");
    let mut session = DynamicSolverSession::new(inst, budget).expect("valid budget");
    let trace = churn_trace(
        mix,
        config.events,
        config.region_side,
        config.region_side / 20.0,
        seed.wrapping_add(0x5EED),
    );

    let mut applied = 0usize;
    let mut dyn_total_us = 0.0f64;
    let mut dyn_max_us = 0.0f64;
    let mut rows_total = 0usize;
    let mut worst_radius = session.report().max_radius_over_lmax;
    let mut all_valid = session.report().is_valid();
    let mut baseline_total_us = 0.0f64;
    let mut baseline_samples = 0usize;
    let mut max_drift = 0.0f64;

    for event in &trace {
        let Some(edit) = resolve_edit(&session, event, config.region_side) else {
            continue;
        };
        let start = Instant::now();
        let outcome = session.apply(edit).expect("edit on live id");
        let elapsed = start.elapsed().as_secs_f64() * 1e6;
        applied += 1;
        dyn_total_us += elapsed;
        dyn_max_us = dyn_max_us.max(elapsed);
        rows_total += outcome.rows_recomputed;
        worst_radius = worst_radius.max(outcome.measured_radius_over_lmax);
        all_valid &= outcome.report.is_valid();

        if applied.is_multiple_of(config.baseline_every) {
            // Static baseline on the identical live deployment: full MST
            // rebuild, full solve, from-scratch verification.
            let live: Vec<Point> = {
                let instance = session.materialized().expect("live deployment");
                instance.points().to_vec()
            };
            let start = Instant::now();
            let instance = Instance::new(live).expect("non-empty");
            let outcome_static = Solver::on(&instance)
                .with_budget(budget)
                .run()
                .expect("valid budget");
            let report = verify_with_budget(&instance, &outcome_static.scheme, Some(budget));
            baseline_total_us += start.elapsed().as_secs_f64() * 1e6;
            baseline_samples += 1;
            all_valid &= report.is_valid();
            max_drift = max_drift
                .max((outcome.measured_radius_over_lmax - report.max_radius_over_lmax).abs());
        }
    }

    let dyn_mean_us = if applied > 0 {
        dyn_total_us / applied as f64
    } else {
        0.0
    };
    let baseline_mean_us = if baseline_samples > 0 {
        baseline_total_us / baseline_samples as f64
    } else {
        0.0
    };
    ChurnCell {
        workload: workload.label(),
        mix: mix.label(),
        k,
        phi,
        seed,
        events: applied,
        incremental: session.is_incremental(),
        final_n: session.instance().len(),
        dyn_mean_us,
        dyn_max_us,
        baseline_mean_us,
        speedup: if dyn_mean_us > 0.0 {
            baseline_mean_us / dyn_mean_us
        } else {
            0.0
        },
        mean_rows_recomputed: if applied > 0 {
            rows_total as f64 / applied as f64
        } else {
            0.0
        },
        worst_radius_over_lmax: worst_radius,
        max_radius_drift: max_drift,
        all_valid,
    }
}

/// Runs the churn experiment: every (workload, mix, budget, seed) cell is an
/// independent session replay, fanned out over the worker pool.
pub fn run(config: &ChurnConfig) -> ChurnReport {
    let mut cells_spec = Vec::new();
    for workload in &config.workloads {
        for &mix in &config.mixes {
            for &budget in &config.budgets {
                for seed in 0..config.seeds_per_cell {
                    cells_spec.push((workload.clone(), mix, budget, seed));
                }
            }
        }
    }
    let cells = parallel_map(
        &cells_spec,
        config.threads,
        |(workload, mix, budget, seed)| run_cell(workload, *mix, *budget, *seed, config),
    );
    ChurnReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_churn_runs_clean() {
        let config = ChurnConfig::quick();
        let report = run(&config);
        assert_eq!(report.cells.len(), 2); // 1 workload × 1 mix × 2 budgets
        assert!(report.all_valid(), "{report}");
        for cell in &report.cells {
            assert!(cell.events > 0);
            assert!(cell.final_n >= 2);
            assert!(cell.dyn_mean_us > 0.0);
        }
        // The Theorem 2 budget takes the incremental path, (2, π) does not;
        // at the checkpoints both sides pick the same construction, so the
        // radius must not drift.
        assert!(report.cells[0].incremental);
        assert!(!report.cells[1].incremental);
        assert!(report.max_radius_drift() < 1e-9, "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("EXP-CHURN"));
        assert!(rendered.contains("speedup"));
    }
}
