//! EXP-T1: reproduction of Table 1.
//!
//! For every row of the paper's Table 1 — a `(k, φ_k)` regime together with a
//! claimed radius bound — the driver generates a mix of workloads, runs the
//! dispatched orientation algorithm, verifies strong connectivity with the
//! independent verifier, and reports the worst measured radius (in units of
//! `lmax`) next to the paper's bound.

use crate::experiments::common::{fmt_bound, fmt_check, TextTable};
use crate::generators::{standard_workloads, PointSetGenerator};
use crate::metrics::Summary;
use crate::record::RunRecord;
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::batch::BatchOrienter;
use antennae_core::bounds;
use antennae_core::solver::implemented_radius_guarantee;
use antennae_core::verify::VerificationEngine;
use antennae_geometry::PI;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of Table 1: an antenna-count / spread regime and its bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Human-readable regime description (matches the paper's row).
    pub regime: String,
    /// Number of antennae per sensor.
    pub k: usize,
    /// Spread budget used for the experiment (the smallest value of the
    /// regime, i.e. the hardest case of the row).
    pub phi: f64,
    /// The paper's radius bound for this row (`None` when the row is the
    /// unbounded-heuristic baseline).
    pub paper_bound: Option<f64>,
    /// Reference the paper cites for the row.
    pub reference: String,
}

/// The twelve rows of Table 1, each evaluated at the *smallest* spread of its
/// regime (the hardest point of the interval).
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            regime: "k=1, φ₁ ≥ 0".into(),
            k: 1,
            phi: 0.0,
            paper_bound: Some(2.0),
            reference: "[14]".into(),
        },
        Table1Row {
            regime: "k=1, π ≤ φ₁ < 8π/5".into(),
            k: 1,
            phi: PI,
            paper_bound: bounds::one_antenna_radius(PI),
            reference: "[4]".into(),
        },
        Table1Row {
            regime: "k=1, φ₁ ≥ 8π/5".into(),
            k: 1,
            phi: 8.0 * PI / 5.0,
            paper_bound: Some(1.0),
            reference: "[4]".into(),
        },
        Table1Row {
            regime: "k=2, φ₂ ≥ 0".into(),
            k: 2,
            phi: 0.0,
            paper_bound: Some(2.0),
            reference: "[14]".into(),
        },
        Table1Row {
            regime: "k=2, 2π/3 ≤ φ₂ < π".into(),
            k: 2,
            phi: 2.0 * PI / 3.0,
            paper_bound: bounds::theorem3_radius(2.0 * PI / 3.0),
            reference: "Theorem 3".into(),
        },
        Table1Row {
            regime: "k=2, φ₂ ≥ π".into(),
            k: 2,
            phi: PI,
            paper_bound: bounds::theorem3_radius(PI),
            reference: "Theorem 3".into(),
        },
        Table1Row {
            regime: "k=2, φ₂ ≥ 6π/5".into(),
            k: 2,
            phi: 6.0 * PI / 5.0,
            paper_bound: Some(1.0),
            reference: "Theorem 2".into(),
        },
        Table1Row {
            regime: "k=3, φ₃ ≥ 0".into(),
            k: 3,
            phi: 0.0,
            paper_bound: Some(3.0_f64.sqrt()),
            reference: "Theorem 5".into(),
        },
        Table1Row {
            regime: "k=3, φ₃ ≥ 4π/5".into(),
            k: 3,
            phi: 4.0 * PI / 5.0,
            paper_bound: Some(1.0),
            reference: "Theorem 2".into(),
        },
        Table1Row {
            regime: "k=4, φ₄ ≥ 0".into(),
            k: 4,
            phi: 0.0,
            paper_bound: Some(2.0_f64.sqrt()),
            reference: "Theorem 6".into(),
        },
        Table1Row {
            regime: "k=4, φ₄ ≥ 2π/5".into(),
            k: 4,
            phi: 2.0 * PI / 5.0,
            paper_bound: Some(1.0),
            reference: "Theorem 2".into(),
        },
        Table1Row {
            regime: "k=5, φ₅ ≥ 0".into(),
            k: 5,
            phi: 0.0,
            paper_bound: Some(1.0),
            reference: "folklore".into(),
        },
    ]
}

/// Configuration of the Table 1 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Config {
    /// Workloads to evaluate every row on.
    pub workloads: Vec<PointSetGenerator>,
    /// Seeds per workload.
    pub seeds_per_workload: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl Table1Config {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        Table1Config {
            workloads: standard_workloads(),
            seeds_per_workload: 20,
            threads: default_threads(),
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Table1Config {
            workloads: vec![
                PointSetGenerator::UniformSquare { n: 40, side: 10.0 },
                PointSetGenerator::PerturbedGrid {
                    cols: 6,
                    rows: 6,
                    jitter: 0.3,
                },
            ],
            seeds_per_workload: 3,
            threads: default_threads(),
        }
    }
}

/// Aggregated results for one row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1RowResult {
    /// The row definition.
    pub row: Table1Row,
    /// Worst measured radius / lmax over all instances.
    pub worst_radius: f64,
    /// Mean measured radius / lmax.
    pub mean_radius: f64,
    /// Whether every instance was verified strongly connected within budget.
    pub all_valid: bool,
    /// The guarantee of the *implemented* algorithm (differs from the paper
    /// bound only for the `k = 1` intermediate regime).
    pub implemented_bound: Option<f64>,
    /// Whether the worst measured radius respects the paper's bound.
    pub within_paper_bound: bool,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// The full Table 1 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Report {
    /// Per-row aggregates, in the paper's row order.
    pub rows: Vec<Table1RowResult>,
    /// Every individual measurement.
    pub records: Vec<RunRecord>,
}

impl Table1Report {
    /// Returns `true` when every instance of every row verified strongly
    /// connected within its budget.
    pub fn all_valid(&self) -> bool {
        self.rows.iter().all(|r| r.all_valid)
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXP-T1 — Table 1 reproduction (radius in units of lmax)")?;
        let mut table = TextTable::new(vec![
            "regime",
            "ref",
            "paper bound",
            "impl. bound",
            "worst measured",
            "mean",
            "connected",
            "within paper",
            "instances",
        ]);
        for r in &self.rows {
            table.add_row(vec![
                r.row.regime.clone(),
                r.row.reference.clone(),
                fmt_bound(r.row.paper_bound),
                fmt_bound(r.implemented_bound),
                format!("{:.4}", r.worst_radius),
                format!("{:.4}", r.mean_radius),
                fmt_check(r.all_valid),
                fmt_check(r.within_paper_bound),
                r.instances.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the Table 1 experiment.
///
/// Each `(workload, seed)` deployment is materialised as **one** instance
/// whose Euclidean MST is shared by all twelve budget rows through
/// [`BatchOrienter`] — the batch pipeline removes the per-row MST rebuild the
/// naive row-major sweep would pay.  Deployments fan out over the sweep's
/// worker threads; within a deployment the batch runs sequentially (the
/// outer level already saturates the pool).
pub fn run(config: &Table1Config) -> Table1Report {
    let rows = table1_rows();
    let budgets: Vec<AntennaBudget> = rows
        .iter()
        .map(|r| AntennaBudget::new(r.k, r.phi))
        .collect();
    // One job per (workload, seed): all twelve rows share the instance.
    let mut jobs: Vec<(PointSetGenerator, u64)> = Vec::new();
    for workload in &config.workloads {
        for seed in 0..config.seeds_per_workload {
            jobs.push((workload.clone(), seed));
        }
    }

    let per_job: Vec<Vec<RunRecord>> = parallel_map(&jobs, config.threads, |(workload, seed)| {
        let points = workload.generate(*seed);
        let batch = BatchOrienter::new(points)
            .expect("generated workloads are non-empty")
            .with_threads(1);
        let outcomes = batch.orient_budgets(&budgets);
        // All twelve rows verify against one instance, so they share one
        // verification session: the engine's spatial index is built once per
        // deployment, like the MST substrate.
        let session = VerificationEngine::new()
            .with_threads(1)
            .session(batch.instance());
        rows.iter()
            .zip(budgets.iter())
            .zip(outcomes)
            .map(|((row, budget), outcome)| {
                let outcome = outcome.expect("dispatch succeeds");
                let report = session.verify_with_budget(&outcome.scheme, Some(*budget));
                RunRecord {
                    workload: workload.label(),
                    seed: *seed,
                    n: batch.instance().len(),
                    k: row.k,
                    phi: row.phi,
                    algorithm: outcome.algorithm.to_string(),
                    strongly_connected: report.is_valid() && report.is_strongly_connected,
                    radius_over_lmax: report.max_radius_over_lmax,
                    max_spread: report.max_spread_sum,
                    paper_bound: bounds::table1_radius(row.k, row.phi),
                    implemented_bound: implemented_radius_guarantee(row.k, row.phi),
                }
            })
            .collect()
    });
    let records: Vec<RunRecord> = per_job.into_iter().flatten().collect();

    // Aggregate per row.
    let per_row: Vec<Table1RowResult> = rows
        .iter()
        .map(|row| {
            // Rows are uniquely keyed by their (k, φ) pair (asserted by the
            // row-layout test), so records can be matched back without a
            // row-index side channel.
            let row_records: Vec<&RunRecord> = records
                .iter()
                .filter(|rec| rec.k == row.k && rec.phi == row.phi)
                .collect();
            let radii: Vec<f64> = row_records.iter().map(|r| r.radius_over_lmax).collect();
            let summary = Summary::of(&radii);
            let all_valid = row_records.iter().all(|r| r.strongly_connected);
            let worst = summary.max;
            let within = row.paper_bound.is_none_or(|b| worst <= b + 1e-6);
            Table1RowResult {
                row: row.clone(),
                worst_radius: worst,
                mean_radius: summary.mean,
                all_valid,
                implemented_bound: implemented_radius_guarantee(row.k, row.phi),
                within_paper_bound: within,
                instances: row_records.len(),
            }
        })
        .collect();

    Table1Report {
        rows: per_row,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_the_paper_layout() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows.iter().filter(|r| r.k == 1).count(), 3);
        assert_eq!(rows.iter().filter(|r| r.k == 2).count(), 4);
        assert_eq!(rows.iter().filter(|r| r.k == 3).count(), 2);
        assert_eq!(rows.iter().filter(|r| r.k == 4).count(), 2);
        assert_eq!(rows.iter().filter(|r| r.k == 5).count(), 1);
        // Rows must stay uniquely keyed by (k, φ): run() matches records back
        // to rows through that pair.
        for (i, a) in rows.iter().enumerate() {
            for b in rows.iter().skip(i + 1) {
                assert!(a.k != b.k || a.phi != b.phi, "duplicate (k, φ) row key");
            }
        }
        // The bounds decrease down the k=2 block.
        let k2: Vec<f64> = rows
            .iter()
            .filter(|r| r.k == 2)
            .map(|r| r.paper_bound.unwrap())
            .collect();
        assert!(k2.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn quick_run_verifies_all_rows() {
        let report = run(&Table1Config::quick());
        assert_eq!(report.rows.len(), 12);
        assert!(report.all_valid(), "some instance failed verification");
        for row in &report.rows {
            assert!(row.instances > 0);
            // Every row backed by an implemented guarantee stays within it.
            if let Some(bound) = row.implemented_bound {
                assert!(
                    row.worst_radius <= bound + 1e-6,
                    "{}: worst {} > bound {}",
                    row.row.regime,
                    row.worst_radius,
                    bound
                );
            }
        }
        // The rendered report contains every regime label.
        let rendered = report.to_string();
        for row in &report.rows {
            assert!(rendered.contains(&row.row.regime));
        }
    }

    #[test]
    fn records_capture_individual_runs() {
        let config = Table1Config {
            workloads: vec![PointSetGenerator::UniformSquare { n: 25, side: 5.0 }],
            seeds_per_workload: 2,
            threads: 2,
        };
        let report = run(&config);
        assert_eq!(report.records.len(), 12 * 2);
        assert!(report.records.iter().all(|r| r.strongly_connected));
        assert!(report
            .records
            .iter()
            .all(|r| r.within_implemented_bound(1e-6)));
    }
}
