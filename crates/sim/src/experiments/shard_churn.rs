//! EXP-SHARD-CHURN: sharded vs. global dynamic engines on identical traces.
//!
//! The spatial-sharding layer promises two things: per-edit repair confined
//! to the owning tile (cost), and **bit-exactness** to the global engine
//! (semantics).  This experiment measures both at once.  Each cell replays
//! one deterministic [`churn_trace`] through *two* sessions over the same
//! initial deployment — one on the global kd-tree
//! ([`DynamicInstance::new`]), one on a per-tile forest
//! ([`DynamicInstance::new_sharded`]) — applying the identical edit to both
//! and recording:
//!
//! * per-edit latency of each engine and the sharded/global speedup,
//! * whether every edit left the two sessions **bit-identical** (measured
//!   radius, `lmax` and MST weight compared via `f64::to_bits`),
//! * whether every verdict along both traces was valid.
//!
//! A cell with `identical=false` is a sharding bug, full stop — the oracle
//! tests pin the same property, this experiment demonstrates it at
//! simulation scale while the latency columns show what sharding buys.

use crate::events::{churn_trace, ChurnMix};
use crate::experiments::churn::resolve_edit;
use crate::experiments::common::{fmt_check, TextTable};
use crate::generators::PointSetGenerator;
use crate::sweep::{default_threads, parallel_map};
use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession};
use antennae_core::shard::ShardSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Configuration of the sharded-vs-global churn comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardChurnConfig {
    /// Initial deployments (large enough that sharding has tiles to fill).
    pub workloads: Vec<PointSetGenerator>,
    /// Tile counts per axis to sweep (each forced via [`ShardSpec::Grid`]).
    pub grids: Vec<usize>,
    /// `(k, φ)` budget driving both sessions.
    pub budget: (usize, f64),
    /// Churn mix of the trace.
    pub mix: ChurnMix,
    /// Events replayed per cell.
    pub events: usize,
    /// Seeds per (workload, grid) cell.
    pub seeds_per_cell: u64,
    /// Side of the arrival region and scale of mobility steps.
    pub region_side: f64,
    /// Worker threads (cells are independent).
    pub threads: usize,
}

impl ShardChurnConfig {
    /// Full configuration used by the report binary.
    pub fn full() -> Self {
        ShardChurnConfig {
            workloads: vec![
                PointSetGenerator::UniformSquare {
                    n: 2000,
                    side: 40.0,
                },
                PointSetGenerator::Clustered {
                    n: 1500,
                    clusters: 8,
                    side: 40.0,
                    spread: 2.0,
                },
            ],
            grids: vec![3, 6],
            budget: (2, theorem2_spread_threshold(2)),
            mix: ChurnMix::balanced(3.0),
            events: 120,
            seeds_per_cell: 2,
            region_side: 40.0,
            threads: default_threads(),
        }
    }

    /// Quick configuration for tests.
    pub fn quick() -> Self {
        ShardChurnConfig {
            workloads: vec![PointSetGenerator::UniformSquare { n: 250, side: 16.0 }],
            grids: vec![3],
            budget: (2, theorem2_spread_threshold(2)),
            mix: ChurnMix::balanced(3.0),
            events: 30,
            seeds_per_cell: 1,
            region_side: 16.0,
            threads: default_threads(),
        }
    }
}

/// One (workload, grid, seed) comparison cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardChurnCell {
    /// Workload label.
    pub workload: String,
    /// Tiles per axis of the sharded session.
    pub grid: usize,
    /// Seed of the run.
    pub seed: u64,
    /// Edits applied to both sessions.
    pub events: usize,
    /// Live sensors after the trace.
    pub final_n: usize,
    /// Occupied tiles in the sharded session after the trace.
    pub occupied_tiles: usize,
    /// Mean per-edit latency of the global session (µs).
    pub global_mean_us: f64,
    /// Mean per-edit latency of the sharded session (µs).
    pub sharded_mean_us: f64,
    /// `global_mean_us / sharded_mean_us`.
    pub speedup: f64,
    /// Whether radius, `lmax` and MST weight matched bit-for-bit after
    /// every edit.
    pub identical: bool,
    /// Whether every verdict on both sides was valid.
    pub all_valid: bool,
}

/// The comparison report: one [`ShardChurnCell`] per (workload, grid, seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardChurnReport {
    /// All sweep cells, in configuration order.
    pub cells: Vec<ShardChurnCell>,
}

impl ShardChurnReport {
    /// Whether every cell stayed bit-identical across engines.
    pub fn all_identical(&self) -> bool {
        self.cells.iter().all(|c| c.identical)
    }

    /// Whether every verdict across every cell was valid.
    pub fn all_valid(&self) -> bool {
        self.cells.iter().all(|c| c.all_valid)
    }
}

impl fmt::Display for ShardChurnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXP-SHARD-CHURN — sharded vs. global engines on identical traces, \
             bit-identical: {}, all valid: {}",
            self.all_identical(),
            self.all_valid()
        )?;
        let mut table = TextTable::new(vec![
            "workload",
            "grid",
            "seed",
            "events",
            "n_end",
            "tiles",
            "global µs",
            "sharded µs",
            "speedup",
            "identical",
            "valid",
        ]);
        for c in &self.cells {
            table.add_row(vec![
                c.workload.clone(),
                format!("{0}x{0}", c.grid),
                c.seed.to_string(),
                c.events.to_string(),
                c.final_n.to_string(),
                c.occupied_tiles.to_string(),
                format!("{:.1}", c.global_mean_us),
                format!("{:.1}", c.sharded_mean_us),
                format!("{:.2}x", c.speedup),
                fmt_check(c.identical),
                fmt_check(c.all_valid),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Radius, `lmax` and MST weight as raw bits — the equality the sharding
/// layer must preserve edit for edit.
fn fingerprint(session: &DynamicSolverSession) -> (u64, u64, u64) {
    let inst = session.instance();
    (
        session.report().max_radius.to_bits(),
        inst.lmax().to_bits(),
        inst.mst_total_weight().to_bits(),
    )
}

fn run_cell(
    workload: &PointSetGenerator,
    grid: usize,
    seed: u64,
    config: &ShardChurnConfig,
) -> ShardChurnCell {
    let (k, phi) = config.budget;
    let budget = AntennaBudget::new(k, phi);
    let points = workload.generate(seed);

    let global_inst = DynamicInstance::new(&points).expect("non-empty workload");
    let mut global = DynamicSolverSession::new(global_inst, budget).expect("valid budget");
    let sharded_inst =
        DynamicInstance::new_sharded(&points, ShardSpec::Grid(grid)).expect("non-empty workload");
    let mut sharded = DynamicSolverSession::new(sharded_inst, budget).expect("valid budget");

    let trace = churn_trace(
        config.mix,
        config.events,
        config.region_side,
        config.region_side / 20.0,
        seed.wrapping_add(0x5EED),
    );

    let mut applied = 0usize;
    let mut global_total_us = 0.0f64;
    let mut sharded_total_us = 0.0f64;
    let mut identical = fingerprint(&global) == fingerprint(&sharded);
    let mut all_valid = global.report().is_valid() && sharded.report().is_valid();

    for event in &trace {
        // Resolve against the global session; both sessions hold the same
        // live population whenever `identical` still holds, so the edit is
        // meaningful for both.
        let Some(edit) = resolve_edit(&global, event, config.region_side) else {
            continue;
        };
        let start = Instant::now();
        let g = global.apply(edit).expect("edit on live id");
        global_total_us += start.elapsed().as_secs_f64() * 1e6;
        let start = Instant::now();
        let s = sharded.apply(edit).expect("edit on live id");
        sharded_total_us += start.elapsed().as_secs_f64() * 1e6;
        applied += 1;
        all_valid &= g.report.is_valid() && s.report.is_valid();
        identical &= fingerprint(&global) == fingerprint(&sharded);
    }

    ShardChurnCell {
        workload: workload.label(),
        grid,
        seed,
        events: applied,
        final_n: global.instance().len(),
        occupied_tiles: sharded.instance().shard_occupied().unwrap_or(0),
        global_mean_us: if applied > 0 {
            global_total_us / applied as f64
        } else {
            0.0
        },
        sharded_mean_us: if applied > 0 {
            sharded_total_us / applied as f64
        } else {
            0.0
        },
        speedup: if sharded_total_us > 0.0 {
            global_total_us / sharded_total_us
        } else {
            0.0
        },
        identical,
        all_valid,
    }
}

/// Runs the comparison: every (workload, grid, seed) cell is an independent
/// double replay, fanned out over the worker pool.
pub fn run(config: &ShardChurnConfig) -> ShardChurnReport {
    let mut cells_spec = Vec::new();
    for workload in &config.workloads {
        for &grid in &config.grids {
            for seed in 0..config.seeds_per_cell {
                cells_spec.push((workload.clone(), grid, seed));
            }
        }
    }
    let cells = parallel_map(&cells_spec, config.threads, |(workload, grid, seed)| {
        run_cell(workload, *grid, *seed, config)
    });
    ShardChurnReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shard_churn_stays_bit_identical() {
        let config = ShardChurnConfig::quick();
        let report = run(&config);
        assert_eq!(report.cells.len(), 1);
        assert!(report.all_identical(), "{report}");
        assert!(report.all_valid(), "{report}");
        let cell = &report.cells[0];
        assert!(cell.events > 0);
        assert!(cell.occupied_tiles >= 2, "grid never occupied: {report}");
        let rendered = report.to_string();
        assert!(rendered.contains("EXP-SHARD-CHURN"));
        assert!(rendered.contains("speedup"));
    }
}
