//! Discrete-event machinery: the event queue used by the flooding simulator
//! and the churn traces (arrival / failure / mobility) driving the dynamic
//! deployment experiments.

use antennae_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timestamped event carrying a payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event<T> {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// Monotone sequence number breaking ties deterministically (FIFO for
    /// equal times).
    pub sequence: u64,
    /// The payload.
    pub payload: T,
}

impl<T> Eq for Event<T> where T: PartialEq {}

impl<T: PartialEq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.sequence.cmp(&other.sequence))
    }
}

/// A discrete-event queue ordered by (time, insertion order).
#[derive(Debug, Default)]
pub struct EventQueue<T: PartialEq> {
    heap: BinaryHeap<Reverse<Event<T>>>,
    next_sequence: u64,
}

impl<T: PartialEq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at the given simulation time.
    pub fn schedule(&mut self, time: f64, payload: T) {
        let event = Event {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(Reverse(event));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

/// Intensities of the three churn processes, as competing Poisson rates
/// (events per unit simulation time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnMix {
    /// Rate of sensor arrivals (uniform over the deployment region).
    pub arrival: f64,
    /// Rate of sensor failures (a uniformly random live sensor dies).
    pub failure: f64,
    /// Rate of mobility steps (a uniformly random live sensor takes a
    /// bounded random step).
    pub mobility: f64,
}

impl ChurnMix {
    /// A balanced mix with the given total event rate.
    pub fn balanced(total_rate: f64) -> Self {
        ChurnMix {
            arrival: total_rate / 3.0,
            failure: total_rate / 3.0,
            mobility: total_rate / 3.0,
        }
    }

    /// The total event rate.
    pub fn total(&self) -> f64 {
        self.arrival + self.failure + self.mobility
    }

    /// A short label for report tables, e.g. `a1.0/f1.0/m1.0`.
    pub fn label(&self) -> String {
        format!(
            "a{:.1}/f{:.1}/m{:.1}",
            self.arrival, self.failure, self.mobility
        )
    }
}

/// One churn operation.  Failure and mobility do not name a concrete sensor
/// — the live population changes as the trace is applied, so they carry a
/// uniform `pick` draw that the applier reduces modulo the live count at
/// application time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnOp {
    /// A sensor arrives at the given location.
    Arrive(Point),
    /// The `pick % live`-th live sensor (in ascending id order) fails.
    Fail {
        /// Uniform draw selecting the victim at application time.
        pick: u64,
    },
    /// The `pick % live`-th live sensor takes the given displacement step.
    Step {
        /// Uniform draw selecting the mover at application time.
        pick: u64,
        /// Displacement in x.
        dx: f64,
        /// Displacement in y.
        dy: f64,
    },
}

/// A timestamped churn operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulation time of the event.
    pub time: f64,
    /// The operation.
    pub op: ChurnOp,
}

/// Generates a deterministic churn trace of `count` events: interarrival
/// times are exponential with rate [`ChurnMix::total`], the event type is
/// drawn proportionally to the mix, arrivals land uniformly in
/// `[0, side]²`, and mobility steps are uniform in `[-max_step, max_step]²`.
///
/// A mix with zero total rate yields an empty trace.
///
/// # Examples
///
/// ```
/// use antennae_sim::events::{churn_trace, ChurnMix};
///
/// let trace = churn_trace(ChurnMix::balanced(3.0), 100, 10.0, 0.5, 42);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
/// ```
pub fn churn_trace(
    mix: ChurnMix,
    count: usize,
    side: f64,
    max_step: f64,
    seed: u64,
) -> Vec<ChurnEvent> {
    let total = mix.total();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut time = 0.0;
    let mut trace = Vec::with_capacity(count);
    for _ in 0..count {
        // Exponential interarrival with rate `total`.
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        time += -u.ln() / total;
        let which: f64 = rng.random_range(0.0..total);
        let op = if which < mix.arrival {
            ChurnOp::Arrive(Point::new(
                rng.random_range(0.0..side),
                rng.random_range(0.0..side),
            ))
        } else if which < mix.arrival + mix.failure {
            ChurnOp::Fail { pick: rng.random() }
        } else {
            ChurnOp::Step {
                pick: rng.random(),
                dx: rng.random_range(-max_step..=max_step),
                dy: rng.random_range(-max_step..=max_step),
            }
        };
        trace.push(ChurnEvent { time, op });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_trace_is_deterministic_and_ordered() {
        let mix = ChurnMix {
            arrival: 2.0,
            failure: 1.0,
            mobility: 1.0,
        };
        let a = churn_trace(mix, 200, 10.0, 0.5, 3);
        let b = churn_trace(mix, 200, 10.0, 0.5, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].time < w[1].time));
        assert_ne!(a, churn_trace(mix, 200, 10.0, 0.5, 4));
    }

    #[test]
    fn churn_trace_respects_the_mix() {
        // Arrival-only mix never kills or moves anyone.
        let mix = ChurnMix {
            arrival: 5.0,
            failure: 0.0,
            mobility: 0.0,
        };
        let trace = churn_trace(mix, 50, 4.0, 0.1, 1);
        assert!(trace.iter().all(|e| matches!(e.op, ChurnOp::Arrive(_))));
        for e in &trace {
            if let ChurnOp::Arrive(p) = e.op {
                assert!((0.0..=4.0).contains(&p.x) && (0.0..=4.0).contains(&p.y));
            }
        }
        // Zero rate → empty trace.
        let empty = churn_trace(
            ChurnMix {
                arrival: 0.0,
                failure: 0.0,
                mobility: 0.0,
            },
            50,
            4.0,
            0.1,
            1,
        );
        assert!(empty.is_empty());
        assert_eq!(ChurnMix::balanced(3.0).total(), 3.0);
        assert_eq!(ChurnMix::balanced(3.0).label(), "a1.0/f1.0/m1.0");
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    fn interleaved_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "late");
        q.schedule(1.0, "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.schedule(2.0, "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
    }
}
