//! A minimal discrete-event queue used by the flooding simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timestamped event carrying a payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event<T> {
    /// Simulation time at which the event fires.
    pub time: f64,
    /// Monotone sequence number breaking ties deterministically (FIFO for
    /// equal times).
    pub sequence: u64,
    /// The payload.
    pub payload: T,
}

impl<T> Eq for Event<T> where T: PartialEq {}

impl<T: PartialEq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.sequence.cmp(&other.sequence))
    }
}

/// A discrete-event queue ordered by (time, insertion order).
#[derive(Debug, Default)]
pub struct EventQueue<T: PartialEq> {
    heap: BinaryHeap<Reverse<Event<T>>>,
    next_sequence: u64,
}

impl<T: PartialEq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at the given simulation time.
    pub fn schedule(&mut self, time: f64, payload: T) {
        let event = Event {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(Reverse(event));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    fn interleaved_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "late");
        q.schedule(1.0, "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.schedule(2.0, "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
    }
}
