//! A simple radiated-energy model for directional antennae.
//!
//! Following the energy-consumption literature the paper cites (\[9\], \[11\]),
//! the power a sensor spends to sustain a sector of spread `θ` and range `r`
//! is modelled as proportional to the fraction of the disk it illuminates
//! times the usual path-loss term:
//!
//! ```text
//! P(θ, r) = (θ / 2π) · r^α        (α = path-loss exponent, typically 2–4)
//! ```
//!
//! A zero-spread beam is given a small non-zero beam width `θ_min` so that it
//! still costs energy proportional to `r^α` (a physical antenna always has a
//! main lobe).  The energy experiment (EXP-EN) compares the per-sensor and
//! network-wide energy of the paper's orientations against an
//! omnidirectional deployment at the radius each scheme actually needs.

use antennae_core::scheme::OrientationScheme;
use antennae_geometry::TAU;
use serde::{Deserialize, Serialize};

/// Parameters of the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Path-loss exponent `α` (2 = free space, 4 = lossy environments).
    pub path_loss_exponent: f64,
    /// Effective beam width (radians) charged for zero-spread antennae.
    pub min_beam_width: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            path_loss_exponent: 2.0,
            min_beam_width: TAU / 90.0, // a 4° main lobe
        }
    }
}

impl EnergyModel {
    /// Creates a model with the given path-loss exponent and the default
    /// 4° minimum beam width.
    pub fn with_exponent(alpha: f64) -> Self {
        EnergyModel {
            path_loss_exponent: alpha,
            ..EnergyModel::default()
        }
    }

    /// Power of a single antenna of spread `theta` and range `r`.
    pub fn antenna_power(&self, theta: f64, r: f64) -> f64 {
        let effective = theta.max(self.min_beam_width).min(TAU);
        (effective / TAU) * r.powf(self.path_loss_exponent)
    }

    /// Power of an omnidirectional antenna of range `r`.
    pub fn omnidirectional_power(&self, r: f64) -> f64 {
        self.antenna_power(TAU, r)
    }

    /// Per-sensor power of an orientation scheme.
    pub fn per_sensor_power(&self, scheme: &OrientationScheme) -> Vec<f64> {
        scheme
            .assignments
            .iter()
            .map(|assignment| {
                assignment
                    .antennas
                    .iter()
                    .map(|a| self.antenna_power(a.spread, a.radius))
                    .sum()
            })
            .collect()
    }

    /// Total network power of an orientation scheme.
    pub fn total_power(&self, scheme: &OrientationScheme) -> f64 {
        self.per_sensor_power(scheme).iter().sum()
    }

    /// Maximum per-sensor power of an orientation scheme (the sensor that
    /// drains its battery first).
    pub fn max_sensor_power(&self, scheme: &OrientationScheme) -> f64 {
        self.per_sensor_power(scheme)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Total power of an omnidirectional deployment where every one of `n`
    /// sensors uses range `r`.
    pub fn omnidirectional_total(&self, n: usize, r: f64) -> f64 {
        n as f64 * self.omnidirectional_power(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_core::antenna::{Antenna, SensorAssignment};
    use antennae_geometry::{Angle, Point, PI};

    #[test]
    fn power_scales_with_spread_and_radius() {
        let m = EnergyModel::default();
        let narrow = m.antenna_power(PI / 4.0, 1.0);
        let wide = m.antenna_power(PI / 2.0, 1.0);
        assert!((wide / narrow - 2.0).abs() < 1e-9);
        let short = m.antenna_power(PI, 1.0);
        let long = m.antenna_power(PI, 3.0);
        assert!((long / short - 9.0).abs() < 1e-9); // α = 2
    }

    #[test]
    fn zero_spread_beams_still_cost_energy() {
        let m = EnergyModel::default();
        assert!(m.antenna_power(0.0, 2.0) > 0.0);
        assert!(m.antenna_power(0.0, 2.0) < m.antenna_power(PI, 2.0));
    }

    #[test]
    fn path_loss_exponent_changes_range_sensitivity() {
        let free_space = EnergyModel::with_exponent(2.0);
        let lossy = EnergyModel::with_exponent(4.0);
        assert!(lossy.antenna_power(PI, 2.0) > free_space.antenna_power(PI, 2.0));
        assert!((lossy.antenna_power(PI, 2.0) / lossy.antenna_power(PI, 1.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn scheme_aggregation() {
        let m = EnergyModel::default();
        let apex = Point::ORIGIN;
        let scheme = OrientationScheme::new(vec![
            SensorAssignment::new(vec![Antenna::beam(&apex, &Point::new(1.0, 0.0), 1.0)]),
            SensorAssignment::new(vec![Antenna::new(Angle::ZERO, PI, 2.0)]),
        ]);
        let per = m.per_sensor_power(&scheme);
        assert_eq!(per.len(), 2);
        assert!(per[1] > per[0]);
        assert!((m.total_power(&scheme) - (per[0] + per[1])).abs() < 1e-12);
        assert_eq!(m.max_sensor_power(&scheme), per[1]);
    }

    #[test]
    fn directional_schemes_beat_omnidirectional_at_same_radius() {
        // A sector of spread π at range r uses half the energy of an
        // omnidirectional antenna at the same range.
        let m = EnergyModel::default();
        assert!((m.omnidirectional_power(2.0) / m.antenna_power(PI, 2.0) - 2.0).abs() < 1e-9);
        assert!(
            (m.omnidirectional_total(10, 1.0) - 10.0 * m.omnidirectional_power(1.0)).abs() < 1e-12
        );
    }
}
