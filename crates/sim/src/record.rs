//! Serde-serializable experiment records.
//!
//! Every experiment driver produces plain-text tables for human consumption
//! *and* structured records so that downstream tooling (plotting scripts,
//! regression tracking) can consume the same data.

use serde::{Deserialize, Serialize};

/// One measurement of one algorithm on one generated instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload label (generator description).
    pub workload: String,
    /// Seed used for the workload.
    pub seed: u64,
    /// Number of sensors.
    pub n: usize,
    /// Antennae per sensor.
    pub k: usize,
    /// Spread budget (radians).
    pub phi: f64,
    /// Algorithm that produced the scheme.
    pub algorithm: String,
    /// Whether the verifier confirmed strong connectivity.
    pub strongly_connected: bool,
    /// Measured maximum radius divided by `lmax`.
    pub radius_over_lmax: f64,
    /// Measured maximum per-sensor spread sum (radians).
    pub max_spread: f64,
    /// The radius bound claimed by the paper for this configuration
    /// (`None` when no row of Table 1 applies).
    pub paper_bound: Option<f64>,
    /// The bound guaranteed by the implemented algorithm (`None` for the
    /// heuristic k = 1 baseline).
    pub implemented_bound: Option<f64>,
}

impl RunRecord {
    /// Returns `true` when the measured radius respects the implemented
    /// algorithm's guarantee (trivially true when there is no guarantee).
    pub fn within_implemented_bound(&self, tolerance: f64) -> bool {
        self.implemented_bound
            .is_none_or(|b| self.radius_over_lmax <= b + tolerance)
    }

    /// Returns `true` when the measured radius respects the paper's bound
    /// (trivially true when no row applies).
    pub fn within_paper_bound(&self, tolerance: f64) -> bool {
        self.paper_bound
            .is_none_or(|b| self.radius_over_lmax <= b + tolerance)
    }
}

/// A generic labelled scalar series (used for trade-off curves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Independent variable (e.g. spread φ₂ in radians).
    pub x: f64,
    /// Dependent variable (e.g. worst measured radius / lmax).
    pub y: f64,
    /// Optional second dependent variable (e.g. the paper's bound).
    pub y_reference: Option<f64>,
    /// Label of the series this point belongs to.
    pub series: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            workload: "uniform(n=50)".into(),
            seed: 3,
            n: 50,
            k: 2,
            phi: std::f64::consts::PI,
            algorithm: "theorem3".into(),
            strongly_connected: true,
            radius_over_lmax: 1.2,
            max_spread: 2.9,
            paper_bound: Some(1.2856),
            implemented_bound: Some(1.2856),
        }
    }

    #[test]
    fn bound_checks() {
        let r = sample_record();
        assert!(r.within_paper_bound(1e-9));
        assert!(r.within_implemented_bound(1e-9));
        let mut over = sample_record();
        over.radius_over_lmax = 1.5;
        assert!(!over.within_paper_bound(1e-9));
        let mut unbounded = sample_record();
        unbounded.paper_bound = None;
        unbounded.implemented_bound = None;
        unbounded.radius_over_lmax = 99.0;
        assert!(unbounded.within_paper_bound(1e-9));
        assert!(unbounded.within_implemented_bound(1e-9));
    }

    #[test]
    fn series_point_holds_reference_values() {
        let p = SeriesPoint {
            x: 1.0,
            y: 2.0,
            y_reference: Some(2.5),
            series: "measured".into(),
        };
        assert_eq!(p.series, "measured");
        assert!(p.y < p.y_reference.unwrap());
    }
}
