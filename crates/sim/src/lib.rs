//! # antennae-sim
//!
//! Sensor-network simulation substrate and the experiment drivers that
//! regenerate every table and figure of the paper.
//!
//! The paper is a theory paper: its "evaluation" is Table 1 plus the
//! constructions behind Figures 1–6.  Reproducing it therefore means
//! (a) generating sensor deployments (from benign uniform deployments to the
//! adversarial extremal configurations used in the proofs), (b) running each
//! orientation algorithm, (c) verifying strong connectivity through the
//! independent verifier, and (d) measuring the achieved radius/spread against
//! the paper's bounds.  On top of that, this crate provides the
//! network-behaviour substrate the paper's introduction motivates but never
//! evaluates — an energy model and a flooding/latency simulator — so that the
//! trade-offs between the number of antennae, their angular sum, and the
//! resulting network behaviour can be explored end to end.
//!
//! * [`generators`] — seeded workload generators (uniform, clustered, grids,
//!   annuli, extremal stars and polygons).
//! * [`energy`] — sector-area / `r^α` energy model.
//! * [`events`], [`flooding`] — discrete-event broadcast simulation over the
//!   induced communication digraph, plus the churn traces
//!   (arrival/failure/mobility) driving the dynamic-deployment experiment.
//! * [`interference`] — receivers-per-sector interference metric.
//! * [`metrics`] — summary statistics helpers.
//! * [`record`] — serde-serializable experiment records.
//! * [`sweep`] — parallel parameter sweeps (order-preserving scoped-thread
//!   map, shared with `antennae_core::batch`).
//! * [`experiments`] — one driver per table/figure: Table 1, Lemma 1 /
//!   Figure 1, Facts 1–2 / Figure 2, the Theorem 3 case histograms /
//!   Figures 3–4, the chain constructions / Figures 5–6, the spread–radius
//!   trade-off, the energy comparison, and the churn sweep over dynamic
//!   deployments (EXP-CHURN).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod energy;
pub mod events;
pub mod experiments;
pub mod flooding;
pub mod generators;
pub mod interference;
pub mod metrics;
pub mod record;
pub mod serve_script;
pub mod sweep;

pub use generators::PointSetGenerator;
