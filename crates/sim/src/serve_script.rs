//! Churn traces rendered as `orientd` protocol scripts.
//!
//! [`churn_protocol_script`] turns a seed deployment plus a
//! [`churn_trace`](crate::events::churn_trace) into the exact request lines
//! a client would send to the deployment server: one `CREATE`, a stream of
//! `EDIT`s with periodic `ORIENT` flushes, and a closing `ORIENT`+`VERIFY`.
//!
//! The encoder is **pure string formatting** — it deliberately does not
//! depend on the serve crate.  It mirrors the server's id-assignment rules
//! (dense monotone ids, inserts numbered past every id ever used) so the
//! emitted `REMOVE`/`MOVE` lines reference exactly the ids the server will
//! have handed out; the round-trip is pinned by the root crate's
//! `serve_churn` integration test, which replays a script over a real
//! socket and checks the final deployment against a bare dynamic session.

use crate::events::{ChurnEvent, ChurnOp};
use antennae_geometry::Point;

/// A churn trace rendered into protocol lines, plus the applied-edit record
/// the oracle side needs to replay the same history without re-deriving the
/// pick-mod-live victim resolution.
#[derive(Debug, Clone)]
pub struct ProtocolScript {
    /// Request lines in send order (`CREATE` first, `VERIFY` last).
    pub lines: Vec<String>,
    /// Every edit the script performs, as `(id, op)` in order:
    /// `op` is `Some(point)` for inserts/moves (the absolute location) and
    /// `None` for removals.  Inserts carry the id the server will assign.
    pub edits: Vec<(usize, Option<Point>)>,
}

/// Renders `trace` into an `orientd` session script for deployment `name`
/// with budget `(k, phi)`, flushing with `ORIENT` every `flush_every`
/// edits (0 means "only the final flush").
///
/// Victim/mover resolution matches the documented [`ChurnOp`] semantics:
/// `pick % live` indexes the live ids in ascending order, evaluated against
/// the *projected* state (seeds plus the effect of every earlier line), so
/// the server accepts each line exactly as a serial applier would.  Failure
/// events on an empty deployment are skipped (nothing to remove).
pub fn churn_protocol_script(
    name: &str,
    k: usize,
    phi: f64,
    seeds: &[Point],
    trace: &[ChurnEvent],
    flush_every: usize,
) -> ProtocolScript {
    let mut lines = Vec::with_capacity(trace.len() + 3);
    let mut create = format!("CREATE {name} {k} {phi}");
    for p in seeds {
        create.push_str(&format!(" {} {}", p.x, p.y));
    }
    lines.push(create);

    // Projected state: position per ever-assigned id, None once removed.
    let mut slots: Vec<Option<Point>> = seeds.iter().copied().map(Some).collect();
    let mut edits = Vec::new();
    let mut since_flush = 0usize;
    for event in trace {
        let live: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_some()).collect();
        match event.op {
            ChurnOp::Arrive(p) => {
                let id = slots.len();
                slots.push(Some(p));
                lines.push(format!("EDIT {name} INSERT {} {}", p.x, p.y));
                edits.push((id, Some(p)));
            }
            ChurnOp::Fail { pick } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[(pick % live.len() as u64) as usize];
                slots[id] = None;
                lines.push(format!("EDIT {name} REMOVE {id}"));
                edits.push((id, None));
            }
            ChurnOp::Step { pick, dx, dy } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[(pick % live.len() as u64) as usize];
                let from = slots[id].expect("live slot has a position");
                let to = Point::new(from.x + dx, from.y + dy);
                slots[id] = Some(to);
                lines.push(format!("EDIT {name} MOVE {id} {} {}", to.x, to.y));
                edits.push((id, Some(to)));
            }
        }
        since_flush += 1;
        if flush_every > 0 && since_flush >= flush_every {
            lines.push(format!("ORIENT {name}"));
            since_flush = 0;
        }
    }
    lines.push(format!("ORIENT {name}"));
    lines.push(format!("VERIFY {name}"));
    ProtocolScript { lines, edits }
}

/// Splits a rendered script into `segments` consecutive line chunks for
/// crash/restart drills: segment 0 starts with the `CREATE`, each later
/// segment resumes mid-history (a durable server recovers the tenant
/// between segments, so *any* boundary is a legal cut).  Chunks are as
/// even as integer division allows; `segments` is clamped to the line
/// count, and every line appears in exactly one segment, in order.
pub fn restart_segments(script: &ProtocolScript, segments: usize) -> Vec<Vec<String>> {
    let n = script.lines.len();
    let segments = segments.clamp(1, n.max(1));
    let mut out = Vec::with_capacity(segments);
    let mut start = 0;
    for s in 0..segments {
        let end = ((s + 1) * n) / segments;
        out.push(script.lines[start..end].to_vec());
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{churn_trace, ChurnMix};

    #[test]
    fn script_shape_and_id_discipline() {
        let seeds = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ];
        let trace = churn_trace(ChurnMix::balanced(2.0), 40, 8.0, 0.5, 9);
        let script = churn_protocol_script("t", 2, 4.0, &seeds, &trace, 5);

        assert!(script.lines[0].starts_with("CREATE t 2 4"));
        assert_eq!(script.lines[script.lines.len() - 2], "ORIENT t");
        assert_eq!(script.lines[script.lines.len() - 1], "VERIFY t");

        // Replay the edit record: ids must be dense-monotone for inserts and
        // live at use for removals/moves.
        let mut alive = vec![true; seeds.len()];
        for &(id, op) in &script.edits {
            if id == alive.len() {
                assert!(op.is_some(), "a fresh id can only come from an insert");
                alive.push(true);
            } else {
                assert!(alive[id], "edit referenced dead id {id}");
                if op.is_none() {
                    alive[id] = false;
                }
            }
        }

        // Every emitted EDIT line corresponds to one recorded edit.
        let edit_lines = script
            .lines
            .iter()
            .filter(|l| l.starts_with("EDIT "))
            .count();
        assert_eq!(edit_lines, script.edits.len());
    }

    #[test]
    fn restart_segments_partition_the_script() {
        let seeds = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let trace = churn_trace(ChurnMix::balanced(2.0), 30, 6.0, 0.4, 7);
        let script = churn_protocol_script("t", 2, 4.0, &seeds, &trace, 4);
        for segments in [1, 2, 3, 5, script.lines.len(), script.lines.len() + 9] {
            let split = restart_segments(&script, segments);
            assert_eq!(split.len(), segments.min(script.lines.len()));
            let glued: Vec<String> = split.concat();
            assert_eq!(glued, script.lines, "segments={segments}");
            assert!(split.iter().all(|s| !s.is_empty()), "segments={segments}");
        }
        assert!(restart_segments(&script, 3)[0][0].starts_with("CREATE "));
    }

    #[test]
    fn zero_flush_interval_defers_to_the_final_orient() {
        let seeds = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let trace = churn_trace(ChurnMix::balanced(2.0), 20, 5.0, 0.3, 4);
        let script = churn_protocol_script("t", 1, 6.0, &seeds, &trace, 0);
        let orients = script.lines.iter().filter(|l| *l == "ORIENT t").count();
        assert_eq!(
            orients, 1,
            "flush_every=0 must emit exactly the final ORIENT"
        );
    }
}
