//! Discrete-event flooding (broadcast) simulation over the induced
//! communication digraph.
//!
//! The paper proves strong connectivity; this simulator demonstrates what
//! that buys operationally: a message flooded from any source reaches every
//! sensor, and the latency penalty of directional antennae relative to an
//! omnidirectional deployment can be measured.  Link latency is modelled as
//! `base_latency + distance / propagation_speed`, so longer antenna hops cost
//! proportionally more.

use crate::events::EventQueue;
use antennae_core::scheme::OrientationScheme;
use antennae_core::verify::VerificationEngine;
use antennae_geometry::Point;
use antennae_graph::DiGraph;
use serde::{Deserialize, Serialize};

/// Parameters of the flooding simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodingConfig {
    /// Fixed per-hop processing/transmission latency.
    pub base_latency: f64,
    /// Propagation speed (distance units per time unit).
    pub propagation_speed: f64,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            base_latency: 1.0,
            propagation_speed: 1000.0,
        }
    }
}

/// Result of flooding a message from one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodingResult {
    /// The source sensor.
    pub source: usize,
    /// Number of sensors that received the message (including the source).
    pub delivered: usize,
    /// Total number of sensors.
    pub total: usize,
    /// Time at which the last sensor received the message (0 when nothing
    /// was delivered beyond the source).
    pub completion_time: f64,
    /// Maximum hop count over delivered sensors.
    pub max_hops: usize,
    /// Per-sensor delivery time (`None` for sensors never reached).
    pub delivery_time: Vec<Option<f64>>,
}

impl FloodingResult {
    /// Fraction of sensors reached, in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.delivered as f64 / self.total as f64
        }
    }

    /// Returns `true` when every sensor was reached.
    pub fn fully_delivered(&self) -> bool {
        self.delivered == self.total
    }
}

/// Floods a message from `source` over the digraph induced by `scheme` on
/// `points`.
///
/// The digraph is rebuilt through the sub-quadratic
/// [`VerificationEngine`] (kd-tree range queries above the crossover size,
/// dense pairwise below it) — output-identical to
/// [`OrientationScheme::induced_digraph`] but no longer the bottleneck when
/// flooding large deployments from many sources.
pub fn flood(
    points: &[Point],
    scheme: &OrientationScheme,
    source: usize,
    config: FloodingConfig,
) -> FloodingResult {
    let digraph = VerificationEngine::new().induced_digraph(points, scheme);
    flood_over_digraph(points, &digraph, source, config)
}

/// Floods a message over an explicit digraph (used to compare the induced
/// directional digraph against an omnidirectional baseline).
pub fn flood_over_digraph(
    points: &[Point],
    digraph: &DiGraph,
    source: usize,
    config: FloodingConfig,
) -> FloodingResult {
    let n = points.len();
    let mut delivery_time: Vec<Option<f64>> = vec![None; n];
    let mut hops: Vec<usize> = vec![0; n];
    let mut queue: EventQueue<(usize, usize)> = EventQueue::new(); // (vertex, hop)
    if source < n {
        delivery_time[source] = Some(0.0);
        queue.schedule(0.0, (source, 0));
    }
    let mut completion_time = 0.0f64;
    let mut max_hops = 0usize;
    while let Some(event) = queue.pop() {
        let (u, hop) = event.payload;
        // Only the first delivery at a vertex triggers retransmission; later
        // (slower) deliveries are ignored.
        if delivery_time[u].is_none_or(|t| event.time > t + 1e-12) {
            continue;
        }
        completion_time = completion_time.max(event.time);
        max_hops = max_hops.max(hop);
        hops[u] = hop;
        for &v in digraph.out_neighbors(u) {
            let v = v as usize;
            let latency =
                config.base_latency + points[u].distance(&points[v]) / config.propagation_speed;
            let arrival = event.time + latency;
            if delivery_time[v].is_none_or(|t| arrival < t - 1e-12) {
                delivery_time[v] = Some(arrival);
                queue.schedule(arrival, (v, hop + 1));
            }
        }
    }
    let delivered = delivery_time.iter().filter(|t| t.is_some()).count();
    FloodingResult {
        source,
        delivered,
        total: n,
        completion_time,
        max_hops,
        delivery_time,
    }
}

/// Builds the omnidirectional communication digraph in which every sensor
/// reaches every other sensor within `radius` (a symmetric unit-disk graph).
///
/// Assembled through the CSR counting builder — one pass, no per-edge
/// duplicate scans even for the dense all-pairs case.
pub fn omnidirectional_digraph(points: &[Point], radius: f64) -> DiGraph {
    let n = points.len();
    DiGraph::from_adjacency(
        n,
        (0..n).map(|u| {
            (0..n).filter(move |&v| u != v && points[u].distance(&points[v]) <= radius + 1e-12)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_core::antenna::AntennaBudget;
    use antennae_core::instance::Instance;
    use antennae_core::solver::Solver;
    use antennae_geometry::PI;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    #[test]
    fn flooding_over_strongly_connected_scheme_reaches_everyone() {
        let points = random_points(40, 5);
        let instance = Instance::new(points.clone()).unwrap();
        let scheme = Solver::on(&instance)
            .with_budget(AntennaBudget::new(2, PI))
            .run()
            .unwrap()
            .scheme;
        for source in [0, 7, 39] {
            let result = flood(&points, &scheme, source, FloodingConfig::default());
            assert!(result.fully_delivered(), "source {source}");
            assert!((result.delivery_ratio() - 1.0).abs() < 1e-12);
            assert!(result.completion_time > 0.0);
            assert!(result.max_hops >= 1);
        }
    }

    #[test]
    fn flooding_over_partial_scheme_reports_partial_delivery() {
        // Only the first sensor has an antenna: nothing beyond its target is
        // ever reached, and the delivery ratio reflects that.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 5.0),
        ];
        let mut scheme = OrientationScheme::empty(points.len());
        scheme.assignments[0] = antennae_core::antenna::SensorAssignment::new(vec![
            antennae_core::antenna::Antenna::beam(&points[0], &points[1], 1.0),
        ]);
        let result = flood(&points, &scheme, 0, FloodingConfig::default());
        assert_eq!(result.delivered, 2);
        assert!(!result.fully_delivered());
        assert!(result.delivery_time[2].is_none());
    }

    #[test]
    fn latency_accounts_for_distance() {
        let points = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let mut scheme = OrientationScheme::empty(2);
        scheme.assignments[0] = antennae_core::antenna::SensorAssignment::new(vec![
            antennae_core::antenna::Antenna::beam(&points[0], &points[1], 100.0),
        ]);
        let config = FloodingConfig {
            base_latency: 1.0,
            propagation_speed: 100.0,
        };
        let result = flood(&points, &scheme, 0, config);
        assert!((result.delivery_time[1].unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn omnidirectional_digraph_is_symmetric() {
        let points = random_points(20, 9);
        let g = omnidirectional_digraph(&points, 4.0);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn directional_latency_at_least_omnidirectional() {
        // With the same radius available, the omnidirectional graph is a
        // supergraph of any induced directional graph, so flooding can only
        // be faster.
        let points = random_points(30, 11);
        let instance = Instance::new(points.clone()).unwrap();
        let scheme = Solver::on(&instance)
            .with_budget(AntennaBudget::new(3, 0.0))
            .run()
            .unwrap()
            .scheme;
        let radius = scheme.max_radius();
        let directional = flood(&points, &scheme, 0, FloodingConfig::default());
        let omni = flood_over_digraph(
            &points,
            &omnidirectional_digraph(&points, radius),
            0,
            FloodingConfig::default(),
        );
        assert!(omni.fully_delivered());
        assert!(directional.fully_delivered());
        assert!(omni.completion_time <= directional.completion_time + 1e-9);
    }

    #[test]
    fn empty_and_single_point_floods() {
        let empty = flood_over_digraph(&[], &DiGraph::new(0), 0, FloodingConfig::default());
        assert_eq!(empty.delivered, 0);
        assert_eq!(empty.delivery_ratio(), 0.0);

        let single = vec![Point::new(0.0, 0.0)];
        let result = flood(
            &single,
            &OrientationScheme::empty(1),
            0,
            FloodingConfig::default(),
        );
        assert_eq!(result.delivered, 1);
        assert!(result.fully_delivered());
        assert_eq!(result.max_hops, 0);
    }
}
