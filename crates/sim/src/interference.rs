//! Interference metrics for directional orientations.
//!
//! The capacity analysis of \[19\] that the paper cites argues that a narrower
//! transmission angle reduces the expected number of unintended receivers
//! inside a transmission zone, which is the source of the `√(2π/α)` capacity
//! gain.  This module measures exactly that quantity on concrete
//! orientations: for each antenna, the number of sensors lying inside its
//! sector (its potential interference set), minus the one intended receiver.

use antennae_core::scheme::OrientationScheme;
use antennae_geometry::Point;
use serde::{Deserialize, Serialize};

/// Interference statistics for an orientation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InterferenceStats {
    /// Total number of (antenna, covered sensor) incidences, excluding the
    /// antenna's own sensor.
    pub total_covered: usize,
    /// Mean number of sensors covered per antenna.
    pub mean_covered_per_antenna: f64,
    /// Maximum number of sensors covered by any single antenna.
    pub max_covered_per_antenna: usize,
    /// Number of antennae considered.
    pub antennas: usize,
}

/// Computes interference statistics: how many sensors fall inside each
/// antenna's sector.
pub fn interference_stats(points: &[Point], scheme: &OrientationScheme) -> InterferenceStats {
    let mut total = 0usize;
    let mut max_per_antenna = 0usize;
    let mut antenna_count = 0usize;
    for (u, assignment) in scheme.assignments.iter().enumerate() {
        if u >= points.len() {
            break;
        }
        let apex = points[u];
        for antenna in &assignment.antennas {
            antenna_count += 1;
            let sector = antenna.sector(apex);
            let covered = points
                .iter()
                .enumerate()
                .filter(|&(v, p)| v != u && sector.contains(p))
                .count();
            total += covered;
            max_per_antenna = max_per_antenna.max(covered);
        }
    }
    InterferenceStats {
        total_covered: total,
        mean_covered_per_antenna: if antenna_count == 0 {
            0.0
        } else {
            total as f64 / antenna_count as f64
        },
        max_covered_per_antenna: max_per_antenna,
        antennas: antenna_count,
    }
}

/// The interference of an omnidirectional deployment at range `radius`:
/// every sensor's disk covers all sensors within the radius.
pub fn omnidirectional_interference(points: &[Point], radius: f64) -> InterferenceStats {
    let n = points.len();
    let mut total = 0usize;
    let mut max_per = 0usize;
    for u in 0..n {
        let covered = (0..n)
            .filter(|&v| v != u && points[u].distance(&points[v]) <= radius + 1e-12)
            .count();
        total += covered;
        max_per = max_per.max(covered);
    }
    InterferenceStats {
        total_covered: total,
        mean_covered_per_antenna: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        max_covered_per_antenna: max_per,
        antennas: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_core::antenna::AntennaBudget;
    use antennae_core::instance::Instance;
    use antennae_core::solver::Solver;
    use antennae_geometry::PI;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    #[test]
    fn directional_orientation_interferes_less_than_omnidirectional() {
        let points = random_points(60, 3);
        let instance = Instance::new(points.clone()).unwrap();
        let scheme = Solver::on(&instance)
            .with_budget(AntennaBudget::new(2, PI))
            .run()
            .unwrap()
            .scheme;
        let directional = interference_stats(&points, &scheme);
        let omni = omnidirectional_interference(&points, scheme.max_radius());
        assert!(directional.total_covered > 0);
        assert!(
            directional.mean_covered_per_antenna < omni.mean_covered_per_antenna,
            "directional {} vs omni {}",
            directional.mean_covered_per_antenna,
            omni.mean_covered_per_antenna
        );
    }

    #[test]
    fn empty_scheme_has_zero_interference() {
        let points = random_points(10, 4);
        let stats = interference_stats(&points, &OrientationScheme::empty(points.len()));
        assert_eq!(stats.total_covered, 0);
        assert_eq!(stats.antennas, 0);
        assert_eq!(stats.mean_covered_per_antenna, 0.0);
    }

    #[test]
    fn omnidirectional_interference_with_huge_radius_covers_all_pairs() {
        let points = random_points(12, 5);
        let stats = omnidirectional_interference(&points, 1e6);
        assert_eq!(stats.total_covered, 12 * 11);
        assert_eq!(stats.max_covered_per_antenna, 11);
    }
}
