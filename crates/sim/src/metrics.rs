//! Summary-statistics helpers used by the experiment drivers.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value (0 when empty).
    pub min: f64,
    /// Maximum value (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (0 when empty).
    pub median: f64,
    /// 95th percentile (0 when empty).
    pub p95: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `values`.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let min = sorted[0];
        let max = sorted[count - 1];
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            min,
            max,
            mean,
            median: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            std_dev: var.sqrt(),
        }
    }
}

/// Percentile of an already sorted slice using linear interpolation between
/// closest ranks.  `pct` is in `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (pct / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Ratio of two values with a protected denominator (returns 0 when the
/// denominator is 0).
pub fn safe_ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator.abs() < f64::EPSILON {
        0.0
    } else {
        numerator / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!(s.p95 >= 3.5 && s.p95 <= 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_single() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.count, 1);
        assert_eq!(single.median, 7.0);
        assert_eq!(single.p95, 7.0);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = vec![0.0, 10.0];
        assert!((percentile_of_sorted(&sorted, 50.0) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_of_sorted(&sorted, 100.0), 10.0);
        assert_eq!(percentile_of_sorted(&[], 50.0), 0.0);
    }

    #[test]
    fn safe_ratio_protects_zero_denominator() {
        assert_eq!(safe_ratio(4.0, 2.0), 2.0);
        assert_eq!(safe_ratio(4.0, 0.0), 0.0);
    }
}
