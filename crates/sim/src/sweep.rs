//! Parallel parameter sweeps.
//!
//! The experiments evaluate many independent `(workload, seed, k, φ)`
//! configurations; this module fans them out over an order-preserving
//! parallel map.  The primitive itself lives in
//! [`antennae_core::parallel`] so that the batch orientation pipeline
//! ([`antennae_core::batch::BatchOrienter`]) and the experiment drivers
//! share one implementation; this module re-exports it under the historic
//! `sweep` path.
//!
//! Results are returned in input order, so reports stay deterministic
//! regardless of the thread count.
//!
//! # Examples
//!
//! ```
//! use antennae_sim::sweep::parallel_map;
//!
//! let items: Vec<u64> = (0..100).collect();
//! let squares = parallel_map(&items, 4, |x| x * x);
//! assert_eq!(squares[9], 81);
//! assert_eq!(squares.len(), 100);
//! ```

pub use antennae_core::parallel::{default_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;

    /// The behavioural suite lives with the implementation in
    /// `antennae_core::parallel`; this only pins the re-exported paths.
    #[test]
    fn reexports_resolve_and_run() {
        let out = parallel_map(&[1u32, 2, 3], default_threads(), |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
