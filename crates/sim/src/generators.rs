//! Seeded sensor-deployment generators.
//!
//! Two families are provided: *stochastic* deployments (uniform, clustered,
//! perturbed grids, annuli) that model the ad-hoc networks the paper's
//! introduction targets, and *extremal* deployments (regular polygons with a
//! centre, stars with long arms, paths) that realize the worst-case
//! configurations used in the paper's proofs (the regular `d`-gon of Lemma 1,
//! the degree-5 MST vertices of Theorem 3, the fan configurations of
//! Figures 5 and 6).

use antennae_geometry::{Point, TAU};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A reproducible description of a point-set workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointSetGenerator {
    /// `n` points uniform in the axis-aligned square `[0, side]²`.
    UniformSquare {
        /// Number of sensors.
        n: usize,
        /// Side length of the square.
        side: f64,
    },
    /// `n` points uniform in a disk of the given radius.
    UniformDisk {
        /// Number of sensors.
        n: usize,
        /// Radius of the deployment disk.
        radius: f64,
    },
    /// `n` points split evenly across `clusters` Gaussian-ish clusters whose
    /// centres are uniform in `[0, side]²`.
    Clustered {
        /// Number of sensors.
        n: usize,
        /// Number of clusters.
        clusters: usize,
        /// Side length of the region containing the cluster centres.
        side: f64,
        /// Standard deviation (spread) of each cluster.
        spread: f64,
    },
    /// A `cols × rows` unit grid.
    Grid {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// A `cols × rows` unit grid with every point perturbed uniformly by at
    /// most `jitter` in each coordinate.
    PerturbedGrid {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
        /// Maximum absolute perturbation per coordinate.
        jitter: f64,
    },
    /// `n` points uniform in an annulus (models deployments around an
    /// obstacle).
    Annulus {
        /// Number of sensors.
        n: usize,
        /// Inner radius.
        inner: f64,
        /// Outer radius.
        outer: f64,
    },
    /// A centre point surrounded by a regular `d`-gon at unit distance — the
    /// extremal configuration of Lemma 1's necessity argument (Figure 1).
    RegularPolygonStar {
        /// Number of polygon vertices (the centre's degree).
        d: usize,
    },
    /// A centre with `arms` straight arms of `arm_length` unit-spaced
    /// sensors each — forces high-degree MST vertices (Figures 5/6).
    StarArms {
        /// Number of arms.
        arms: usize,
        /// Sensors per arm (excluding the centre).
        arm_length: usize,
    },
    /// `n` collinear sensors at unit spacing — the degenerate path instance.
    Path {
        /// Number of sensors.
        n: usize,
    },
}

impl PointSetGenerator {
    /// A human-readable label used in experiment reports.
    pub fn label(&self) -> String {
        match self {
            PointSetGenerator::UniformSquare { n, .. } => format!("uniform(n={n})"),
            PointSetGenerator::UniformDisk { n, .. } => format!("disk(n={n})"),
            PointSetGenerator::Clustered { n, clusters, .. } => {
                format!("clustered(n={n},c={clusters})")
            }
            PointSetGenerator::Grid { cols, rows } => format!("grid({cols}x{rows})"),
            PointSetGenerator::PerturbedGrid { cols, rows, .. } => {
                format!("pgrid({cols}x{rows})")
            }
            PointSetGenerator::Annulus { n, .. } => format!("annulus(n={n})"),
            PointSetGenerator::RegularPolygonStar { d } => format!("polygon(d={d})"),
            PointSetGenerator::StarArms { arms, arm_length } => {
                format!("star(a={arms},l={arm_length})")
            }
            PointSetGenerator::Path { n } => format!("path(n={n})"),
        }
    }

    /// Number of sensors the generator produces.
    pub fn size(&self) -> usize {
        match self {
            PointSetGenerator::UniformSquare { n, .. }
            | PointSetGenerator::UniformDisk { n, .. }
            | PointSetGenerator::Clustered { n, .. }
            | PointSetGenerator::Annulus { n, .. }
            | PointSetGenerator::Path { n } => *n,
            PointSetGenerator::Grid { cols, rows }
            | PointSetGenerator::PerturbedGrid { cols, rows, .. } => cols * rows,
            PointSetGenerator::RegularPolygonStar { d } => d + 1,
            PointSetGenerator::StarArms { arms, arm_length } => arms * arm_length + 1,
        }
    }

    /// Generates the point set with a deterministic seed.
    pub fn generate(&self, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            PointSetGenerator::UniformSquare { n, side } => (0..n)
                .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
                .collect(),
            PointSetGenerator::UniformDisk { n, radius } => (0..n)
                .map(|_| {
                    let theta: f64 = rng.random_range(0.0..TAU);
                    // sqrt for a uniform area density.
                    let r = radius * rng.random_range(0.0f64..1.0).sqrt();
                    Point::new(r * theta.cos(), r * theta.sin())
                })
                .collect(),
            PointSetGenerator::Clustered {
                n,
                clusters,
                side,
                spread,
            } => {
                let clusters = clusters.max(1);
                let centers: Vec<Point> = (0..clusters)
                    .map(|_| Point::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
                    .collect();
                (0..n)
                    .map(|i| {
                        let c = centers[i % clusters];
                        // Sum of two uniforms approximates a Gaussian well
                        // enough for workload purposes.
                        let dx = (rng.random_range(-1.0..1.0f64) + rng.random_range(-1.0..1.0f64))
                            * spread;
                        let dy = (rng.random_range(-1.0..1.0f64) + rng.random_range(-1.0..1.0f64))
                            * spread;
                        Point::new(c.x + dx, c.y + dy)
                    })
                    .collect()
            }
            PointSetGenerator::Grid { cols, rows } => (0..rows)
                .flat_map(|r| (0..cols).map(move |c| Point::new(c as f64, r as f64)))
                .collect(),
            PointSetGenerator::PerturbedGrid { cols, rows, jitter } => (0..rows)
                .flat_map(|r| (0..cols).map(move |c| (c, r)))
                .map(|(c, r)| {
                    Point::new(
                        c as f64 + rng.random_range(-jitter..=jitter),
                        r as f64 + rng.random_range(-jitter..=jitter),
                    )
                })
                .collect(),
            PointSetGenerator::Annulus { n, inner, outer } => (0..n)
                .map(|_| {
                    let theta: f64 = rng.random_range(0.0..TAU);
                    let r2 = rng.random_range((inner * inner)..(outer * outer));
                    let r = r2.sqrt();
                    Point::new(r * theta.cos(), r * theta.sin())
                })
                .collect(),
            PointSetGenerator::RegularPolygonStar { d } => {
                let mut pts = vec![Point::new(0.0, 0.0)];
                pts.extend((0..d).map(|i| {
                    let theta = TAU * i as f64 / d.max(1) as f64;
                    Point::new(theta.cos(), theta.sin())
                }));
                pts
            }
            PointSetGenerator::StarArms { arms, arm_length } => {
                let mut pts = vec![Point::new(0.0, 0.0)];
                for a in 0..arms {
                    let theta = TAU * a as f64 / arms.max(1) as f64;
                    for step in 1..=arm_length {
                        pts.push(Point::new(
                            step as f64 * theta.cos(),
                            step as f64 * theta.sin(),
                        ));
                    }
                }
                pts
            }
            PointSetGenerator::Path { n } => (0..n).map(|i| Point::new(i as f64, 0.0)).collect(),
        }
    }
}

/// The default stochastic workload mix used by the Table 1 experiment:
/// uniform squares of three sizes, a clustered deployment and a perturbed
/// grid.
pub fn standard_workloads() -> Vec<PointSetGenerator> {
    vec![
        PointSetGenerator::UniformSquare { n: 50, side: 10.0 },
        PointSetGenerator::UniformSquare { n: 100, side: 10.0 },
        PointSetGenerator::UniformSquare { n: 250, side: 20.0 },
        PointSetGenerator::Clustered {
            n: 100,
            clusters: 5,
            side: 30.0,
            spread: 1.5,
        },
        PointSetGenerator::PerturbedGrid {
            cols: 10,
            rows: 10,
            jitter: 0.3,
        },
    ]
}

/// The extremal workloads used by the worst-case gallery example and the
/// figure experiments.
pub fn extremal_workloads() -> Vec<PointSetGenerator> {
    vec![
        PointSetGenerator::RegularPolygonStar { d: 5 },
        PointSetGenerator::StarArms {
            arms: 5,
            arm_length: 3,
        },
        PointSetGenerator::Path { n: 20 },
        PointSetGenerator::Annulus {
            n: 60,
            inner: 5.0,
            outer: 6.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_geometry::Aabb;

    #[test]
    fn generators_produce_declared_sizes() {
        for g in standard_workloads().into_iter().chain(extremal_workloads()) {
            let pts = g.generate(7);
            assert_eq!(pts.len(), g.size(), "{}", g.label());
            assert!(pts.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = PointSetGenerator::UniformSquare { n: 30, side: 5.0 };
        assert_eq!(g.generate(1), g.generate(1));
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn uniform_square_stays_in_bounds() {
        let g = PointSetGenerator::UniformSquare { n: 200, side: 3.0 };
        let bbox = Aabb::from_points(&g.generate(11)).unwrap();
        assert!(bbox.min.x >= 0.0 && bbox.min.y >= 0.0);
        assert!(bbox.max.x <= 3.0 && bbox.max.y <= 3.0);
    }

    #[test]
    fn disk_and_annulus_respect_radii() {
        let disk = PointSetGenerator::UniformDisk {
            n: 300,
            radius: 2.0,
        };
        for p in disk.generate(3) {
            assert!(p.distance(&Point::ORIGIN) <= 2.0 + 1e-9);
        }
        let annulus = PointSetGenerator::Annulus {
            n: 300,
            inner: 1.0,
            outer: 2.0,
        };
        for p in annulus.generate(3) {
            let d = p.distance(&Point::ORIGIN);
            assert!((1.0 - 1e-9..=2.0 + 1e-9).contains(&d));
        }
    }

    #[test]
    fn grid_produces_integer_lattice() {
        let g = PointSetGenerator::Grid { cols: 4, rows: 3 };
        let pts = g.generate(0);
        assert_eq!(pts.len(), 12);
        assert!(pts.contains(&Point::new(3.0, 2.0)));
        assert!(pts.contains(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn regular_polygon_star_has_unit_spokes() {
        let g = PointSetGenerator::RegularPolygonStar { d: 6 };
        let pts = g.generate(0);
        assert_eq!(pts.len(), 7);
        for p in &pts[1..] {
            assert!((p.distance(&pts[0]) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn star_arms_are_straight_and_unit_spaced() {
        let g = PointSetGenerator::StarArms {
            arms: 4,
            arm_length: 3,
        };
        let pts = g.generate(0);
        assert_eq!(pts.len(), 13);
        // The first arm lies along the +x axis.
        assert!(pts[1].approx_eq(&Point::new(1.0, 0.0), 1e-9));
        assert!(pts[2].approx_eq(&Point::new(2.0, 0.0), 1e-9));
        assert!(pts[3].approx_eq(&Point::new(3.0, 0.0), 1e-9));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            PointSetGenerator::UniformSquare { n: 10, side: 1.0 }.label(),
            "uniform(n=10)"
        );
        assert_eq!(PointSetGenerator::Path { n: 4 }.label(), "path(n=4)");
        assert_eq!(
            PointSetGenerator::RegularPolygonStar { d: 5 }.label(),
            "polygon(d=5)"
        );
    }

    #[test]
    fn clustered_points_follow_their_centers() {
        let g = PointSetGenerator::Clustered {
            n: 120,
            clusters: 3,
            side: 100.0,
            spread: 0.5,
        };
        let pts = g.generate(9);
        assert_eq!(pts.len(), 120);
        // The overall bounding box is much larger than a single cluster.
        let bbox = Aabb::from_points(&pts).unwrap();
        assert!(bbox.diagonal() > 5.0);
    }
}
