//! Concurrency oracle: many client threads hammer many deployments through
//! the full protocol path, then every deployment's final state is compared
//! **bit for bit** against a bare [`DynamicSolverSession`] replaying the
//! same edit sequence single-threaded.
//!
//! Design of the determinism argument: each deployment's edit stream is
//! produced and issued by exactly one writer thread (so the per-tenant
//! order is fixed), while threads interleave freely *across* deployments
//! and extra reader threads fire `QUERY`/`STATS`/`VERIFY` at random tenants
//! throughout.  Anything the service computes differently under that
//! concurrency — a torn snapshot, a lost buffered edit, a repair racing a
//! read — shows up as a mismatch against the serial replay.

use antennae_core::antenna::AntennaBudget;
use antennae_core::bounds::theorem2_spread_threshold;
use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae_geometry::Point;
use antennae_serve::{LocalClient, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One scripted deployment: seed points plus an edit stream with embedded
/// flush points.
#[derive(Clone)]
struct Script {
    name: String,
    k: usize,
    phi: f64,
    seeds: Vec<Point>,
    /// `(edit, flush_after)` — when `flush_after` is set the writer issues
    /// ORIENT or VERIFY right after buffering this edit.
    edits: Vec<(Edit, bool)>,
}

/// Deterministic per-deployment script; ids follow the serve-side
/// projection rules (inserts get monotonically increasing ids).
fn build_script(index: usize, rng: &mut StdRng) -> Script {
    let k = 1 + index % 3;
    let phi = theorem2_spread_threshold(k);
    let n0 = 3 + rng.random_range(0..5usize);
    let seeds: Vec<Point> = (0..n0)
        .map(|_| Point::new(rng.random_range(-8.0..8.0), rng.random_range(-8.0..8.0)))
        .collect();

    // Track projected liveness exactly like the server's edit buffer does.
    let mut alive: Vec<bool> = vec![true; n0];
    let mut edits = Vec::new();
    for _ in 0..rng.random_range(6..18usize) {
        let live: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
        let roll = rng.random_range(0.0..1.0f64);
        let edit = if live.is_empty() || roll < 0.45 {
            alive.push(true);
            Edit::Insert(Point::new(
                rng.random_range(-8.0..8.0),
                rng.random_range(-8.0..8.0),
            ))
        } else if roll < 0.7 {
            let id = live[rng.random_range(0..live.len())];
            alive[id] = false;
            Edit::Remove(id)
        } else {
            let id = live[rng.random_range(0..live.len())];
            Edit::Move(
                id,
                Point::new(rng.random_range(-8.0..8.0), rng.random_range(-8.0..8.0)),
            )
        };
        edits.push((edit, rng.random_range(0.0..1.0f64) < 0.3));
    }
    Script {
        name: format!("tenant-{index}"),
        k,
        phi,
        seeds,
        edits,
    }
}

fn edit_line(name: &str, edit: &Edit) -> String {
    match edit {
        Edit::Insert(p) => format!("EDIT {name} INSERT {} {}", p.x, p.y),
        Edit::Remove(id) => format!("EDIT {name} REMOVE {id}"),
        Edit::Move(id, p) => format!("EDIT {name} MOVE {id} {} {}", p.x, p.y),
    }
}

/// Replays a script on a bare session, single-threaded, flushing at the
/// same points the wire script flushes (batch boundaries must match for
/// the comparison to be meaningful at the `apply_coalesced` level).
fn serial_replay(script: &Script) -> DynamicSolverSession {
    let inst = DynamicInstance::new(&script.seeds).expect("seed instance");
    let mut session = DynamicSolverSession::new(inst, AntennaBudget::new(script.k, script.phi))
        .expect("seed session");
    let mut batch: Vec<Edit> = Vec::new();
    for (edit, flush) in &script.edits {
        batch.push(*edit);
        if *flush {
            session.apply_coalesced(&batch).expect("serial batch");
            batch.clear();
        }
    }
    session.apply_coalesced(&batch).expect("serial tail batch");
    session
}

#[test]
fn concurrent_tenants_match_serial_replay_bit_for_bit() {
    let writers = 6;
    let tenants_per_writer = 4;
    let mut rng = StdRng::seed_from_u64(0x0907_2009);
    let scripts: Vec<Script> = (0..writers * tenants_per_writer)
        .map(|i| build_script(i, &mut rng))
        .collect();

    let service = Arc::new(Service::new());
    let stop_readers = Arc::new(AtomicBool::new(false));

    // Reader threads: constant snapshot/stat pressure on random tenants
    // while the writers mutate them.  Responses must merely be structured;
    // unknown-deployment is fine early on (CREATEs race the readers).
    let reader_handles: Vec<_> = (0..3)
        .map(|r| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop_readers);
            let names: Vec<String> = scripts.iter().map(|s| s.name.clone()).collect();
            std::thread::spawn(move || {
                let client = LocalClient::new(service);
                let mut rng = StdRng::seed_from_u64(0xbeef + r as u64);
                let mut reads = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let name = &names[rng.random_range(0..names.len())];
                    let line = match rng.random_range(0..3u8) {
                        0 => format!("QUERY {name}"),
                        1 => format!("STATS {name}"),
                        _ => "STATS".to_string(),
                    };
                    let response = client.request(&line).to_line();
                    assert!(
                        response.starts_with("OK ") || response.starts_with("ERR "),
                        "unstructured response under load: {response}"
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Writer threads: each owns a disjoint slice of the scripts and drives
    // them through the protocol, interleaving its tenants edit by edit.
    let writer_handles: Vec<_> = scripts
        .chunks(tenants_per_writer)
        .map(|chunk| {
            let service = Arc::clone(&service);
            let chunk: Vec<Script> = chunk.to_vec();
            std::thread::spawn(move || {
                let client = LocalClient::new(service);
                let mut rng = StdRng::seed_from_u64(chunk.len() as u64);
                for script in &chunk {
                    let mut line = format!("CREATE {} {} {}", script.name, script.k, script.phi);
                    for p in &script.seeds {
                        line.push_str(&format!(" {} {}", p.x, p.y));
                    }
                    let created = client.request(&line).to_line();
                    assert!(created.starts_with("OK created"), "{created}");
                }
                // Interleave the chunk's tenants: cursors advance round-robin
                // with random skips, so per-tenant order is preserved while
                // cross-tenant order is scrambled.
                let mut cursors = vec![0usize; chunk.len()];
                loop {
                    let open: Vec<usize> = (0..chunk.len())
                        .filter(|&t| cursors[t] < chunk[t].edits.len())
                        .collect();
                    if open.is_empty() {
                        break;
                    }
                    let t = open[rng.random_range(0..open.len())];
                    let script = &chunk[t];
                    let (edit, flush) = &script.edits[cursors[t]];
                    cursors[t] += 1;
                    let response = client.request(&edit_line(&script.name, edit)).to_line();
                    assert!(response.starts_with("OK edit"), "{response}");
                    if *flush {
                        let verb = if cursors[t].is_multiple_of(2) {
                            "ORIENT"
                        } else {
                            "VERIFY"
                        };
                        let flushed = client.request(&format!("{verb} {}", script.name)).to_line();
                        assert!(flushed.starts_with("OK "), "{flushed}");
                    }
                }
                // Drain whatever is still buffered.
                for script in &chunk {
                    let flushed = client.request(&format!("ORIENT {}", script.name)).to_line();
                    assert!(flushed.starts_with("OK orient"), "{flushed}");
                }
            })
        })
        .collect();

    for handle in writer_handles {
        handle.join().expect("writer thread");
    }
    stop_readers.store(true, Ordering::Relaxed);
    let mut total_reads = 0;
    for handle in reader_handles {
        total_reads += handle.join().expect("reader thread");
    }
    assert!(total_reads > 0, "readers never ran");

    // Oracle comparison: served state == serial bare-session replay.
    for script in &scripts {
        let mut oracle = serial_replay(script);
        let tenant = service.registry().get(&script.name).expect("tenant");
        tenant.with_session_mut(|served| {
            let (a, b) = (served.instance(), oracle.instance());
            assert_eq!(a.ids(), b.ids(), "{}: live ids", script.name);
            for id in a.ids() {
                assert_eq!(
                    a.point(id).unwrap(),
                    b.point(id).unwrap(),
                    "{}: position of {id}",
                    script.name
                );
            }
            assert_eq!(
                a.lmax().to_bits(),
                b.lmax().to_bits(),
                "{}: lmax",
                script.name
            );
            assert_eq!(
                a.mst_total_weight().to_bits(),
                b.mst_total_weight().to_bits(),
                "{}: MST weight",
                script.name
            );
            assert_eq!(
                served.algorithm(),
                oracle.algorithm(),
                "{}: algorithm",
                script.name
            );
            assert_eq!(served.scheme(), oracle.scheme(), "{}: scheme", script.name);
            assert_eq!(
                served.digraph(),
                oracle.digraph(),
                "{}: digraph",
                script.name
            );
            let (ra, rb) = (served.report(), oracle.report());
            assert_eq!(
                ra.is_strongly_connected, rb.is_strongly_connected,
                "{}: connectivity",
                script.name
            );
            assert_eq!(ra.scc_count, rb.scc_count, "{}: scc", script.name);
            assert_eq!(ra.edge_count, rb.edge_count, "{}: edges", script.name);
            assert_eq!(
                ra.max_radius.to_bits(),
                rb.max_radius.to_bits(),
                "{}: max radius",
                script.name
            );
            assert_eq!(
                ra.max_radius_over_lmax.to_bits(),
                rb.max_radius_over_lmax.to_bits(),
                "{}: radius ratio",
                script.name
            );
            assert_eq!(
                ra.max_spread_sum.to_bits(),
                rb.max_spread_sum.to_bits(),
                "{}: spread",
                script.name
            );
            assert_eq!(ra.violations, rb.violations, "{}: violations", script.name);
        });

        // The published snapshot agrees with the session it was taken from.
        let snapshot = tenant.snapshot();
        assert_eq!(
            snapshot.n,
            oracle.instance().len(),
            "{}: snapshot n",
            script.name
        );
        assert_eq!(
            snapshot.lmax.to_bits(),
            oracle.instance().lmax().to_bits(),
            "{}: snapshot lmax",
            script.name
        );
        assert_eq!(
            snapshot.mst_weight.to_bits(),
            oracle.instance().mst_total_weight().to_bits(),
            "{}: snapshot MST weight",
            script.name
        );
    }
}

/// A narrower but nastier variant: several writers share ONE deployment,
/// each writer only inserting (commutative at the set level is NOT assumed
/// — we assert the *count and liveness* invariants, not positions-by-id,
/// since cross-writer interleaving is nondeterministic by design).
#[test]
fn shared_tenant_survives_racing_writers() {
    let service = Arc::new(Service::new());
    let client = LocalClient::new(Arc::clone(&service));
    let phi = theorem2_spread_threshold(2);
    let created = client
        .request(&format!("CREATE shared 2 {phi} 0 0 3 0 0 3"))
        .to_line();
    assert!(created.starts_with("OK created"), "{created}");

    let writers = 4;
    let inserts_each = 25;
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let client = LocalClient::new(service);
                let mut rng = StdRng::seed_from_u64(w as u64);
                for i in 0..inserts_each {
                    let x = rng.random_range(-10.0..10.0);
                    let y = rng.random_range(-10.0..10.0);
                    let response = client
                        .request(&format!("EDIT shared INSERT {x} {y}"))
                        .to_line();
                    assert!(response.starts_with("OK edit shared id="), "{response}");
                    if i % 7 == 0 {
                        let flushed = client.request("ORIENT shared").to_line();
                        assert!(flushed.starts_with("OK orient shared"), "{flushed}");
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer");
    }

    let final_verify = client.request("VERIFY shared").to_line();
    assert!(final_verify.contains("valid=true"), "{final_verify}");
    let snapshot = service.registry().get("shared").unwrap().snapshot();
    assert_eq!(snapshot.n, 3 + writers * inserts_each, "no insert lost");
    // Ids were handed out densely: every id below the bound is live.
    let ids: Vec<usize> = snapshot.positions.iter().map(|&(id, _)| id).collect();
    assert_eq!(ids, (0..snapshot.n).collect::<Vec<_>>());
}
