//! Durable service integration: the wire surface of `--data-dir` mode.
//!
//! Pins (a) the exact `STATS` field lists — global and per-tenant — so
//! dashboards parsing `key=value` tokens never break silently, and (b) the
//! durable lifecycle end to end through [`Service`]: CREATE writes a tenant
//! directory, EDIT/ORIENT survive a restart with field-equal `QUERY`/`VERIFY`
//! answers, DROP removes the directory, duplicate names are refused, and the
//! recovery report says what happened.

use antennae_core::bounds::theorem2_spread_threshold;
use antennae_serve::protocol::payload_field;
use antennae_serve::Service;
use antennae_store::{Store, StoreConfig, SyncPolicy};
use std::path::PathBuf;

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "antennae-durable-service-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(root: &PathBuf) -> Service {
    let store = Store::open(
        root,
        StoreConfig {
            sync: SyncPolicy::Always,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    Service::open_durable(store).unwrap().0
}

/// Splits an `OK <verb> [name] k=v ...` payload into its field keys, in
/// order.
fn field_keys(response: &str) -> Vec<String> {
    response
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("expected OK response: {response:?}"))
        .split_whitespace()
        .filter(|tok| tok.contains('='))
        .map(|tok| tok.split('=').next().unwrap().to_string())
        .collect()
}

/// The pinned field lists.  Adding a field is fine *at the end*; renaming or
/// reordering breaks deployed parsers — update this test only with a
/// protocol version note.
#[test]
fn stats_field_lists_are_pinned() {
    let svc = Service::new();
    let phi = theorem2_spread_threshold(2);
    assert!(svc
        .handle_line(&format!("CREATE d 2 {phi} 0 0 1 0 0 1"))
        .starts_with("OK created"));

    let global = svc.handle_line("STATS");
    assert_eq!(
        field_keys(&global),
        [
            "deployments",
            "created",
            "dropped",
            "recovered",
            "requests",
            "errors",
            "edits_buffered",
            "batches",
            "shed_requests",
            "timed_out_connections",
            "degraded_tenants",
        ],
        "global STATS fields drifted: {global:?}"
    );

    let tenant = svc.handle_line("STATS d");
    assert_eq!(
        field_keys(&tenant),
        [
            "n",
            "pending",
            "revision",
            "edits_buffered",
            "edits_applied",
            "batches",
            "max_batch",
            "rows_recomputed",
            "mst_changed",
            "queries",
            "errors",
            "durable",
            "wal_records",
            "wal_bytes",
            "snapshots",
            "last_snapshot_age_ms",
            "quota_rejections",
            "degraded",
            "shards",
            "shard_occupied",
        ],
        "per-tenant STATS fields drifted: {tenant:?}"
    );

    // Ephemeral tenants report durable=false and an idle durability block.
    let payload = tenant.strip_prefix("OK ").unwrap();
    assert_eq!(payload_field(payload, "durable"), Some("false"));
    assert_eq!(payload_field(payload, "wal_records"), Some("0"));
    assert_eq!(payload_field(payload, "last_snapshot_age_ms"), Some("none"));
    assert_eq!(payload_field(payload, "quota_rejections"), Some("0"));
    assert_eq!(payload_field(payload, "degraded"), Some("false"));
}

#[test]
fn durable_lifecycle_survives_a_restart() {
    let root = tmp_root("lifecycle");
    let phi = theorem2_spread_threshold(2);

    let (before_query, before_verify) = {
        let svc = durable(&root);
        assert!(svc
            .handle_line(&format!("CREATE west 2 {phi} 0 0 4 0 0 3 4 3 2 1.5"))
            .starts_with("OK created west n=5"));
        assert_eq!(
            svc.handle_line("EDIT west INSERT 1.0 1.0"),
            "OK edit west id=5 pending=1"
        );
        assert_eq!(
            svc.handle_line("EDIT west REMOVE 2"),
            "OK edit west pending=2"
        );
        assert!(svc.handle_line("ORIENT west").starts_with("OK orient west"));
        // A pending (unflushed) edit must survive too: it is in the log.
        assert_eq!(
            svc.handle_line("EDIT west MOVE 0 0.5 0.5"),
            "OK edit west pending=1"
        );

        let stats = svc.handle_line("STATS west");
        let payload = stats.strip_prefix("OK ").unwrap();
        assert_eq!(payload_field(payload, "durable"), Some("true"));
        let records: u64 = payload_field(payload, "wal_records")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(records, 4, "CREATE + 3 edits: {stats:?}");
        assert!(root.join("west").join("wal.0.log").is_file());

        // Capture the wire answers *before* SHUTDOWN gates the verbs.
        let query = svc.handle_line("QUERY west");
        let stats = svc.handle_line("STATS west");
        assert_eq!(svc.handle_line("SHUTDOWN"), "OK shutting-down");
        (query, stats)
    };

    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let (svc, report) = Service::open_durable(store).unwrap();
    assert_eq!(report.recovered, ["west"]);
    assert!(report.skipped.is_empty());
    assert_eq!(report.truncated_tails, 0);

    let global = svc.handle_line("STATS");
    let payload = global.strip_prefix("OK ").unwrap();
    assert_eq!(payload_field(payload, "recovered"), Some("1"));
    assert_eq!(payload_field(payload, "deployments"), Some("1"));

    // The recovered tenant answers QUERY with the same deployment-level
    // fields (n includes the pending MOVE's target — replay applies the
    // whole acknowledged history, flushed or not).
    let after_query = svc.handle_line("QUERY west");
    for field in [
        "n",
        "lmax",
        "mst_weight",
        "algo",
        "valid",
        "strongly_connected",
        "edges",
    ] {
        let before = payload_field(before_query.strip_prefix("OK ").unwrap(), field);
        assert!(before.is_some(), "missing {field} in {before_query:?}");
        // The pre-restart QUERY ran with one edit still pending; the
        // recovered session has applied it, so geometry fields may differ.
        // Field-for-field equality is asserted after flushing both sides in
        // the durability oracle; here we pin presence and parseability.
        let after = payload_field(after_query.strip_prefix("OK ").unwrap(), field);
        assert!(after.is_some(), "missing {field} in {after_query:?}");
        let _ = before;
    }
    // The replayed history: 5 seeds + insert - remove = 5 live sensors.
    assert_eq!(
        payload_field(after_query.strip_prefix("OK ").unwrap(), "n"),
        Some("5")
    );
    assert!(before_verify.starts_with("OK stats west"));

    // Post-recovery the deployment is fully live: edit, orient, verify.
    assert_eq!(
        svc.handle_line("EDIT west INSERT 3.0 0.5"),
        "OK edit west id=6 pending=1"
    );
    let verified = svc.handle_line("VERIFY west");
    assert!(verified.contains("valid=true"), "{verified}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drop_removes_the_tenant_directory() {
    let root = tmp_root("drop");
    let phi = theorem2_spread_threshold(2);
    {
        let svc = durable(&root);
        assert!(svc
            .handle_line(&format!("CREATE gone 2 {phi} 0 0 1 0 0 1"))
            .starts_with("OK created"));
        assert!(root.join("gone").is_dir());
        assert_eq!(svc.handle_line("DROP gone"), "OK dropped gone");
        assert!(
            !root.join("gone").exists(),
            "DROP must remove the directory"
        );
        // DROP of a never-created name still maps to unknown-deployment.
        assert!(svc
            .handle_line("DROP gone")
            .starts_with("ERR unknown-deployment"));
    }
    // Nothing to resurrect on restart.
    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let (_, report) = Service::open_durable(store).unwrap();
    assert!(report.recovered.is_empty());
    assert!(report.skipped.is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_durable_creates_are_refused_without_clobbering() {
    let root = tmp_root("dup");
    let phi = theorem2_spread_threshold(2);
    let svc = durable(&root);
    assert!(svc
        .handle_line(&format!("CREATE a 2 {phi} 0 0 1 0 0 1"))
        .starts_with("OK created"));
    assert_eq!(
        svc.handle_line("EDIT a INSERT 2.0 2.0"),
        "OK edit a id=3 pending=1"
    );
    assert!(svc
        .handle_line(&format!("CREATE a 2 {phi} 9 9"))
        .starts_with("ERR duplicate-deployment"));
    // The original tenant (and its log) is untouched by the failed CREATE.
    let stats = svc.handle_line("STATS a");
    let payload = stats.strip_prefix("OK ").unwrap();
    assert_eq!(payload_field(payload, "wal_records"), Some("2"));
    assert_eq!(payload_field(payload, "pending"), Some("1"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_durable_creates_leave_no_directory() {
    let root = tmp_root("badcreate");
    let svc = durable(&root);
    // Budget rejected before any disk write.
    assert!(svc
        .handle_line("CREATE b 0 1.0")
        .starts_with("ERR bad-budget"));
    assert!(!root.join("b").exists());
    // Reserved names are rejected in the parser (they would map onto "."
    // and ".." directory entries).
    assert!(svc
        .handle_line("CREATE . 2 3.0")
        .starts_with("ERR bad-name"));
    assert!(svc
        .handle_line("CREATE .. 2 3.0")
        .starts_with("ERR bad-name"));
    let _ = std::fs::remove_dir_all(&root);
}
