//! Protocol robustness suite: the service must answer **every** request
//! line — byte soup, hostile numbers, oversized payloads, wrong arity —
//! with a structured `OK`/`ERR` response, never panic, and never wedge
//! (it keeps answering afterwards).
//!
//! The suite drives the full parse → execute → serialize path through
//! [`Service::handle_line`], exactly what both the TCP server and the
//! in-process client call.

use antennae_core::bounds::theorem2_spread_threshold;
use antennae_serve::protocol::{payload_field, ErrorCode, MAX_CREATE_POINTS, MAX_NAME_BYTES};
use antennae_serve::{LocalClient, Service};
use proptest::prelude::*;
use std::sync::Arc;

/// A response line is structured iff it is `OK`/`OK <payload>` or
/// `ERR <code> <message>` with a known code, and newline-free.
fn assert_structured(line: &str) {
    assert!(!line.contains('\n'), "response must be one line: {line:?}");
    if line == "OK" || line.starts_with("OK ") {
        return;
    }
    let rest = line
        .strip_prefix("ERR ")
        .unwrap_or_else(|| panic!("response is neither OK nor ERR: {line:?}"));
    let code = rest.split_whitespace().next().unwrap_or("");
    assert!(
        ErrorCode::ALL.iter().any(|c| c.as_str() == code),
        "unknown error code {code:?} in {line:?}"
    );
}

fn expect_err(service: &Service, line: &str, code: ErrorCode) {
    let response = service.handle_line(line);
    let want = format!("ERR {} ", code.as_str());
    assert!(
        response.starts_with(&want),
        "{line:?} should answer {want:?}.., got {response:?}"
    );
}

#[test]
fn hostile_lines_get_structured_errors() {
    let service = Service::new();
    let phi2 = theorem2_spread_threshold(2);
    assert!(service
        .handle_line(&format!("CREATE base 2 {phi2} 0 0 1 0 2 1"))
        .starts_with("OK created"));

    // Unknown and miscased verbs.
    expect_err(&service, "FROB base", ErrorCode::UnknownVerb);
    expect_err(&service, "create base 2 1.0", ErrorCode::UnknownVerb);
    expect_err(&service, "", ErrorCode::BadRequest);
    expect_err(&service, "   ", ErrorCode::BadRequest);

    // Arity and number trouble.
    expect_err(&service, "CREATE", ErrorCode::BadRequest);
    expect_err(&service, "CREATE base", ErrorCode::BadRequest);
    expect_err(&service, "CREATE x two 1.0", ErrorCode::BadNumber);
    expect_err(&service, "CREATE x 2 spread", ErrorCode::BadNumber);
    expect_err(&service, "CREATE x 2 1.0 5", ErrorCode::BadRequest); // dangling x
    expect_err(&service, "EDIT base INSERT 1", ErrorCode::BadRequest);
    expect_err(&service, "EDIT base REMOVE -1", ErrorCode::BadNumber);
    expect_err(&service, "EDIT base TELEPORT 1 2", ErrorCode::BadRequest);
    expect_err(&service, "QUERY base 3 extra", ErrorCode::BadRequest);
    expect_err(&service, "PING extra", ErrorCode::BadRequest);

    // Non-finite and non-numeric coordinates are rejected in the parser,
    // before any solver code sees them.
    expect_err(&service, "EDIT base INSERT NaN 0", ErrorCode::BadCoordinate);
    expect_err(&service, "EDIT base INSERT 0 inf", ErrorCode::BadCoordinate);
    expect_err(
        &service,
        "EDIT base INSERT -inf 0",
        ErrorCode::BadCoordinate,
    );
    expect_err(
        &service,
        "EDIT base MOVE 0 1e999 0",
        ErrorCode::BadCoordinate,
    );
    expect_err(
        &service,
        &format!("CREATE n 2 {phi2} nan 1"),
        ErrorCode::BadCoordinate,
    );

    // Names: charset and length caps.
    expect_err(&service, "CREATE bad/name 2 1.0", ErrorCode::BadName);
    expect_err(&service, "CREATE bad:name 2 1.0", ErrorCode::BadName);
    let long = "x".repeat(MAX_NAME_BYTES + 1);
    expect_err(
        &service,
        &format!("CREATE {long} 2 1.0"),
        ErrorCode::TooLarge,
    );

    // Tenancy errors.
    expect_err(
        &service,
        &format!("CREATE base 2 {phi2}"),
        ErrorCode::DuplicateDeployment,
    );
    expect_err(
        &service,
        "EDIT ghost INSERT 1 1",
        ErrorCode::UnknownDeployment,
    );
    expect_err(&service, "ORIENT ghost", ErrorCode::UnknownDeployment);
    expect_err(&service, "DROP ghost", ErrorCode::UnknownDeployment);
    expect_err(&service, "QUERY base 999", ErrorCode::UnknownSensor);
    expect_err(&service, "EDIT base REMOVE 999", ErrorCode::UnknownSensor);

    // Budgets nothing serves.
    expect_err(&service, "CREATE b 0 1.0", ErrorCode::BadBudget);
    expect_err(&service, "CREATE b 6 1.0", ErrorCode::BadBudget);

    // RECOVER and AUTH arity/name/size trouble.
    expect_err(&service, "RECOVER", ErrorCode::BadRequest);
    expect_err(&service, "RECOVER base extra", ErrorCode::BadRequest);
    expect_err(&service, "RECOVER ghost", ErrorCode::UnknownDeployment);
    expect_err(&service, "RECOVER bad/name", ErrorCode::BadName);
    expect_err(&service, "AUTH", ErrorCode::BadRequest);
    expect_err(&service, "AUTH two tokens", ErrorCode::BadRequest);
    let long_token = "t".repeat(MAX_NAME_BYTES + 1);
    expect_err(&service, &format!("AUTH {long_token}"), ErrorCode::TooLarge);
    // RECOVER on a healthy tenant is an idempotent no-op.
    assert_eq!(
        service.handle_line("RECOVER base"),
        "OK recover base degraded=false pending=0"
    );

    // Oversized CREATE payload: one point past the cap.
    let mut big = format!("CREATE big 2 {phi2}");
    for i in 0..=MAX_CREATE_POINTS {
        big.push_str(&format!(" {i} 0"));
    }
    expect_err(&service, &big, ErrorCode::TooLarge);

    // After all of that abuse the service still works.
    assert_eq!(service.handle_line("PING"), "OK pong");
    assert!(service
        .handle_line("ORIENT base")
        .starts_with("OK orient base n=3"));
}

#[test]
fn error_codes_round_trip_and_cover_the_wire_grammar() {
    for code in ErrorCode::ALL {
        let s = code.as_str();
        assert!(!s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'));
    }
    // The wire vocabulary is pinned: adding a code extends this list (and
    // deployed clients must treat unknown codes as opaque errors); renaming
    // or removing one breaks them.
    let on_the_wire: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
    assert_eq!(
        on_the_wire,
        [
            "unknown-verb",
            "bad-request",
            "bad-number",
            "bad-coordinate",
            "too-large",
            "bad-name",
            "duplicate-deployment",
            "unknown-deployment",
            "unknown-sensor",
            "bad-budget",
            "empty-deployment",
            "shutting-down",
            "storage",
            "degraded",
            "overloaded",
            "unauthorized",
            "internal",
        ]
    );
}

#[test]
fn auth_gates_every_verb_but_ping() {
    let mut svc = Service::new();
    svc.set_auth_token(Some("sesame".to_string()));
    let service = Arc::new(svc);

    // The ctx-free entry point fabricates an unauthenticated connection per
    // line: with a token configured it can only PING.
    assert_eq!(service.handle_line("PING"), "OK pong");
    expect_err(&service, "STATS", ErrorCode::Unauthorized);
    expect_err(&service, "CREATE a 2 3.8 0 0 1 0", ErrorCode::Unauthorized);
    // Unauthenticated probes learn nothing about the deployment set: the
    // answer is the same for names that exist and names that don't.
    expect_err(&service, "QUERY ghost", ErrorCode::Unauthorized);

    // A connection-holding client authenticates once, then works.
    let client = LocalClient::new(Arc::clone(&service));
    let denied = client.request("AUTH wrong-token");
    assert!(denied.to_line().starts_with("ERR unauthorized"));
    let denied = client.request("STATS");
    assert!(denied.to_line().starts_with("ERR unauthorized"));
    assert_eq!(client.request("AUTH sesame").to_line(), "OK auth ok");
    assert!(client.request("STATS").to_line().starts_with("OK stats"));

    // Authentication is per connection, not per service.
    let stranger = LocalClient::new(Arc::clone(&service));
    assert!(stranger
        .request("STATS")
        .to_line()
        .starts_with("ERR unauthorized"));
}

#[test]
fn quota_rejections_answer_overloaded_with_a_retry_hint() {
    let mut svc = Service::new();
    svc.set_tenant_quota(Some(2));
    let service = Arc::new(svc);
    let phi = theorem2_spread_threshold(2);
    assert!(service
        .handle_line(&format!("CREATE q 2 {phi} 0 0 1 0 0 1"))
        .starts_with("OK created"));

    assert!(service.handle_line("EDIT q INSERT 2 2").starts_with("OK"));
    assert!(service.handle_line("EDIT q INSERT 3 3").starts_with("OK"));
    let shed = service.handle_line("EDIT q INSERT 4 4");
    assert!(shed.starts_with("ERR overloaded"), "{shed}");
    assert!(shed.contains("retry-after-ms="), "{shed}");

    let stats = service.handle_line("STATS q");
    let payload = stats.strip_prefix("OK ").unwrap();
    assert_eq!(payload_field(payload, "quota_rejections"), Some("1"));
    assert_eq!(payload_field(payload, "pending"), Some("2"));

    // Draining the buffer restores write service.
    assert!(service.handle_line("ORIENT q").starts_with("OK orient"));
    assert!(service.handle_line("EDIT q INSERT 4 4").starts_with("OK"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printable byte soup: every line gets a structured response and the
    /// service answers PING afterwards.
    #[test]
    fn byte_soup_never_wedges(
        raw in proptest::collection::vec(
            proptest::collection::vec(32u8..127, 0..80), 1..12),
    ) {
        let service = Service::new();
        for bytes in &raw {
            let line = String::from_utf8_lossy(bytes).into_owned();
            assert_structured(&service.handle_line(&line));
        }
        prop_assert_eq!(service.handle_line("PING"), "OK pong");
    }

    /// Control characters, NULs and invalid UTF-8 fragments (lossily
    /// decoded, as the socket framer does) are handled too.
    #[test]
    fn binary_soup_never_wedges(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..60), 1..12),
    ) {
        let service = Service::new();
        for bytes in &raw {
            // The framer strips the newline terminator; embedded CR/LF in a
            // "line" cannot reach handle_line, so model that here.
            let line: String = String::from_utf8_lossy(bytes)
                .chars()
                .filter(|&c| c != '\n' && c != '\r')
                .collect();
            assert_structured(&service.handle_line(&line));
        }
        prop_assert_eq!(service.handle_line("PING"), "OK pong");
    }

    /// Structured fuzz around one live deployment: random verbs with random
    /// numeric fields, hostile or not, never panic, never wedge, and never
    /// corrupt the deployment (a final ORIENT still verifies).
    #[test]
    fn fuzzed_requests_leave_the_deployment_healthy(
        ops in proptest::collection::vec(
            (0usize..8, -4.0f64..4.0, -4.0f64..4.0, 0usize..12), 1..40),
    ) {
        let service = Service::new();
        let phi = theorem2_spread_threshold(2);
        let created = service.handle_line(
            &format!("CREATE d 2 {phi} 0 0 1 0 0 1 1 1"));
        prop_assert!(created.starts_with("OK created"));

        for &(verb, x, y, id) in &ops {
            let line = match verb {
                0 => format!("EDIT d INSERT {x} {y}"),
                1 => format!("EDIT d REMOVE {id}"),
                2 => format!("EDIT d MOVE {id} {x} {y}"),
                3 => "ORIENT d".to_string(),
                4 => "VERIFY d".to_string(),
                5 => format!("QUERY d {id}"),
                6 => "STATS d".to_string(),
                // Hostile: coordinates sensors can never have.
                _ => format!("EDIT d INSERT {} {y}", f64::NAN),
            };
            assert_structured(&service.handle_line(&line));
        }

        let verdict = service.handle_line("VERIFY d");
        prop_assert!(verdict.starts_with("OK verify d "), "{}", verdict);
    }
}
