//! Protocol robustness suite: the service must answer **every** request
//! line — byte soup, hostile numbers, oversized payloads, wrong arity —
//! with a structured `OK`/`ERR` response, never panic, and never wedge
//! (it keeps answering afterwards).
//!
//! The suite drives the full parse → execute → serialize path through
//! [`Service::handle_line`], exactly what both the TCP server and the
//! in-process client call.

use antennae_core::bounds::theorem2_spread_threshold;
use antennae_serve::protocol::{ErrorCode, MAX_CREATE_POINTS, MAX_NAME_BYTES};
use antennae_serve::Service;
use proptest::prelude::*;

/// A response line is structured iff it is `OK`/`OK <payload>` or
/// `ERR <code> <message>` with a known code, and newline-free.
fn assert_structured(line: &str) {
    assert!(!line.contains('\n'), "response must be one line: {line:?}");
    if line == "OK" || line.starts_with("OK ") {
        return;
    }
    let rest = line
        .strip_prefix("ERR ")
        .unwrap_or_else(|| panic!("response is neither OK nor ERR: {line:?}"));
    let code = rest.split_whitespace().next().unwrap_or("");
    assert!(
        ErrorCode::ALL.iter().any(|c| c.as_str() == code),
        "unknown error code {code:?} in {line:?}"
    );
}

fn expect_err(service: &Service, line: &str, code: ErrorCode) {
    let response = service.handle_line(line);
    let want = format!("ERR {} ", code.as_str());
    assert!(
        response.starts_with(&want),
        "{line:?} should answer {want:?}.., got {response:?}"
    );
}

#[test]
fn hostile_lines_get_structured_errors() {
    let service = Service::new();
    let phi2 = theorem2_spread_threshold(2);
    assert!(service
        .handle_line(&format!("CREATE base 2 {phi2} 0 0 1 0 2 1"))
        .starts_with("OK created"));

    // Unknown and miscased verbs.
    expect_err(&service, "FROB base", ErrorCode::UnknownVerb);
    expect_err(&service, "create base 2 1.0", ErrorCode::UnknownVerb);
    expect_err(&service, "", ErrorCode::BadRequest);
    expect_err(&service, "   ", ErrorCode::BadRequest);

    // Arity and number trouble.
    expect_err(&service, "CREATE", ErrorCode::BadRequest);
    expect_err(&service, "CREATE base", ErrorCode::BadRequest);
    expect_err(&service, "CREATE x two 1.0", ErrorCode::BadNumber);
    expect_err(&service, "CREATE x 2 spread", ErrorCode::BadNumber);
    expect_err(&service, "CREATE x 2 1.0 5", ErrorCode::BadRequest); // dangling x
    expect_err(&service, "EDIT base INSERT 1", ErrorCode::BadRequest);
    expect_err(&service, "EDIT base REMOVE -1", ErrorCode::BadNumber);
    expect_err(&service, "EDIT base TELEPORT 1 2", ErrorCode::BadRequest);
    expect_err(&service, "QUERY base 3 extra", ErrorCode::BadRequest);
    expect_err(&service, "PING extra", ErrorCode::BadRequest);

    // Non-finite and non-numeric coordinates are rejected in the parser,
    // before any solver code sees them.
    expect_err(&service, "EDIT base INSERT NaN 0", ErrorCode::BadCoordinate);
    expect_err(&service, "EDIT base INSERT 0 inf", ErrorCode::BadCoordinate);
    expect_err(
        &service,
        "EDIT base INSERT -inf 0",
        ErrorCode::BadCoordinate,
    );
    expect_err(
        &service,
        "EDIT base MOVE 0 1e999 0",
        ErrorCode::BadCoordinate,
    );
    expect_err(
        &service,
        &format!("CREATE n 2 {phi2} nan 1"),
        ErrorCode::BadCoordinate,
    );

    // Names: charset and length caps.
    expect_err(&service, "CREATE bad/name 2 1.0", ErrorCode::BadName);
    expect_err(&service, "CREATE bad:name 2 1.0", ErrorCode::BadName);
    let long = "x".repeat(MAX_NAME_BYTES + 1);
    expect_err(
        &service,
        &format!("CREATE {long} 2 1.0"),
        ErrorCode::TooLarge,
    );

    // Tenancy errors.
    expect_err(
        &service,
        &format!("CREATE base 2 {phi2}"),
        ErrorCode::DuplicateDeployment,
    );
    expect_err(
        &service,
        "EDIT ghost INSERT 1 1",
        ErrorCode::UnknownDeployment,
    );
    expect_err(&service, "ORIENT ghost", ErrorCode::UnknownDeployment);
    expect_err(&service, "DROP ghost", ErrorCode::UnknownDeployment);
    expect_err(&service, "QUERY base 999", ErrorCode::UnknownSensor);
    expect_err(&service, "EDIT base REMOVE 999", ErrorCode::UnknownSensor);

    // Budgets nothing serves.
    expect_err(&service, "CREATE b 0 1.0", ErrorCode::BadBudget);
    expect_err(&service, "CREATE b 6 1.0", ErrorCode::BadBudget);

    // Oversized CREATE payload: one point past the cap.
    let mut big = format!("CREATE big 2 {phi2}");
    for i in 0..=MAX_CREATE_POINTS {
        big.push_str(&format!(" {i} 0"));
    }
    expect_err(&service, &big, ErrorCode::TooLarge);

    // After all of that abuse the service still works.
    assert_eq!(service.handle_line("PING"), "OK pong");
    assert!(service
        .handle_line("ORIENT base")
        .starts_with("OK orient base n=3"));
}

#[test]
fn error_codes_round_trip_and_cover_the_wire_grammar() {
    for code in ErrorCode::ALL {
        let s = code.as_str();
        assert!(!s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printable byte soup: every line gets a structured response and the
    /// service answers PING afterwards.
    #[test]
    fn byte_soup_never_wedges(
        raw in proptest::collection::vec(
            proptest::collection::vec(32u8..127, 0..80), 1..12),
    ) {
        let service = Service::new();
        for bytes in &raw {
            let line = String::from_utf8_lossy(bytes).into_owned();
            assert_structured(&service.handle_line(&line));
        }
        prop_assert_eq!(service.handle_line("PING"), "OK pong");
    }

    /// Control characters, NULs and invalid UTF-8 fragments (lossily
    /// decoded, as the socket framer does) are handled too.
    #[test]
    fn binary_soup_never_wedges(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..60), 1..12),
    ) {
        let service = Service::new();
        for bytes in &raw {
            // The framer strips the newline terminator; embedded CR/LF in a
            // "line" cannot reach handle_line, so model that here.
            let line: String = String::from_utf8_lossy(bytes)
                .chars()
                .filter(|&c| c != '\n' && c != '\r')
                .collect();
            assert_structured(&service.handle_line(&line));
        }
        prop_assert_eq!(service.handle_line("PING"), "OK pong");
    }

    /// Structured fuzz around one live deployment: random verbs with random
    /// numeric fields, hostile or not, never panic, never wedge, and never
    /// corrupt the deployment (a final ORIENT still verifies).
    #[test]
    fn fuzzed_requests_leave_the_deployment_healthy(
        ops in proptest::collection::vec(
            (0usize..8, -4.0f64..4.0, -4.0f64..4.0, 0usize..12), 1..40),
    ) {
        let service = Service::new();
        let phi = theorem2_spread_threshold(2);
        let created = service.handle_line(
            &format!("CREATE d 2 {phi} 0 0 1 0 0 1 1 1"));
        prop_assert!(created.starts_with("OK created"));

        for &(verb, x, y, id) in &ops {
            let line = match verb {
                0 => format!("EDIT d INSERT {x} {y}"),
                1 => format!("EDIT d REMOVE {id}"),
                2 => format!("EDIT d MOVE {id} {x} {y}"),
                3 => "ORIENT d".to_string(),
                4 => "VERIFY d".to_string(),
                5 => format!("QUERY d {id}"),
                6 => "STATS d".to_string(),
                // Hostile: coordinates sensors can never have.
                _ => format!("EDIT d INSERT {} {y}", f64::NAN),
            };
            assert_structured(&service.handle_line(&line));
        }

        let verdict = service.handle_line("VERIFY d");
        prop_assert!(verdict.starts_with("OK verify d "), "{}", verdict);
    }
}
