//! The TCP front door: `std::net` listener + line framing over the shared
//! [`Service`], one pooled job per connection.
//!
//! Framing is newline-delimited UTF-8 text, one request per line, one
//! response line per request, in order.  A line longer than
//! [`MAX_LINE_BYTES`] gets an
//! `ERR too-large` response and the connection is closed — the server never
//! buffers an unbounded line.  `SHUTDOWN` flips the service flag; the accept
//! loop notices via a self-connection (no async reactor to interrupt a
//! blocking `accept`), drains queued connections and joins the pool.
//!
//! Overload and abuse defence ([`ServerConfig`]):
//!
//! * **Load shedding** — with `max_queue` set the worker pool's backlog is
//!   bounded; a connection arriving past the cap is answered
//!   `ERR overloaded … retry-after-ms=…` and closed instead of queueing
//!   without bound (counted in `shed_requests`).
//! * **Read deadlines** — with `read_timeout` set a connection that dribbles
//!   bytes without completing a line (slow loris) or sits idle past the
//!   deadline is evicted (counted in `timed_out_connections`), so a handful
//!   of hostile sockets cannot pin every worker.

use crate::pool::{SubmitOutcome, WorkerPool};
use crate::protocol::{ErrorCode, ProtocolError, Response, MAX_LINE_BYTES};
use crate::service::Service;
use antennae_core::parallel::default_threads;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// The retry hint the shed path puts on the wire, milliseconds.
const RETRY_AFTER_MS: u64 = 100;

/// Robustness knobs for the TCP front door.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count (clamped to at least one by the pool).
    pub threads: usize,
    /// Per-connection read deadline.  `None` (the default) waits forever.
    pub read_timeout: Option<Duration>,
    /// Waiting-connection cap on the pool queue.  `None` (the default) is
    /// unbounded.
    pub max_queue: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: default_threads(),
            read_timeout: None,
            max_queue: None,
        }
    }
}

/// A running `orientd` server bound to a local address.
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the default
    /// worker count ([`default_threads`]).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Server::bind_with(addr, Arc::new(Service::new()), default_threads())
    }

    /// Binds to `addr` serving an existing [`Service`] with an explicit
    /// worker count (no deadlines, unbounded queue).
    pub fn bind_with(addr: &str, service: Arc<Service>, threads: usize) -> std::io::Result<Self> {
        Server::bind_with_config(
            addr,
            service,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds to `addr` serving an existing [`Service`] with explicit
    /// robustness knobs.
    pub fn bind_with_config(
        addr: &str,
        service: Arc<Service>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            service,
            listener,
            addr,
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service behind this listener.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Serves until a `SHUTDOWN` request is accepted, then force-closes the
    /// surviving connections, drains the pool and returns.  Blocks the
    /// calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let pool = match self.config.max_queue {
            Some(cap) => WorkerPool::bounded(self.config.threads, cap),
            None => WorkerPool::new(self.config.threads),
        };
        // Weak handles to every live connection so shutdown can unblock
        // workers parked in a read; pruned of dead entries on each accept.
        let connections: Mutex<Vec<Weak<TcpStream>>> = Mutex::new(Vec::new());
        let mut accept_error = None;
        for stream in self.listener.incoming() {
            if self.service.shutdown_requested() {
                break;
            }
            let stream = match stream {
                Ok(stream) => Arc::new(stream),
                // Transient accept errors (EINTR, resource pressure on a
                // single connection) shouldn't kill the server.
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            // The deadline applies from the first byte: a slow loris can't
            // hold a worker (or a queue slot's eventual worker) forever.
            let _ = stream.set_read_timeout(self.config.read_timeout);
            {
                let mut connections = connections.lock().expect("connection registry poisoned");
                connections.retain(|weak| weak.strong_count() > 0);
                connections.push(Arc::downgrade(&stream));
            }
            let service = Arc::clone(&self.service);
            let addr = self.addr;
            let shed_stream = Arc::clone(&stream);
            let outcome = pool.try_submit(move || {
                serve_connection(&service, &stream);
                // If this connection carried the SHUTDOWN (or closed during
                // a drain), poke the listener so the blocking `accept`
                // observes the flag without waiting for an outside caller.
                if service.shutdown_requested() {
                    let _ = TcpStream::connect(addr);
                }
            });
            if outcome == SubmitOutcome::Rejected {
                // Shed at the front door: one error line, then close.  The
                // write is best-effort — a client that already gave up just
                // sees the reset.
                self.service
                    .stats()
                    .shed_requests
                    .fetch_add(1, Ordering::Relaxed);
                let err = ProtocolError::new(
                    ErrorCode::Overloaded,
                    format!("connection queue is full; retry-after-ms={RETRY_AFTER_MS}"),
                );
                let mut line = Response::Err(err).to_line();
                line.push('\n');
                let _ = (&*shed_stream).write_all(line.as_bytes());
                let _ = shed_stream.shutdown(Shutdown::Both);
            }
            if self.service.shutdown_requested() {
                break;
            }
        }
        // Kick every worker out of its blocking read so the pool can drain.
        for weak in connections
            .lock()
            .expect("connection registry poisoned")
            .drain(..)
        {
            if let Some(stream) = weak.upgrade() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        pool.shutdown();
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spawns [`Server::run`] on a background thread and returns a handle
    /// that can stop it.  This is what the verify-script smoke test and the
    /// churn replay test use.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let service = Arc::clone(&self.service);
        let thread = std::thread::Builder::new()
            .name("orientd-accept".into())
            .spawn(move || self.run())
            .expect("spawning the accept thread");
        ServerHandle {
            addr,
            service,
            thread: Some(thread),
        }
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown and joins the accept thread.  Live connections are
    /// force-closed by the accept loop on its way out.
    pub fn stop(mut self) -> std::io::Result<()> {
        self.service.request_shutdown();
        // A throwaway connection unblocks the (blocking) `accept` so the
        // loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        match self.thread.take() {
            Some(thread) => thread.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.service.request_shutdown();
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

/// Serves one connection: read lines, answer lines, until EOF, an oversized
/// line, or a fatal socket error.
///
/// Pipelining: a client that writes a burst of request lines before reading
/// gets the whole burst's responses in one coalesced socket write — after
/// answering a line, every *complete* line already sitting in the read
/// buffer is answered into the `BufWriter` before the single flush.  A
/// well-behaved request/response client sees identical behavior (its lone
/// line is followed by an empty buffer), while a pipelined burst of `m`
/// requests pays one syscall instead of `m` (measured by the `serve` bench's
/// pipelined sweep).
fn serve_connection(service: &Service, stream: &TcpStream) {
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
    let mut lines = LineReader::new(stream);
    let mut conn = service.new_conn();
    'conn: loop {
        // Block for the first line of the next burst.
        let mut next = match lines.next_line() {
            Ok(Some(line)) => Some(line),
            Ok(None) => break 'conn,
            Err(LineError::TooLong) => {
                let err = ProtocolError::new(
                    ErrorCode::TooLarge,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                let _ = writer.write_all(crate::protocol::Response::Err(err).to_line().as_bytes());
                let _ = writer.write_all(b"\n");
                break 'conn;
            }
            Err(LineError::TimedOut) => {
                // Deadline eviction: close without a response — the write
                // side may be equally wedged, and the count is what the
                // operator watches.
                service
                    .stats()
                    .timed_out_connections
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(LineError::Io) => return,
        };
        while let Some(line) = next {
            let response = service.handle_line_on(&line, &mut conn);
            if writer
                .write_all(response.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                return;
            }
            // Draining: once shutdown is requested, answer the request in
            // flight and close — don't hold a worker for a client that can
            // keep the socket open indefinitely.
            if service.shutdown_requested() {
                break 'conn;
            }
            next = lines.buffered_line();
        }
        if writer.flush().is_err() {
            return;
        }
    }
    let _ = writer.flush();
}

enum LineError {
    TooLong,
    TimedOut,
    Io,
}

/// Incremental newline framer with a hard cap on buffered bytes.  We roll
/// our own instead of `BufRead::read_line` because the latter happily grows
/// its buffer without bound on a malicious unterminated line.
struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    pending: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: vec![0; 8 * 1024],
            start: 0,
            end: 0,
            pending: Vec::new(),
        }
    }

    /// A complete line already sitting in the buffer, if any — never touches
    /// the underlying stream.  This is what lets the connection loop answer
    /// a whole pipelined burst before flushing once.
    fn buffered_line(&mut self) -> Option<String> {
        let pos = self.buf[self.start..self.end]
            .iter()
            .position(|&b| b == b'\n')?;
        let mut line = std::mem::take(&mut self.pending);
        line.extend_from_slice(&self.buf[self.start..self.start + pos]);
        self.start += pos + 1;
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    /// The next complete line (without the terminator), `None` on clean EOF.
    fn next_line(&mut self) -> Result<Option<String>, LineError> {
        loop {
            // Scan what we have buffered for a newline.
            if let Some(line) = self.buffered_line() {
                return Ok(Some(line));
            }
            // No newline buffered: stash the fragment and refill.
            self.pending
                .extend_from_slice(&self.buf[self.start..self.end]);
            self.start = 0;
            self.end = 0;
            if self.pending.len() > MAX_LINE_BYTES {
                return Err(LineError::TooLong);
            }
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(None);
                    }
                    // Final unterminated line.
                    let line = std::mem::take(&mut self.pending);
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                Ok(n) => self.end = n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // With a read deadline set, both flavours the platform may
                // report mean the same thing: the peer dribbled too slowly.
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(LineError::TimedOut)
                }
                Err(_) => return Err(LineError::Io),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_frames_and_caps() {
        let input = b"PING\r\nSTATS\nlast-without-newline".to_vec();
        let mut reader = LineReader::new(&input[..]);
        assert_eq!(reader.next_line().ok().flatten().as_deref(), Some("PING"));
        assert_eq!(reader.next_line().ok().flatten().as_deref(), Some("STATS"));
        assert_eq!(
            reader.next_line().ok().flatten().as_deref(),
            Some("last-without-newline")
        );
        assert!(reader.next_line().ok().flatten().is_none());

        let oversized = vec![b'x'; MAX_LINE_BYTES + 16];
        let mut reader = LineReader::new(&oversized[..]);
        assert!(matches!(reader.next_line(), Err(LineError::TooLong)));
    }

    #[test]
    fn buffered_line_drains_a_burst_without_reading() {
        let input = b"PING\nPING\nPI".to_vec();
        let mut reader = LineReader::new(&input[..]);
        // The blocking read pulls the whole burst into the buffer…
        assert_eq!(reader.next_line().ok().flatten().as_deref(), Some("PING"));
        // …and the second complete line is available without another read.
        assert_eq!(reader.buffered_line().as_deref(), Some("PING"));
        // The trailing fragment is not a complete line.
        assert_eq!(reader.buffered_line(), None);
        // The fragment is still delivered by the next blocking read (EOF).
        assert_eq!(reader.next_line().ok().flatten().as_deref(), Some("PI"));
    }

    #[test]
    fn pipelined_bursts_answer_in_order_over_tcp() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut stream = TcpStream::connect(addr).unwrap();
        // One write carrying a whole burst; responses must come back in
        // request order, one line each.
        let burst =
            "PING\nCREATE p 2 3.8 0 0 1 0 0 1\nEDIT p INSERT 2 2\nORIENT p\nQUERY p\nPING\n";
        stream.write_all(burst.as_bytes()).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut all = String::new();
        stream.read_to_string(&mut all).unwrap();
        let lines: Vec<&str> = all.lines().collect();
        assert_eq!(lines.len(), 6, "{all:?}");
        assert_eq!(lines[0], "OK pong");
        assert!(lines[1].starts_with("OK created p n=3"), "{}", lines[1]);
        assert_eq!(lines[2], "OK edit p id=3 pending=1");
        assert!(lines[3].starts_with("OK orient p n=4"), "{}", lines[3]);
        assert!(lines[4].starts_with("OK query p n=4"), "{}", lines[4]);
        assert_eq!(lines[5], "OK pong");
        handle.stop().unwrap();
    }
}
