//! # antennae-serve
//!
//! Orientation-as-a-service: a multi-tenant deployment server over the
//! dynamic solver sessions of `antennae-core`.
//!
//! The crate is layered so every piece is testable without a socket:
//!
//! - [`protocol`] — the line protocol: total (never-panicking) request
//!   parser, structured error codes, response serializer.  One request per
//!   line, one response line per request.
//! - [`registry`] — named deployments ("tenants"), each owning a
//!   [`DynamicSolverSession`](antennae_core::DynamicSolverSession) behind a
//!   per-tenant mutex, with buffered edits coalesced into one incremental
//!   repair at the next `ORIENT`/`VERIFY`, and lock-free published
//!   snapshots so `QUERY` never waits on a repair in flight.
//! - [`service`] — request execution: the transport-independent
//!   `handle_line` core both front doors share.
//! - [`pool`] — a hand-rolled fixed-size worker pool (`Mutex<VecDeque>` +
//!   `Condvar`), optionally bounded for load shedding; the container has no
//!   async runtime.
//! - [`server`] — the `std::net` TCP front door with capped line framing,
//!   clean shutdown, and the [`server::ServerConfig`] robustness knobs
//!   (read deadlines, bounded queue).
//! - [`client`] — a blocking socket client plus an in-process
//!   [`LocalClient`] used by the oracle tests and the throughput bench.
//!
//! ## Protocol sketch
//!
//! ```text
//! CREATE <name> <k> <phi> [x y]...      EDIT <name> INSERT <x> <y>
//! EDIT <name> REMOVE <id>               EDIT <name> MOVE <id> <x> <y>
//! ORIENT <name>      VERIFY <name>      QUERY <name> [id]
//! STATS [<name>]     DROP <name>        PING        SHUTDOWN
//! RECOVER <name>     AUTH <token>
//! ```
//!
//! Responses are `OK <payload>` or `ERR <code> <message>`; see
//! [`protocol::ErrorCode`] for the code vocabulary.
//!
//! ## Graceful degradation
//!
//! A storage fault (failed WAL append/sync/rollback, poisoned compaction)
//! flips the affected tenant to **degraded-read-only**: mutations answer
//! `ERR degraded …` while `QUERY`/`VERIFY` keep serving the last published
//! snapshot; `RECOVER <name>` re-attempts the I/O and restores full
//! service.  Overload is shed rather than queued without bound
//! (`ERR overloaded … retry-after-ms=…`), and with `--auth-token-file` the
//! only verb an unauthenticated connection can use is `PING`.  The chaos
//! oracle (`tests/chaos_oracle.rs`) drives injected fault scripts through
//! this surface and checks no acknowledged edit is ever lost.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use client::{LocalClient, TcpClient};
pub use pool::{SubmitOutcome, WorkerPool};
pub use protocol::{parse_request, ErrorCode, ProtocolError, Request, Response};
pub use registry::{Registry, Snapshot, Tenant};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{ConnState, RecoveryReport, Service};
