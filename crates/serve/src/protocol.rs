//! The line-delimited text protocol `orientd` speaks.
//!
//! One request per line, ASCII, whitespace-separated tokens; one response
//! line per request.  The full grammar (square brackets mark optional parts,
//! `...` repetition):
//!
//! ```text
//! CREATE <name> <k> <phi> [<x> <y>]...     register a deployment
//! EDIT <name> INSERT <x> <y>               buffer a sensor arrival
//! EDIT <name> REMOVE <id>                  buffer a sensor failure
//! EDIT <name> MOVE <id> <x> <y>            buffer a sensor relocation
//! ORIENT <name>                            flush buffered edits, one repair
//! VERIFY <name>                            flush + full verification verdict
//! QUERY <name> [<id>]                      snapshot read (never repairs)
//! STATS [<name>]                           server / per-tenant counters
//! DROP <name>                              unregister a deployment
//! RECOVER <name>                           retry I/O, exit degraded mode
//! AUTH <token>                             authenticate this connection
//! PING                                     liveness probe
//! SHUTDOWN                                 ask the server to stop accepting
//! ```
//!
//! Responses are `OK <payload>` or `ERR <code> <message>`; the code is one
//! of the kebab-case [`ErrorCode`] values, so clients can dispatch on it
//! without parsing the human-readable message.  The parser is total: every
//! input line — truncated, non-numeric, NaN/infinite coordinates, unknown
//! verbs, oversized payloads — maps to either a request or a structured
//! error, never a panic (pinned by the robustness suite in
//! `tests/protocol_robustness.rs`).

use std::fmt;

/// Hard cap on one request line, in bytes.  The connection reader enforces
/// it at the framing layer (a longer line is answered with
/// [`ErrorCode::TooLarge`] and the connection is dropped); the parser
/// re-checks it so in-process callers get the same contract.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Hard cap on a deployment name, in bytes.
pub const MAX_NAME_BYTES: usize = 64;

/// Hard cap on the number of seed points in one `CREATE`.
pub const MAX_CREATE_POINTS: usize = 65_536;

/// Structured error codes, stable across releases; the first token after
/// `ERR` in a response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The verb is not part of the protocol.
    UnknownVerb,
    /// The line is structurally malformed (missing/extra fields).
    BadRequest,
    /// A numeric field did not parse.
    BadNumber,
    /// A coordinate is NaN or infinite.
    BadCoordinate,
    /// The line, name or point payload exceeds a hard cap.
    TooLarge,
    /// The deployment name is empty or contains forbidden characters.
    BadName,
    /// `CREATE` named an already-registered deployment.
    DuplicateDeployment,
    /// The named deployment is not registered.
    UnknownDeployment,
    /// An edit referenced a sensor id that is not live.
    UnknownSensor,
    /// The requested antenna budget is outside what the registry serves.
    BadBudget,
    /// The operation needs at least one live sensor.
    EmptyDeployment,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The durability layer failed (WAL append, snapshot or tenant
    /// directory I/O); the in-memory state did not change.
    Storage,
    /// The deployment is in degraded-read-only mode after a durability
    /// fault: reads keep serving the last published snapshot, mutations
    /// are rejected until a `RECOVER` succeeds.
    Degraded,
    /// The server (bounded worker queue) or the tenant (pending-edit
    /// quota) is at capacity; the message carries a `retry-after-ms=`
    /// hint.
    Overloaded,
    /// The connection has not presented the configured auth token (or
    /// presented a wrong one); only `PING` and `AUTH` are allowed.
    Unauthorized,
    /// An internal invariant failed (reported, never panicked).
    Internal,
}

impl ErrorCode {
    /// Every code in the vocabulary, for exhaustive wire-grammar checks.
    pub const ALL: [ErrorCode; 17] = [
        ErrorCode::UnknownVerb,
        ErrorCode::BadRequest,
        ErrorCode::BadNumber,
        ErrorCode::BadCoordinate,
        ErrorCode::TooLarge,
        ErrorCode::BadName,
        ErrorCode::DuplicateDeployment,
        ErrorCode::UnknownDeployment,
        ErrorCode::UnknownSensor,
        ErrorCode::BadBudget,
        ErrorCode::EmptyDeployment,
        ErrorCode::ShuttingDown,
        ErrorCode::Storage,
        ErrorCode::Degraded,
        ErrorCode::Overloaded,
        ErrorCode::Unauthorized,
        ErrorCode::Internal,
    ];

    /// The kebab-case wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::BadNumber => "bad-number",
            ErrorCode::BadCoordinate => "bad-coordinate",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::BadName => "bad-name",
            ErrorCode::DuplicateDeployment => "duplicate-deployment",
            ErrorCode::UnknownDeployment => "unknown-deployment",
            ErrorCode::UnknownSensor => "unknown-sensor",
            ErrorCode::BadBudget => "bad-budget",
            ErrorCode::EmptyDeployment => "empty-deployment",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Storage => "storage",
            ErrorCode::Degraded => "degraded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured protocol-level failure: the `ERR <code> <message>` half of
/// the response grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Machine-readable code (the first token after `ERR`).
    pub code: ErrorCode,
    /// Human-readable single-line message.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error, flattening any newlines out of the message so the
    /// response stays a single line.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        let mut message = message.into();
        if message.contains(['\n', '\r']) {
            message = message.replace(['\n', '\r'], " ");
        }
        ProtocolError { code, message }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// One buffered edit operation (protocol-level; ids and coordinates are
/// validated, liveness is checked against the tenant's projected live set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EditOp {
    /// A sensor arrives at `(x, y)`.
    Insert(f64, f64),
    /// The sensor with the given id fails.
    Remove(usize),
    /// The sensor with the given id moves to `(x, y)`.
    Move(usize, f64, f64),
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `CREATE <name> <k> <phi> [<x> <y>]...`
    Create {
        /// Deployment name (registry key).
        name: String,
        /// Antennae per sensor.
        k: usize,
        /// Total angular spread budget per sensor, radians.
        phi: f64,
        /// Seed sensor locations (may be empty — deployments can start
        /// empty and grow through edits).
        points: Vec<(f64, f64)>,
    },
    /// `EDIT <name> INSERT|REMOVE|MOVE ...`
    Edit {
        /// Deployment name.
        name: String,
        /// The buffered operation.
        op: EditOp,
    },
    /// `ORIENT <name>` — flush buffered edits through one coalesced repair.
    Orient {
        /// Deployment name.
        name: String,
    },
    /// `VERIFY <name>` — flush, then report the full verification verdict.
    Verify {
        /// Deployment name.
        name: String,
    },
    /// `QUERY <name> [<id>]` — read the last repaired snapshot.
    Query {
        /// Deployment name.
        name: String,
        /// Optional sensor id to look up.
        id: Option<usize>,
    },
    /// `STATS [<name>]` — server-wide or per-tenant counters.
    Stats {
        /// Deployment name (`None` = server-wide).
        name: Option<String>,
    },
    /// `DROP <name>` — unregister the deployment.
    Drop {
        /// Deployment name.
        name: String,
    },
    /// `RECOVER <name>` — re-attempt the failed I/O behind a degraded
    /// deployment and exit degraded mode if it succeeds.  A no-op `OK` on a
    /// healthy deployment.
    Recover {
        /// Deployment name.
        name: String,
    },
    /// `AUTH <token>` — authenticate this connection.  Always `OK` when the
    /// server has no token configured.
    Auth {
        /// The presented token.
        token: String,
    },
    /// `PING` — liveness probe.
    Ping,
    /// `SHUTDOWN` — stop accepting connections and exit cleanly.
    Shutdown,
}

fn err(code: ErrorCode, message: impl Into<String>) -> ProtocolError {
    ProtocolError::new(code, message)
}

fn parse_name(token: &str) -> Result<String, ProtocolError> {
    if token.is_empty() {
        return Err(err(ErrorCode::BadName, "deployment name is empty"));
    }
    if token.len() > MAX_NAME_BYTES {
        return Err(err(
            ErrorCode::TooLarge,
            format!("name exceeds {MAX_NAME_BYTES} bytes"),
        ));
    }
    if !token
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
    {
        return Err(err(
            ErrorCode::BadName,
            format!("name {token:?} has characters outside [A-Za-z0-9_.-]"),
        ));
    }
    // Durable mode maps names onto directories: the path-navigation names
    // must never reach the filesystem layer.
    if token == "." || token == ".." {
        return Err(err(
            ErrorCode::BadName,
            format!("name {token:?} is reserved"),
        ));
    }
    Ok(token.to_string())
}

fn parse_usize(token: &str, what: &str) -> Result<usize, ProtocolError> {
    token.parse::<usize>().map_err(|_| {
        err(
            ErrorCode::BadNumber,
            format!("{what} {token:?} is not a non-negative integer"),
        )
    })
}

fn parse_f64(token: &str, what: &str) -> Result<f64, ProtocolError> {
    let v = token.parse::<f64>().map_err(|_| {
        err(
            ErrorCode::BadNumber,
            format!("{what} {token:?} is not a number"),
        )
    })?;
    if !v.is_finite() {
        return Err(err(
            ErrorCode::BadCoordinate,
            format!("{what} {token:?} is not finite"),
        ));
    }
    Ok(v)
}

fn expect_end(tokens: &mut std::str::SplitWhitespace<'_>, verb: &str) -> Result<(), ProtocolError> {
    match tokens.next() {
        None => Ok(()),
        Some(extra) => Err(err(
            ErrorCode::BadRequest,
            format!("{verb}: unexpected trailing token {extra:?}"),
        )),
    }
}

fn next_token<'a>(
    tokens: &mut std::str::SplitWhitespace<'a>,
    verb: &str,
    what: &str,
) -> Result<&'a str, ProtocolError> {
    tokens
        .next()
        .ok_or_else(|| err(ErrorCode::BadRequest, format!("{verb}: missing {what}")))
}

/// Parses one request line.  Total: every possible input maps to a request
/// or a [`ProtocolError`]; no input panics.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(err(
            ErrorCode::TooLarge,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| err(ErrorCode::BadRequest, "empty request line"))?;
    // Verbs are case-sensitive uppercase; this is a machine protocol, and a
    // single canonical spelling keeps replay logs diffable.
    match verb {
        "CREATE" => {
            let name = parse_name(next_token(&mut tokens, "CREATE", "deployment name")?)?;
            let k = parse_usize(next_token(&mut tokens, "CREATE", "antenna count k")?, "k")?;
            let phi = parse_f64(
                next_token(&mut tokens, "CREATE", "spread budget phi")?,
                "phi",
            )?;
            if phi < 0.0 {
                return Err(err(ErrorCode::BadBudget, "phi must be non-negative"));
            }
            let mut points = Vec::new();
            while let Some(tx) = tokens.next() {
                if points.len() >= MAX_CREATE_POINTS {
                    return Err(err(
                        ErrorCode::TooLarge,
                        format!("CREATE carries more than {MAX_CREATE_POINTS} points"),
                    ));
                }
                let x = parse_f64(tx, "x")?;
                let y = parse_f64(next_token(&mut tokens, "CREATE", "y coordinate")?, "y")?;
                points.push((x, y));
            }
            Ok(Request::Create {
                name,
                k,
                phi,
                points,
            })
        }
        "EDIT" => {
            let name = parse_name(next_token(&mut tokens, "EDIT", "deployment name")?)?;
            let op_verb = next_token(&mut tokens, "EDIT", "operation (INSERT|REMOVE|MOVE)")?;
            let op = match op_verb {
                "INSERT" => {
                    let x = parse_f64(next_token(&mut tokens, "EDIT INSERT", "x")?, "x")?;
                    let y = parse_f64(next_token(&mut tokens, "EDIT INSERT", "y")?, "y")?;
                    EditOp::Insert(x, y)
                }
                "REMOVE" => {
                    let id =
                        parse_usize(next_token(&mut tokens, "EDIT REMOVE", "sensor id")?, "id")?;
                    EditOp::Remove(id)
                }
                "MOVE" => {
                    let id = parse_usize(next_token(&mut tokens, "EDIT MOVE", "sensor id")?, "id")?;
                    let x = parse_f64(next_token(&mut tokens, "EDIT MOVE", "x")?, "x")?;
                    let y = parse_f64(next_token(&mut tokens, "EDIT MOVE", "y")?, "y")?;
                    EditOp::Move(id, x, y)
                }
                other => {
                    return Err(err(
                        ErrorCode::BadRequest,
                        format!("EDIT: unknown operation {other:?} (expected INSERT|REMOVE|MOVE)"),
                    ))
                }
            };
            expect_end(&mut tokens, "EDIT")?;
            Ok(Request::Edit { name, op })
        }
        "ORIENT" => {
            let name = parse_name(next_token(&mut tokens, "ORIENT", "deployment name")?)?;
            expect_end(&mut tokens, "ORIENT")?;
            Ok(Request::Orient { name })
        }
        "VERIFY" => {
            let name = parse_name(next_token(&mut tokens, "VERIFY", "deployment name")?)?;
            expect_end(&mut tokens, "VERIFY")?;
            Ok(Request::Verify { name })
        }
        "QUERY" => {
            let name = parse_name(next_token(&mut tokens, "QUERY", "deployment name")?)?;
            let id = match tokens.next() {
                None => None,
                Some(t) => Some(parse_usize(t, "id")?),
            };
            expect_end(&mut tokens, "QUERY")?;
            Ok(Request::Query { name, id })
        }
        "STATS" => {
            let name = match tokens.next() {
                None => None,
                Some(t) => Some(parse_name(t)?),
            };
            expect_end(&mut tokens, "STATS")?;
            Ok(Request::Stats { name })
        }
        "DROP" => {
            let name = parse_name(next_token(&mut tokens, "DROP", "deployment name")?)?;
            expect_end(&mut tokens, "DROP")?;
            Ok(Request::Drop { name })
        }
        "RECOVER" => {
            let name = parse_name(next_token(&mut tokens, "RECOVER", "deployment name")?)?;
            expect_end(&mut tokens, "RECOVER")?;
            Ok(Request::Recover { name })
        }
        "AUTH" => {
            let token = next_token(&mut tokens, "AUTH", "token")?;
            if token.len() > MAX_NAME_BYTES {
                return Err(err(
                    ErrorCode::TooLarge,
                    format!("token exceeds {MAX_NAME_BYTES} bytes"),
                ));
            }
            let token = token.to_string();
            expect_end(&mut tokens, "AUTH")?;
            Ok(Request::Auth { token })
        }
        "PING" => {
            expect_end(&mut tokens, "PING")?;
            Ok(Request::Ping)
        }
        "SHUTDOWN" => {
            expect_end(&mut tokens, "SHUTDOWN")?;
            Ok(Request::Shutdown)
        }
        other => Err(err(
            ErrorCode::UnknownVerb,
            format!("unknown verb {other:?}"),
        )),
    }
}

/// A response line: `OK <payload>` or `ERR <code> <message>`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, with a single-line payload.
    Ok(String),
    /// Structured failure.
    Err(ProtocolError),
}

impl Response {
    /// Success response from a payload (newlines flattened).
    pub fn ok(payload: impl Into<String>) -> Self {
        let mut payload = payload.into();
        if payload.contains(['\n', '\r']) {
            payload = payload.replace(['\n', '\r'], " ");
        }
        Response::Ok(payload)
    }

    /// Error response.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Err(ProtocolError::new(code, message))
    }

    /// Returns `true` for the `OK` variant.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    /// Serializes to the wire line (without the trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Ok(payload) if payload.is_empty() => "OK".to_string(),
            Response::Ok(payload) => format!("OK {payload}"),
            Response::Err(e) => format!("ERR {} {}", e.code, e.message),
        }
    }

    /// Parses a wire line back into a response (the client half).
    pub fn from_line(line: &str) -> Result<Response, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line == "OK" {
            return Ok(Response::Ok(String::new()));
        }
        if let Some(payload) = line.strip_prefix("OK ") {
            return Ok(Response::Ok(payload.to_string()));
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code_token, message) = rest.split_once(' ').unwrap_or((rest, ""));
            let code = match code_token {
                "unknown-verb" => ErrorCode::UnknownVerb,
                "bad-request" => ErrorCode::BadRequest,
                "bad-number" => ErrorCode::BadNumber,
                "bad-coordinate" => ErrorCode::BadCoordinate,
                "too-large" => ErrorCode::TooLarge,
                "bad-name" => ErrorCode::BadName,
                "duplicate-deployment" => ErrorCode::DuplicateDeployment,
                "unknown-deployment" => ErrorCode::UnknownDeployment,
                "unknown-sensor" => ErrorCode::UnknownSensor,
                "bad-budget" => ErrorCode::BadBudget,
                "empty-deployment" => ErrorCode::EmptyDeployment,
                "shutting-down" => ErrorCode::ShuttingDown,
                "storage" => ErrorCode::Storage,
                "degraded" => ErrorCode::Degraded,
                "overloaded" => ErrorCode::Overloaded,
                "unauthorized" => ErrorCode::Unauthorized,
                "internal" => ErrorCode::Internal,
                other => {
                    return Err(ProtocolError::new(
                        ErrorCode::BadRequest,
                        format!("unknown error code {other:?} in response"),
                    ))
                }
            };
            return Ok(Response::Err(ProtocolError::new(code, message)));
        }
        Err(ProtocolError::new(
            ErrorCode::BadRequest,
            format!("response line {line:?} starts with neither OK nor ERR"),
        ))
    }
}

/// Extracts a `key=value` field from an `OK` payload (helper for clients and
/// tests; fields are space-separated `key=value` tokens).
pub fn payload_field<'a>(payload: &'a str, key: &str) -> Option<&'a str> {
    payload
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_happy_path() {
        let r = parse_request("CREATE west 2 3.7699 0 0 1 0.5 2 1").unwrap();
        match r {
            Request::Create {
                name,
                k,
                phi,
                points,
            } => {
                assert_eq!(name, "west");
                assert_eq!(k, 2);
                assert!((phi - 3.7699).abs() < 1e-12);
                assert_eq!(points, vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert_eq!(
            parse_request("EDIT west MOVE 3 1.5 -2.5").unwrap(),
            Request::Edit {
                name: "west".into(),
                op: EditOp::Move(3, 1.5, -2.5)
            }
        );
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("QUERY west 7").unwrap(),
            Request::Query {
                name: "west".into(),
                id: Some(7)
            }
        );
    }

    #[test]
    fn malformed_lines_map_to_structured_errors() {
        let cases: &[(&str, ErrorCode)] = &[
            ("", ErrorCode::BadRequest),
            ("   ", ErrorCode::BadRequest),
            ("FROBNICATE x", ErrorCode::UnknownVerb),
            ("CREATE", ErrorCode::BadRequest),
            ("CREATE a 2", ErrorCode::BadRequest),
            ("CREATE a two 3.14", ErrorCode::BadNumber),
            ("CREATE a 2 NaN", ErrorCode::BadCoordinate),
            ("CREATE a 2 inf", ErrorCode::BadCoordinate),
            ("CREATE a 2 3.14 1.0", ErrorCode::BadRequest), // dangling x
            ("CREATE a 2 3.14 1.0 NaN", ErrorCode::BadCoordinate),
            ("CREATE bad/name 2 3.14", ErrorCode::BadName),
            ("CREATE . 2 3.14", ErrorCode::BadName),
            ("CREATE .. 2 3.14", ErrorCode::BadName),
            ("DROP ..", ErrorCode::BadName),
            ("EDIT a TELEPORT 1 2", ErrorCode::BadRequest),
            ("EDIT a REMOVE -3", ErrorCode::BadNumber),
            ("EDIT a MOVE 0 1.0", ErrorCode::BadRequest),
            ("ORIENT a extra", ErrorCode::BadRequest),
            ("ORIENT", ErrorCode::BadRequest),
            ("QUERY a 1 2", ErrorCode::BadRequest),
            ("PING twice", ErrorCode::BadRequest),
        ];
        for (line, code) in cases {
            let e = parse_request(line).expect_err(line);
            assert_eq!(e.code, *code, "line {line:?} -> {e:?}");
        }
        let long_name = format!("CREATE {} 2 3.14", "n".repeat(MAX_NAME_BYTES + 1));
        assert_eq!(
            parse_request(&long_name).unwrap_err().code,
            ErrorCode::TooLarge
        );
    }

    #[test]
    fn responses_serialize_and_parse() {
        let ok = Response::ok("created west n=5");
        assert_eq!(ok.to_line(), "OK created west n=5");
        assert_eq!(Response::from_line(&ok.to_line()).unwrap(), ok);

        let e = Response::err(ErrorCode::UnknownDeployment, "no deployment named east");
        assert_eq!(
            e.to_line(),
            "ERR unknown-deployment no deployment named east"
        );
        assert_eq!(Response::from_line(&e.to_line()).unwrap(), e);

        // Multi-line payloads are flattened — the protocol stays line-framed.
        let sneaky = Response::ok("a\nb");
        assert_eq!(sneaky.to_line(), "OK a b");
    }

    #[test]
    fn payload_fields_extract() {
        let payload = "orient west n=12 algo=theorem2 radius_over_lmax=1.000";
        assert_eq!(payload_field(payload, "n"), Some("12"));
        assert_eq!(payload_field(payload, "algo"), Some("theorem2"));
        assert_eq!(payload_field(payload, "missing"), None);
    }
}
