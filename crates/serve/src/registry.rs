//! The deployment registry: many named tenants, each one dynamic solver
//! session behind its own lock.
//!
//! Locking rules (the concurrency contract the oracle suite pins):
//!
//! * The registry map is an [`RwLock`]: request handlers take a read lock
//!   just long enough to clone the tenant's [`Arc`], so traffic to distinct
//!   tenants never serializes on the map.  `CREATE`/`DROP` take the write
//!   lock briefly.
//! * Each tenant's mutable state (the [`DynamicSolverSession`] plus the
//!   buffered edit queue) sits behind one [`Mutex`]: edits and repairs on
//!   one deployment are serialized, edits and repairs on different
//!   deployments run in parallel.
//! * Each tenant additionally keeps an immutable [`Snapshot`] behind an
//!   [`RwLock`], rewritten at the end of every repair.  `QUERY` reads only
//!   the snapshot — it never touches the state mutex, so snapshot reads are
//!   served even while a repair on the same tenant is in flight.
//! * Counters are atomics; `STATS` reads them without any lock.
//!
//! Edit-stream batching: `EDIT` requests validate against a *projected*
//! live-id set (the session's live ids plus the buffered edits' effects) and
//! append to the queue; the next `ORIENT`/`VERIFY` drains the queue through
//! [`DynamicSolverSession::apply_coalesced`], paying one incremental repair
//! for the whole burst.
//!
//! Degraded mode (graceful degradation under storage faults): when a WAL
//! append, rollback, sync, or compaction leaves the durability layer
//! poisoned, the tenant flips to **degraded-read-only** — mutations fail
//! fast with [`ErrorCode::Degraded`] while `QUERY`/`VERIFY` keep serving
//! the last published snapshot.  Because the failing record was
//! un-acknowledged by the WAL's poison discipline and mutations are
//! rejected from then on, memory never diverges from the acknowledged
//! history; [`Tenant::recover`] therefore only has to repair storage
//! ([`TenantWal::try_recover`]) before returning the tenant to service.

use crate::protocol::{EditOp, ErrorCode, ProtocolError};
use antennae_core::algorithms::AlgorithmKind;
use antennae_core::antenna::AntennaBudget;
use antennae_core::dynamic::{BatchOutcome, DynamicInstance, DynamicSolverSession, Edit, SensorId};
use antennae_core::error::OrientError;
use antennae_core::shard::ShardSpec;
use antennae_core::verify::VerificationReport;
use antennae_geometry::Point;
use antennae_store::TenantWal;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A monotone process-relative clock in milliseconds, used to report
/// last-snapshot ages through atomics (lock-free `STATS`).
pub(crate) fn process_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Maps a durability-layer I/O failure onto the protocol error grammar.
pub(crate) fn storage_error(what: &str, e: &std::io::Error) -> ProtocolError {
    ProtocolError::new(ErrorCode::Storage, format!("{what}: {e}"))
}

/// The error every mutation gets while its tenant is degraded-read-only.
fn degraded_error(reason: &str) -> ProtocolError {
    ProtocolError::new(
        ErrorCode::Degraded,
        format!("deployment is degraded to read-only ({reason}); RECOVER to retry"),
    )
}

/// Maps a solver error onto the protocol error grammar.
pub(crate) fn map_orient_error(e: &OrientError) -> ProtocolError {
    let code = match e {
        OrientError::UnknownSensor { .. } => ErrorCode::UnknownSensor,
        OrientError::EmptyInstance => ErrorCode::EmptyDeployment,
        OrientError::UnsupportedAntennaCount { .. }
        | OrientError::InsufficientSpread { .. }
        | OrientError::NoApplicableAlgorithm { .. }
        | OrientError::AlgorithmNotApplicable { .. } => ErrorCode::BadBudget,
        _ => ErrorCode::Internal,
    };
    ProtocolError::new(code, e.to_string())
}

/// Per-tenant request counters (atomics; `STATS` reads them lock-free).
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Edits accepted into the buffer.
    pub edits_buffered: AtomicU64,
    /// Edits drained through coalesced repairs.
    pub edits_applied: AtomicU64,
    /// Coalesced repairs run (`ORIENT` + `VERIFY` flushes).
    pub batches: AtomicU64,
    /// Largest single batch drained so far.
    pub max_batch: AtomicU64,
    /// Digraph rows recomputed across all repairs.
    pub rows_recomputed: AtomicU64,
    /// Sensors re-oriented across all repairs.
    pub mst_changed: AtomicU64,
    /// Snapshot reads served.
    pub queries: AtomicU64,
    /// Requests rejected with a structured error.
    pub errors: AtomicU64,
    /// Records in the tenant's current-epoch WAL (0 for ephemeral tenants;
    /// mirrored from the log after every append/flush so `STATS` stays
    /// lock-free).
    pub wal_records: AtomicU64,
    /// Bytes in the tenant's current-epoch WAL (buffered included).
    pub wal_bytes: AtomicU64,
    /// Snapshot compactions performed this process.
    pub snapshots: AtomicU64,
    /// When the last compaction happened, as `process_ms() + 1` (0 = never;
    /// the `+1` keeps a compaction at process start distinguishable).
    pub last_snapshot_ms: AtomicU64,
    /// Edits rejected by the per-tenant pending-edit quota.
    pub quota_rejections: AtomicU64,
}

/// An immutable view of a tenant's last repaired state.  `QUERY` is served
/// from this (plus the pending-edit counter) without taking the tenant's
/// state mutex.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotone repair counter (0 = the initial solve at `CREATE`).
    pub revision: u64,
    /// Live sensors at the last repair.
    pub n: usize,
    /// The session budget's antenna count.
    pub k: usize,
    /// The session budget's spread bound, radians.
    pub phi: f64,
    /// Longest MST edge at the last repair.
    pub lmax: f64,
    /// MST total weight at the last repair.
    pub mst_weight: f64,
    /// The construction that produced the current scheme.
    pub algorithm: AlgorithmKind,
    /// Whether the session runs the incremental Theorem 2 path.
    pub incremental: bool,
    /// The last repaired verification verdict.
    pub report: VerificationReport,
    /// The shard grid backing the tenant as `(tiles_x, tiles_y)`, `None`
    /// when the tenant runs on the global (unsharded) engine.
    pub shard_grid: Option<(usize, usize)>,
    /// Occupied tiles at the last repair (`None` when unsharded).
    pub shard_occupied: Option<usize>,
    /// Live `(id, position)` pairs, ascending by id.
    pub positions: Vec<(SensorId, Point)>,
}

impl Snapshot {
    fn of(session: &DynamicSolverSession, revision: u64) -> Self {
        let inst = session.instance();
        let budget = session.budget();
        let positions: Vec<(SensorId, Point)> = inst
            .ids()
            .into_iter()
            .map(|id| (id, inst.point(id).expect("live id has a position")))
            .collect();
        Snapshot {
            revision,
            n: positions.len(),
            k: budget.k,
            phi: budget.phi,
            lmax: inst.lmax(),
            mst_weight: inst.mst_total_weight(),
            algorithm: session.algorithm(),
            incremental: session.is_incremental(),
            report: session.report().clone(),
            shard_grid: inst.shard_grid(),
            shard_occupied: inst.shard_occupied(),
            positions,
        }
    }

    /// The position of a live sensor id, if present in this snapshot.
    pub fn position_of(&self, id: SensorId) -> Option<Point> {
        self.positions
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|at| self.positions[at].1)
    }
}

/// Projected liveness of a tenant's id space: the session's live set with
/// the buffered (not yet repaired) edits applied on top.  Lets `EDIT`
/// validate ids immediately — and assign insert ids eagerly — without
/// running a repair.
#[derive(Debug)]
struct Projection {
    alive: Vec<bool>,
}

impl Projection {
    fn of(session: &DynamicSolverSession) -> Self {
        let mut alive = vec![false; session.instance().next_id()];
        for id in session.instance().ids() {
            alive[id] = true;
        }
        Projection { alive }
    }

    fn check_live(&self, id: SensorId) -> Result<(), ProtocolError> {
        if self.alive.get(id).copied().unwrap_or(false) {
            Ok(())
        } else {
            Err(ProtocolError::new(
                ErrorCode::UnknownSensor,
                format!("sensor id {id} is not live (or already removed by a buffered edit)"),
            ))
        }
    }
}

/// Mutable tenant state, serialized by the tenant's mutex.
struct TenantState {
    session: DynamicSolverSession,
    pending: Vec<Edit>,
    projection: Projection,
    revision: u64,
    /// The durable write-ahead log (`None` for ephemeral tenants).  Lives
    /// under the same mutex as the session so the log's content always
    /// equals the acknowledged edit history.
    wal: Option<TenantWal>,
    /// `Some(reason)` while the tenant is degraded to read-only after a
    /// storage fault.  Cleared only by [`Tenant::recover`].
    degraded: Option<String>,
}

/// One named deployment: a solver session, its edit buffer, the lock-free
/// snapshot and the per-tenant counters.
pub struct Tenant {
    name: String,
    state: Mutex<TenantState>,
    snapshot: RwLock<Arc<Snapshot>>,
    /// Buffered-edit count, readable without the state mutex.
    pending_count: AtomicUsize,
    /// Mirror of `TenantState::degraded`'s presence, readable without the
    /// state mutex (lock-free `STATS` and fast-path checks).
    degraded_flag: AtomicBool,
    /// Whether the tenant writes a WAL (fixed at construction).
    durable: bool,
    /// Per-tenant counters.
    pub stats: TenantStats,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

/// What a flush (coalesced repair) reported, for response formatting.
pub struct FlushOutcome {
    /// The repair outcome (`applied == 0` when the buffer was empty).
    pub outcome: BatchOutcome,
    /// Live sensors after the repair.
    pub n: usize,
    /// `lmax` after the repair.
    pub lmax: f64,
    /// Snapshot revision after the repair.
    pub revision: u64,
}

impl Tenant {
    fn new(name: String, session: DynamicSolverSession, wal: Option<TenantWal>) -> Self {
        let snapshot = Arc::new(Snapshot::of(&session, 0));
        let projection = Projection::of(&session);
        let tenant = Tenant {
            name,
            durable: wal.is_some(),
            state: Mutex::new(TenantState {
                session,
                pending: Vec::new(),
                projection,
                revision: 0,
                wal,
                degraded: None,
            }),
            snapshot: RwLock::new(snapshot),
            pending_count: AtomicUsize::new(0),
            degraded_flag: AtomicBool::new(false),
            stats: TenantStats::default(),
        };
        if let Some(wal) = tenant
            .state
            .lock()
            .expect("tenant state lock poisoned")
            .wal
            .as_ref()
        {
            tenant.mirror_wal_stats(wal);
        }
        tenant
    }

    /// The tenant's registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns `true` when the tenant writes a WAL.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Copies the WAL's counters into the lock-free stats mirror.
    fn mirror_wal_stats(&self, wal: &TenantWal) {
        self.stats
            .wal_records
            .store(wal.wal_records(), Ordering::Relaxed);
        self.stats
            .wal_bytes
            .store(wal.wal_bytes(), Ordering::Relaxed);
        self.stats
            .snapshots
            .store(wal.snapshots(), Ordering::Relaxed);
        if let Some(at) = wal.last_snapshot() {
            let at_ms = process_ms().saturating_sub(at.elapsed().as_millis() as u64);
            self.stats
                .last_snapshot_ms
                .store(at_ms + 1, Ordering::Relaxed);
        }
    }

    /// Flush + fsync the tenant's WAL, regardless of sync policy (clean
    /// shutdown).  A no-op for ephemeral tenants.  A sync failure degrades
    /// the tenant: some acknowledged records may not be durable yet, and the
    /// writer stays poisoned until recovery.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        let mut state = self.state.lock().expect("tenant state lock poisoned");
        let result = match state.wal.as_mut() {
            Some(wal) => wal.sync(),
            None => Ok(()),
        };
        if let Err(e) = &result {
            let _ = self.degrade(&mut state, format!("wal sync failed: {e}"));
        }
        result
    }

    /// Puts the tenant into degraded-read-only mode and returns the
    /// structured error mutations should surface.  The reason sticks until
    /// [`Tenant::recover`] succeeds.
    fn degrade(&self, state: &mut TenantState, reason: String) -> ProtocolError {
        let err = ProtocolError::new(
            ErrorCode::Degraded,
            format!("deployment degraded to read-only ({reason}); RECOVER to retry"),
        );
        state.degraded = Some(reason);
        self.degraded_flag.store(true, Ordering::Release);
        err
    }

    /// Returns `true` while the tenant is degraded to read-only (lock-free).
    pub fn is_degraded(&self) -> bool {
        self.degraded_flag.load(Ordering::Acquire)
    }

    /// The reason the tenant is degraded, when it is.
    pub fn degraded_reason(&self) -> Option<String> {
        self.state
            .lock()
            .expect("tenant state lock poisoned")
            .degraded
            .clone()
    }

    /// Re-attempts the failed I/O behind a degraded tenant and, on success,
    /// returns it to full service.  Memory never diverged from the
    /// acknowledged history — the failing record was un-acknowledged by the
    /// WAL's poison discipline and every later mutation was rejected — so
    /// recovery is purely a storage-side repair
    /// ([`TenantWal::try_recover`]).  Idempotent: recovering a healthy
    /// tenant just re-syncs its log.
    pub fn recover(&self) -> Result<(), ProtocolError> {
        let mut state = self.state.lock().expect("tenant state lock poisoned");
        let recover_err = match state.wal.as_mut() {
            Some(wal) => wal.try_recover().err(),
            None => None,
        };
        if let Some(e) = recover_err {
            let reason = format!("recovery failed: {e}");
            return Err(self.degrade(&mut state, reason));
        }
        state.degraded = None;
        self.degraded_flag.store(false, Ordering::Release);
        if let Some(wal) = state.wal.as_ref() {
            self.mirror_wal_stats(wal);
        }
        Ok(())
    }

    /// Buffered edits not yet drained by a repair (lock-free read).
    pub fn pending(&self) -> usize {
        self.pending_count.load(Ordering::Acquire)
    }

    /// The last repaired snapshot (lock-free with respect to repairs).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    /// Runs `f` against the live solver session under the tenant mutex.
    /// This is how the concurrency oracle compares served state against a
    /// bare-session replay bit for bit; it is not part of the wire surface.
    pub fn with_session<R>(&self, f: impl FnOnce(&DynamicSolverSession) -> R) -> R {
        let state = self.state.lock().expect("tenant state lock poisoned");
        f(&state.session)
    }

    /// Like [`Tenant::with_session`] but with mutable access — the oracle
    /// suites need this to read the lazily rebuilt dense scheme/digraph
    /// mirrors ([`DynamicSolverSession::scheme`] takes `&mut self`).
    pub fn with_session_mut<R>(&self, f: impl FnOnce(&mut DynamicSolverSession) -> R) -> R {
        let mut state = self.state.lock().expect("tenant state lock poisoned");
        f(&mut state.session)
    }

    /// Validates one edit against the projected live set, logs it (durable
    /// tenants), and appends it to the buffer.  Returns the assigned id for
    /// inserts and the new buffered count.  No repair runs here.
    ///
    /// Ordering matters: validation must not mutate, and the WAL append
    /// happens *before* the in-memory buffer mutation — an edit is
    /// acknowledged only once the log holds it, and a storage failure
    /// leaves no trace in memory (it degrades the tenant instead).
    pub fn buffer_edit(&self, op: EditOp) -> Result<(Option<SensorId>, usize), ProtocolError> {
        let mut state = self.state.lock().expect("tenant state lock poisoned");
        if let Some(reason) = state.degraded.as_deref() {
            return Err(degraded_error(reason));
        }
        let (edit, inserted) = match op {
            EditOp::Insert(x, y) => {
                let id = state.projection.alive.len();
                (Edit::Insert(Point::new(x, y)), Some(id))
            }
            EditOp::Remove(id) => {
                state.projection.check_live(id)?;
                (Edit::Remove(id), None)
            }
            EditOp::Move(id, x, y) => {
                state.projection.check_live(id)?;
                (Edit::Move(id, Point::new(x, y)), None)
            }
        };
        let append_err = match state.wal.as_mut() {
            Some(wal) => wal.append_edit(&edit).err(),
            None => None,
        };
        if let Some(e) = append_err {
            // The WAL's poison discipline already un-acknowledged the
            // record; nothing was buffered, so memory and log agree on the
            // acknowledged history.  Degrade instead of retrying.
            return Err(self.degrade(&mut state, format!("wal append failed: {e}")));
        }
        match edit {
            Edit::Insert(_) => state.projection.alive.push(true),
            Edit::Remove(id) => state.projection.alive[id] = false,
            Edit::Move(..) => {}
        }
        state.pending.push(edit);
        let pending = state.pending.len();
        self.pending_count.store(pending, Ordering::Release);
        self.stats.edits_buffered.fetch_add(1, Ordering::Relaxed);
        if let Some(wal) = state.wal.as_ref() {
            self.mirror_wal_stats(wal);
        }
        Ok((inserted, pending))
    }

    /// Drains the edit buffer through **one** coalesced repair and publishes
    /// a fresh snapshot.  With an empty buffer this still refreshes the
    /// verdict (a cheap no-op repair), so `ORIENT` doubles as "make sure the
    /// published state is current".
    pub fn flush(&self) -> Result<FlushOutcome, ProtocolError> {
        let mut state = self.state.lock().expect("tenant state lock poisoned");
        if let Some(reason) = state.degraded.as_deref() {
            return Err(degraded_error(reason));
        }
        let edits = std::mem::take(&mut state.pending);
        self.pending_count.store(0, Ordering::Release);
        let applied = state.session.apply_coalesced(&edits);
        // Whatever happened, re-derive the projection from the session so
        // buffered-edit validation stays truthful (on the error path the
        // batch was rejected atomically and the projection simply rolls back
        // to the session's live set).
        state.projection = Projection::of(&state.session);
        let outcome = match applied {
            Ok(outcome) => {
                // The session holds the batch; the log may keep it.
                if let Some(wal) = state.wal.as_mut() {
                    wal.commit();
                }
                outcome
            }
            Err(e) => {
                // The batch was rejected atomically — the log must forget
                // it too, or recovery would replay edits the live session
                // never applied.  A failed rollback leaves the log holding
                // rejected records the session refused: that divergence is
                // exactly what degraded mode exists for.
                let rollback_err = match state.wal.as_mut() {
                    Some(wal) => wal.rollback().err(),
                    None => None,
                };
                if let Some(io) = rollback_err {
                    return Err(self.degrade(&mut state, format!("wal rollback failed: {io}")));
                }
                if let Some(wal) = state.wal.as_ref() {
                    self.mirror_wal_stats(wal);
                }
                return Err(map_orient_error(&e));
            }
        };
        state.revision += 1;
        let revision = state.revision;
        let snapshot = Arc::new(Snapshot::of(&state.session, revision));
        // Compaction: once the log outgrows its thresholds, absorb it into
        // a durable snapshot (the freshly built one already carries the
        // exact live set).  Failure is non-fatal — the WAL alone still
        // recovers — so it is counted, not surfaced.
        if state.wal.as_ref().is_some_and(TenantWal::needs_compaction) {
            let budget = state.session.budget();
            let next_id = state.session.instance().next_id();
            let live = snapshot.positions.clone();
            let wal = state.wal.as_mut().expect("compaction check held a wal");
            if wal.compact(budget.k, budget.phi, next_id, live).is_err() {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // A compaction failure is non-fatal while the log stays healthy (the
        // WAL alone still recovers), but if it poisoned the writer or the
        // epoch bookkeeping the tenant must stop acknowledging mutations.
        // The repair itself succeeded and its edits are committed, so this
        // flush still publishes and returns `Ok`.
        let poison = state
            .wal
            .as_ref()
            .and_then(|w| w.poisoned().map(String::from));
        if let Some(reason) = poison {
            if state.degraded.is_none() {
                let _ = self.degrade(&mut state, reason);
            }
        }
        if let Some(wal) = state.wal.as_ref() {
            self.mirror_wal_stats(wal);
        }
        let (n, lmax) = (snapshot.n, snapshot.lmax);
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .edits_applied
            .fetch_add(outcome.applied as u64, Ordering::Relaxed);
        self.stats
            .max_batch
            .fetch_max(outcome.applied as u64, Ordering::Relaxed);
        self.stats
            .rows_recomputed
            .fetch_add(outcome.rows_recomputed as u64, Ordering::Relaxed);
        self.stats
            .mst_changed
            .fetch_add(outcome.mst_changed as u64, Ordering::Relaxed);
        Ok(FlushOutcome {
            outcome,
            n,
            lmax,
            revision,
        })
    }
}

/// The server-wide tenant map plus global counters.
#[derive(Default)]
pub struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Deployments ever created.
    pub created: AtomicU64,
    /// Deployments dropped.
    pub dropped: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registered deployment count.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock poisoned").len()
    }

    /// Returns `true` when no deployment is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered deployment names, sorted (for `STATS` output stability).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Returns `true` when a deployment with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .contains_key(name)
    }

    /// Clones every tenant's `Arc` under one short read lock (shutdown
    /// sync, recovery bookkeeping).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Looks a tenant up, cloning its `Arc` under a short read lock.
    pub fn get(&self, name: &str) -> Result<Arc<Tenant>, ProtocolError> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| {
                ProtocolError::new(
                    ErrorCode::UnknownDeployment,
                    format!("no deployment named {name:?}"),
                )
            })
    }

    /// Creates and registers an ephemeral deployment (no WAL, default
    /// [`ShardSpec::Auto`] sharding).
    pub fn create(
        &self,
        name: &str,
        budget: AntennaBudget,
        points: &[Point],
    ) -> Result<Arc<Tenant>, ProtocolError> {
        self.create_with_wal(name, budget, points, None, ShardSpec::default())
    }

    /// Creates and registers a deployment, optionally with a durable write
    /// handle, sharding its spatial substrate per `spec` (bit-exact to the
    /// unsharded engine — a pure cost knob).  The initial solve runs
    /// *outside* the map's write lock; only the name reservation is
    /// serialized.  On any error the `wal` handle is dropped (closing its
    /// file cleanly); removing the tenant's directory is the caller's
    /// cleanup.
    pub fn create_with_wal(
        &self,
        name: &str,
        budget: AntennaBudget,
        points: &[Point],
        wal: Option<TenantWal>,
        spec: ShardSpec,
    ) -> Result<Arc<Tenant>, ProtocolError> {
        // Reserve the name first so a concurrent duplicate CREATE fails fast
        // instead of paying a redundant solve.
        {
            let tenants = self.tenants.read().expect("registry lock poisoned");
            if tenants.contains_key(name) {
                return Err(ProtocolError::new(
                    ErrorCode::DuplicateDeployment,
                    format!("deployment {name:?} already exists"),
                ));
            }
        }
        let inst = DynamicInstance::new_sharded(points, spec).map_err(|e| map_orient_error(&e))?;
        let session = DynamicSolverSession::new(inst, budget).map_err(|e| map_orient_error(&e))?;
        let tenant = Arc::new(Tenant::new(name.to_string(), session, wal));
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        if tenants.contains_key(name) {
            // A racing CREATE won the name between our check and now.
            return Err(ProtocolError::new(
                ErrorCode::DuplicateDeployment,
                format!("deployment {name:?} already exists"),
            ));
        }
        tenants.insert(name.to_string(), tenant.clone());
        self.created.fetch_add(1, Ordering::Relaxed);
        Ok(tenant)
    }

    /// Registers a tenant rebuilt by crash recovery: an already-solved
    /// session plus its reopened write handle.  Boot-time only; a duplicate
    /// name (two recovery passes, or a race with `CREATE`) is refused.
    pub fn install_recovered(
        &self,
        name: &str,
        session: DynamicSolverSession,
        wal: TenantWal,
    ) -> Result<Arc<Tenant>, ProtocolError> {
        let tenant = Arc::new(Tenant::new(name.to_string(), session, Some(wal)));
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        if tenants.contains_key(name) {
            return Err(ProtocolError::new(
                ErrorCode::DuplicateDeployment,
                format!("deployment {name:?} already exists"),
            ));
        }
        tenants.insert(name.to_string(), tenant.clone());
        Ok(tenant)
    }

    /// Unregisters a deployment.  In-flight requests holding the tenant's
    /// `Arc` finish against the orphaned state.
    pub fn drop_tenant(&self, name: &str) -> Result<(), ProtocolError> {
        let removed = self
            .tenants
            .write()
            .expect("registry lock poisoned")
            .remove(name);
        match removed {
            Some(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(ProtocolError::new(
                ErrorCode::UnknownDeployment,
                format!("no deployment named {name:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_core::bounds::theorem2_spread_threshold;

    fn budget() -> AntennaBudget {
        AntennaBudget::new(2, theorem2_spread_threshold(2))
    }

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, (i % 3) as f64))
            .collect()
    }

    #[test]
    fn create_edit_flush_round_trip() {
        let reg = Registry::new();
        let tenant = reg.create("west", budget(), &grid(6)).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(tenant.snapshot().n, 6);
        assert_eq!(tenant.snapshot().revision, 0);

        let (id, pending) = tenant.buffer_edit(EditOp::Insert(2.5, 2.5)).unwrap();
        assert_eq!(id, Some(6));
        assert_eq!(pending, 1);
        let (_, pending) = tenant.buffer_edit(EditOp::Move(0, 0.25, 0.25)).unwrap();
        assert_eq!(pending, 2);
        // The snapshot is still the pre-edit state…
        assert_eq!(tenant.snapshot().n, 6);
        assert_eq!(tenant.pending(), 2);

        let flushed = tenant.flush().unwrap();
        assert_eq!(flushed.outcome.applied, 2);
        assert_eq!(flushed.n, 7);
        assert_eq!(flushed.revision, 1);
        assert_eq!(tenant.pending(), 0);
        assert_eq!(tenant.snapshot().n, 7);
        assert!(tenant.snapshot().report.is_valid());
        assert_eq!(tenant.snapshot().position_of(6), Some(Point::new(2.5, 2.5)));
    }

    #[test]
    fn projection_rejects_buffered_dead_ids() {
        let reg = Registry::new();
        let tenant = reg.create("t", budget(), &grid(4)).unwrap();
        tenant.buffer_edit(EditOp::Remove(2)).unwrap();
        // Still buffered, but the projection already counts 2 as dead.
        let e = tenant.buffer_edit(EditOp::Move(2, 0.0, 0.0)).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownSensor);
        // A buffered insert's id is usable by later buffered edits.
        let (id, _) = tenant.buffer_edit(EditOp::Insert(9.0, 9.0)).unwrap();
        tenant
            .buffer_edit(EditOp::Move(id.unwrap(), 8.0, 8.0))
            .unwrap();
        let flushed = tenant.flush().unwrap();
        assert_eq!(flushed.outcome.applied, 3);
        assert!(tenant.snapshot().report.is_valid());
    }

    #[test]
    fn duplicate_and_unknown_names() {
        let reg = Registry::new();
        reg.create("a", budget(), &grid(3)).unwrap();
        assert_eq!(
            reg.create("a", budget(), &grid(3)).unwrap_err().code,
            ErrorCode::DuplicateDeployment
        );
        assert_eq!(reg.get("b").unwrap_err().code, ErrorCode::UnknownDeployment);
        reg.drop_tenant("a").unwrap();
        assert_eq!(
            reg.drop_tenant("a").unwrap_err().code,
            ErrorCode::UnknownDeployment
        );
        assert!(reg.is_empty());
    }

    #[test]
    fn empty_create_grows_through_edits() {
        let reg = Registry::new();
        let tenant = reg.create("empty", budget(), &[]).unwrap();
        assert_eq!(tenant.snapshot().n, 0);
        assert!(tenant.snapshot().report.is_valid());
        for i in 0..5 {
            let (id, _) = tenant
                .buffer_edit(EditOp::Insert(i as f64, 0.5 * i as f64))
                .unwrap();
            assert_eq!(id, Some(i));
        }
        let flushed = tenant.flush().unwrap();
        assert_eq!(flushed.n, 5);
        assert!(tenant.snapshot().report.is_strongly_connected);
        // Drain back to zero: the empty deployment is defined to be valid.
        for i in 0..5 {
            tenant.buffer_edit(EditOp::Remove(i)).unwrap();
        }
        let drained = tenant.flush().unwrap();
        assert_eq!(drained.n, 0);
        assert!(tenant.snapshot().report.is_valid());
    }
}
