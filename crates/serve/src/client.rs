//! Clients for the orientd protocol: a socket client for the real server
//! and an in-process client that drives a [`Service`] directly.
//!
//! Both expose the same one-method surface — `request(line) -> Response` —
//! so tests, the bench and the demo example can swap the transport without
//! touching the call sites.

use crate::protocol::{Response, MAX_LINE_BYTES};
use crate::service::{ConnState, Service};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

/// A blocking line-oriented client over a [`TcpStream`].
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(TcpClient { reader, writer })
    }

    /// Sends one request line and reads the matching response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        debug_assert!(!line.contains('\n'), "request lines must be newline-free");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self
            .reader
            .by_ref()
            .take(MAX_LINE_BYTES as u64 + 2)
            .read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        // The server's serializer produced the line, so a parse failure can
        // only mean a foreign peer; surface it as a structured error.
        Ok(Response::from_line(response.trim_end_matches(['\r', '\n']))
            .unwrap_or_else(Response::Err))
    }
}

/// An in-process client: the same request surface as [`TcpClient`], but the
/// "wire" is a function call into a shared [`Service`].  This is what the
/// concurrency oracle, the robustness suite and the throughput bench use —
/// the full parse → execute → serialize path runs, only the socket is
/// elided.
/// Like a socket, each `LocalClient` carries its own connection state, so
/// an `AUTH` on one client authenticates that client alone.  Clones share
/// the state (they model the same connection).
#[derive(Clone)]
pub struct LocalClient {
    service: Arc<Service>,
    conn: Arc<Mutex<ConnState>>,
}

impl LocalClient {
    /// A client over an existing service.
    pub fn new(service: Arc<Service>) -> Self {
        let conn = Arc::new(Mutex::new(service.new_conn()));
        LocalClient { service, conn }
    }

    /// The service this client drives.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Sends one request line through the full protocol path.
    pub fn request(&self, line: &str) -> Response {
        let mut conn = self.conn.lock().expect("local conn state poisoned");
        Response::from_line(&self.service.handle_line_on(line, &mut conn))
            .unwrap_or_else(Response::Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn local_and_tcp_clients_agree() {
        let service = Arc::new(Service::new());
        let local = LocalClient::new(Arc::clone(&service));
        assert!(local.request("PING").is_ok());

        let server = Server::bind_with("127.0.0.1:0", service, 2).expect("bind");
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut tcp = TcpClient::connect(addr).expect("connect");
        let pong = tcp.request("PING").expect("round trip");
        assert_eq!(pong.to_line(), "OK pong");
        let err = tcp.request("NOPE").expect("round trip");
        assert!(!err.is_ok());

        handle.stop().expect("clean shutdown");
    }
}
