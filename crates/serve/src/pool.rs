//! A hand-rolled fixed-size worker pool over `Mutex<VecDeque>` + `Condvar`.
//!
//! The container has no async runtime, so [`crate::server::Server`] serves
//! each accepted connection as a queued job on this pool: a bounded thread
//! count regardless of how many clients connect, with back-pressure by
//! queueing rather than thread-per-connection explosion.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A fixed pool of worker threads draining a shared FIFO job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orientd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.  Returns `false` (dropping the job) if the pool has
    /// already been shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if queue.closed {
            return false;
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        true
    }

    /// Closes the queue and joins every worker.  Jobs already queued are
    /// drained before workers exit.
    pub fn shutdown(mut self) {
        self.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.closed = true;
        drop(queue);
        self.shared.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Belt and braces for the non-`shutdown` path (e.g. a panic while
        // the pool is alive): close the queue so workers exit instead of
        // blocking forever on the condvar.
        self.close();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn rejects_jobs_after_shutdown_flagged() {
        let pool = WorkerPool::new(1);
        pool.shutdown();
        // A fresh pool whose queue was closed via drop also rejects.
        let pool = WorkerPool::new(1);
        pool.close();
        assert!(!pool.submit(|| {}));
        pool.shutdown();
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
