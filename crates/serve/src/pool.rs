//! A hand-rolled fixed-size worker pool over `Mutex<VecDeque>` + `Condvar`.
//!
//! The container has no async runtime, so [`crate::server::Server`] serves
//! each accepted connection as a queued job on this pool: a bounded thread
//! count regardless of how many clients connect, with back-pressure by
//! queueing rather than thread-per-connection explosion.
//!
//! The queue itself can be **bounded** ([`WorkerPool::bounded`]): when every
//! worker is busy and the backlog has hit the cap, [`WorkerPool::try_submit`]
//! reports [`SubmitOutcome::Rejected`] instead of queueing, which the server
//! turns into an `overloaded` error — load shedding at the front door rather
//! than unbounded memory growth and unbounded latency.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    /// Maximum jobs waiting (not counting those running); `None` = unbounded.
    capacity: Option<usize>,
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// What [`WorkerPool::try_submit`] did with the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was queued (or handed straight to an idle worker).
    Accepted,
    /// The backlog is at capacity; the job was dropped (shed).
    Rejected,
    /// The pool has shut down; the job was dropped.
    Closed,
}

/// A fixed pool of worker threads draining a shared FIFO job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one) over an unbounded
    /// queue.
    pub fn new(threads: usize) -> Self {
        WorkerPool::build(threads, None)
    }

    /// Spawns `threads` workers over a queue capped at `capacity` waiting
    /// jobs (clamped to at least one).  Beyond the cap,
    /// [`WorkerPool::try_submit`] sheds.
    pub fn bounded(threads: usize, capacity: usize) -> Self {
        WorkerPool::build(threads, Some(capacity.max(1)))
    }

    fn build(threads: usize, capacity: Option<usize>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orientd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The queue's waiting-job cap, if the pool is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }

    /// Jobs currently waiting in the queue (excludes jobs being run).
    pub fn backlog(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .len()
    }

    /// Enqueues a job, shedding it when the backlog is at capacity.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> SubmitOutcome {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if queue.closed {
            return SubmitOutcome::Closed;
        }
        if let Some(cap) = self.shared.capacity {
            if queue.jobs.len() >= cap {
                return SubmitOutcome::Rejected;
            }
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
        SubmitOutcome::Accepted
    }

    /// Enqueues a job.  Returns `false` (dropping the job) if the pool has
    /// already been shut down *or* the backlog is at capacity.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.try_submit(job) == SubmitOutcome::Accepted
    }

    /// Closes the queue and joins every worker.  Jobs already queued are
    /// drained before workers exit.
    pub fn shutdown(mut self) {
        self.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.closed = true;
        drop(queue);
        self.shared.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Belt and braces for the non-`shutdown` path (e.g. a panic while
        // the pool is alive): close the queue so workers exit instead of
        // blocking forever on the condvar.
        self.close();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn rejects_jobs_after_shutdown_flagged() {
        let pool = WorkerPool::new(1);
        pool.shutdown();
        // A fresh pool whose queue was closed via drop also rejects.
        let pool = WorkerPool::new(1);
        pool.close();
        assert!(!pool.submit(|| {}));
        pool.shutdown();
    }

    #[test]
    fn bounded_pool_sheds_past_capacity() {
        use std::sync::mpsc;
        let pool = WorkerPool::bounded(1, 1);
        assert_eq!(pool.capacity(), Some(1));
        // Pin the single worker on a job that blocks until released.
        let (release, gate) = mpsc::channel::<()>();
        let (running_tx, running) = mpsc::channel::<()>();
        assert_eq!(
            pool.try_submit(move || {
                running_tx.send(()).unwrap();
                gate.recv().unwrap();
            }),
            SubmitOutcome::Accepted
        );
        running.recv().unwrap(); // the worker holds the job, queue is empty
        assert_eq!(pool.try_submit(|| {}), SubmitOutcome::Accepted); // fills the queue
        assert_eq!(pool.backlog(), 1);
        assert_eq!(pool.try_submit(|| {}), SubmitOutcome::Rejected); // shed
        release.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn closed_pool_reports_closed_not_rejected() {
        let pool = WorkerPool::bounded(1, 4);
        pool.close();
        assert_eq!(pool.try_submit(|| {}), SubmitOutcome::Closed);
        pool.shutdown();
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
