//! The transport-independent service core: parse a request line, execute it
//! against the [`Registry`], format a response line.
//!
//! Both front doors share this type: the TCP server
//! ([`crate::server::Server`]) feeds it socket lines, the in-process client
//! ([`crate::client::LocalClient`]) calls it directly — which is what the
//! protocol robustness suite, the concurrency oracle and the `serve` bench
//! drive, so the tested surface is exactly the served surface.

use crate::protocol::{parse_request, EditOp, ErrorCode, Request, Response, MAX_CREATE_POINTS};
use crate::registry::{Registry, Tenant};
use antennae_core::antenna::AntennaBudget;
use antennae_core::solver::Registry as AlgorithmRegistry;
use antennae_geometry::Point;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Server-wide request counters.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Request lines handled (OK and ERR alike).
    pub requests: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Edits buffered across all tenants.
    pub edits_buffered: AtomicU64,
    /// Coalesced repairs run across all tenants.
    pub batches: AtomicU64,
}

/// The multi-tenant orientation service (see the [module docs](self)).
#[derive(Default)]
pub struct Service {
    registry: Registry,
    stats: ServiceStats,
    shutdown: AtomicBool,
}

impl Service {
    /// An empty service.
    pub fn new() -> Self {
        Service::default()
    }

    /// The tenant registry (tests and the bench reach through for setup).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Returns `true` once a `SHUTDOWN` request was accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Flips the shutdown flag directly (the wire-level `SHUTDOWN` verb does
    /// the same; this is for hosts that own the service in process).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Handles one request line end to end, returning the response line
    /// (without the trailing newline).  Never panics: malformed input maps
    /// to `ERR` lines (pinned by `tests/protocol_robustness.rs`).
    pub fn handle_line(&self, line: &str) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(line) {
            Ok(request) => self.execute(request),
            Err(e) => Response::Err(e),
        };
        if !response.is_ok() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        response.to_line()
    }

    /// Executes one parsed request.
    pub fn execute(&self, request: Request) -> Response {
        if self.shutdown_requested() && !matches!(request, Request::Ping | Request::Stats { .. }) {
            return Response::err(ErrorCode::ShuttingDown, "server is shutting down");
        }
        match request {
            Request::Create {
                name,
                k,
                phi,
                points,
            } => self.create(&name, k, phi, &points),
            Request::Edit { name, op } => self.edit(&name, op),
            Request::Orient { name } => self.orient(&name),
            Request::Verify { name } => self.verify(&name),
            Request::Query { name, id } => self.query(&name, id),
            Request::Stats { name } => self.stats_response(name.as_deref()),
            Request::Drop { name } => match self.registry.drop_tenant(&name) {
                Ok(()) => Response::ok(format!("dropped {name}")),
                Err(e) => Response::Err(e),
            },
            Request::Ping => Response::ok("pong"),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                Response::ok("shutting-down")
            }
        }
    }

    fn create(&self, name: &str, k: usize, phi: f64, points: &[(f64, f64)]) -> Response {
        if points.len() > MAX_CREATE_POINTS {
            return Response::err(
                ErrorCode::TooLarge,
                format!("CREATE carries more than {MAX_CREATE_POINTS} points"),
            );
        }
        let budget = AntennaBudget::new(k, phi);
        // Reject budgets no registered construction serves *before* building
        // the tenant, so `CREATE` fails fast with a budget error instead of
        // a solver error halfway through session construction.  (k = 0 or
        // k > 5 land here too: no paper construction covers them.)
        if AlgorithmRegistry::paper().best_guarantee(&budget).is_none() {
            return Response::err(
                ErrorCode::BadBudget,
                format!("no registered construction serves k={k} phi={phi:.4}"),
            );
        }
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        match self.registry.create(name, budget, &pts) {
            Ok(tenant) => {
                let snap = tenant.snapshot();
                Response::ok(format!(
                    "created {name} n={} k={k} phi={phi:.6} algo={} incremental={} valid={}",
                    snap.n,
                    snap.algorithm,
                    snap.incremental,
                    snap.report.is_valid()
                ))
            }
            Err(e) => Response::Err(e),
        }
    }

    fn with_tenant(&self, name: &str, f: impl FnOnce(&Arc<Tenant>) -> Response) -> Response {
        match self.registry.get(name) {
            Ok(tenant) => {
                let response = f(&tenant);
                if !response.is_ok() {
                    tenant.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                response
            }
            Err(e) => Response::Err(e),
        }
    }

    fn edit(&self, name: &str, op: EditOp) -> Response {
        self.with_tenant(name, |tenant| match tenant.buffer_edit(op) {
            Ok((inserted, pending)) => {
                self.stats.edits_buffered.fetch_add(1, Ordering::Relaxed);
                match inserted {
                    Some(id) => Response::ok(format!("edit {name} id={id} pending={pending}")),
                    None => Response::ok(format!("edit {name} pending={pending}")),
                }
            }
            Err(e) => Response::Err(e),
        })
    }

    fn orient(&self, name: &str) -> Response {
        self.with_tenant(name, |tenant| match tenant.flush() {
            Ok(flushed) => {
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                let o = &flushed.outcome;
                Response::ok(format!(
                    "orient {name} n={} applied={} algo={} incremental={} mst_changed={} \
                     rows={} valid={} radius={:.6} radius_over_lmax={:.6} revision={}",
                    flushed.n,
                    o.applied,
                    o.algorithm,
                    o.incremental_orientation,
                    o.mst_changed,
                    o.rows_recomputed,
                    o.report.is_valid(),
                    o.report.max_radius,
                    o.measured_radius_over_lmax,
                    flushed.revision,
                ))
            }
            Err(e) => Response::Err(e),
        })
    }

    fn verify(&self, name: &str) -> Response {
        self.with_tenant(name, |tenant| match tenant.flush() {
            Ok(flushed) => {
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                let r = &flushed.outcome.report;
                Response::ok(format!(
                    "verify {name} n={} valid={} strongly_connected={} scc={} edges={} \
                     max_radius={:.6} radius_over_lmax={:.6} spread={:.6} antennas={} \
                     violations={} revision={}",
                    flushed.n,
                    r.is_valid(),
                    r.is_strongly_connected,
                    r.scc_count,
                    r.edge_count,
                    r.max_radius,
                    r.max_radius_over_lmax,
                    r.max_spread_sum,
                    r.max_antenna_count,
                    r.violations.len(),
                    flushed.revision,
                ))
            }
            Err(e) => Response::Err(e),
        })
    }

    fn query(&self, name: &str, id: Option<usize>) -> Response {
        self.with_tenant(name, |tenant| {
            tenant.stats.queries.fetch_add(1, Ordering::Relaxed);
            let snap = tenant.snapshot();
            match id {
                None => Response::ok(format!(
                    "query {name} n={} pending={} revision={} lmax={:.6} mst_weight={:.6} \
                     algo={} valid={} strongly_connected={} edges={}",
                    snap.n,
                    tenant.pending(),
                    snap.revision,
                    snap.lmax,
                    snap.mst_weight,
                    snap.algorithm,
                    snap.report.is_valid(),
                    snap.report.is_strongly_connected,
                    snap.report.edge_count,
                )),
                Some(id) => match snap.position_of(id) {
                    Some(p) => Response::ok(format!(
                        "query {name} id={id} x={:.6} y={:.6} revision={}",
                        p.x, p.y, snap.revision
                    )),
                    None => Response::err(
                        ErrorCode::UnknownSensor,
                        format!(
                            "sensor id {id} is not live in snapshot revision {}",
                            snap.revision
                        ),
                    ),
                },
            }
        })
    }

    fn stats_response(&self, name: Option<&str>) -> Response {
        match name {
            None => Response::ok(format!(
                "stats deployments={} created={} dropped={} requests={} errors={} \
                 edits_buffered={} batches={}",
                self.registry.len(),
                self.registry.created.load(Ordering::Relaxed),
                self.registry.dropped.load(Ordering::Relaxed),
                self.stats.requests.load(Ordering::Relaxed),
                self.stats.errors.load(Ordering::Relaxed),
                self.stats.edits_buffered.load(Ordering::Relaxed),
                self.stats.batches.load(Ordering::Relaxed),
            )),
            Some(name) => self.with_tenant(name, |tenant| {
                let s = &tenant.stats;
                let snap = tenant.snapshot();
                Response::ok(format!(
                    "stats {name} n={} pending={} revision={} edits_buffered={} \
                     edits_applied={} batches={} max_batch={} rows_recomputed={} \
                     mst_changed={} queries={} errors={}",
                    snap.n,
                    tenant.pending(),
                    snap.revision,
                    s.edits_buffered.load(Ordering::Relaxed),
                    s.edits_applied.load(Ordering::Relaxed),
                    s.batches.load(Ordering::Relaxed),
                    s.max_batch.load(Ordering::Relaxed),
                    s.rows_recomputed.load(Ordering::Relaxed),
                    s.mst_changed.load(Ordering::Relaxed),
                    s.queries.load(Ordering::Relaxed),
                    s.errors.load(Ordering::Relaxed),
                ))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::payload_field;
    use antennae_core::bounds::theorem2_spread_threshold;

    fn t2(k: usize) -> f64 {
        theorem2_spread_threshold(k)
    }

    #[test]
    fn end_to_end_session_over_handle_line() {
        let svc = Service::new();
        let phi = t2(2);
        let created = svc.handle_line(&format!("CREATE west 2 {phi} 0 0 1 0 2 0.5 1.5 1.5"));
        assert!(created.starts_with("OK created west n=4"), "{created}");

        let buffered = svc.handle_line("EDIT west INSERT 0.5 0.75");
        assert_eq!(buffered, "OK edit west id=4 pending=1");
        let oriented = svc.handle_line("ORIENT west");
        assert!(
            oriented.starts_with("OK orient west n=5 applied=1"),
            "{oriented}"
        );
        let payload = oriented.strip_prefix("OK ").unwrap();
        assert_eq!(payload_field(payload, "valid"), Some("true"));
        assert_eq!(payload_field(payload, "incremental"), Some("true"));

        let verified = svc.handle_line("VERIFY west");
        assert!(verified.contains("strongly_connected=true"), "{verified}");

        let q = svc.handle_line("QUERY west 4");
        assert!(q.starts_with("OK query west id=4 x=0.5"), "{q}");

        let stats = svc.handle_line("STATS west");
        assert!(stats.contains("edits_applied=1"), "{stats}");

        assert_eq!(svc.handle_line("DROP west"), "OK dropped west");
        assert!(svc
            .handle_line("QUERY west")
            .starts_with("ERR unknown-deployment"));
    }

    #[test]
    fn bad_budgets_fail_fast() {
        let svc = Service::new();
        assert!(svc
            .handle_line("CREATE a 0 1.0")
            .starts_with("ERR bad-budget"));
        assert!(svc
            .handle_line("CREATE a 9 1.0")
            .starts_with("ERR bad-budget"));
        // Nothing was created along the way.
        assert!(svc.registry().is_empty());
    }

    #[test]
    fn shutdown_gates_new_work() {
        let svc = Service::new();
        assert_eq!(svc.handle_line("SHUTDOWN"), "OK shutting-down");
        assert!(svc.shutdown_requested());
        assert!(svc
            .handle_line("CREATE a 2 3.8")
            .starts_with("ERR shutting-down"));
        // Liveness and stats still answer during drain.
        assert_eq!(svc.handle_line("PING"), "OK pong");
        assert!(svc.handle_line("STATS").starts_with("OK stats"));
    }
}
