//! The transport-independent service core: parse a request line, execute it
//! against the [`Registry`], format a response line.
//!
//! Both front doors share this type: the TCP server
//! ([`crate::server::Server`]) feeds it socket lines, the in-process client
//! ([`crate::client::LocalClient`]) calls it directly — which is what the
//! protocol robustness suite, the concurrency oracle and the `serve` bench
//! drive, so the tested surface is exactly the served surface.

use crate::protocol::{parse_request, EditOp, ErrorCode, Request, Response, MAX_CREATE_POINTS};
use crate::registry::{process_ms, storage_error, Registry, Tenant};
use antennae_core::antenna::AntennaBudget;
use antennae_core::shard::ShardSpec;
use antennae_core::solver::Registry as AlgorithmRegistry;
use antennae_geometry::Point;
use antennae_store::{Store, WalTail};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Server-wide request counters.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Request lines handled (OK and ERR alike).
    pub requests: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Edits buffered across all tenants.
    pub edits_buffered: AtomicU64,
    /// Coalesced repairs run across all tenants.
    pub batches: AtomicU64,
    /// Connections refused at the worker-pool queue cap (`overloaded`).
    pub shed_requests: AtomicU64,
    /// Connections evicted by the read/write deadline (slow-loris defence).
    pub timed_out_connections: AtomicU64,
}

/// Per-connection protocol state.  The TCP server keeps one per socket,
/// [`crate::client::LocalClient`] keeps one per client; the ctx-free
/// [`Service::handle_line`] fabricates a fresh one per line (authenticated
/// only when no token is configured).
#[derive(Debug, Clone)]
pub struct ConnState {
    authenticated: bool,
}

impl ConnState {
    /// Whether the connection may issue verbs beyond `PING`/`AUTH`.
    pub fn authenticated(&self) -> bool {
        self.authenticated
    }
}

/// Length-gated constant-time token comparison (no early exit on the first
/// differing byte, so response timing does not leak a prefix match).
fn token_matches(expected: &str, got: &str) -> bool {
    expected.len() == got.len()
        && expected
            .bytes()
            .zip(got.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
}

/// What [`Service::open_durable`] found on disk at boot.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Names of the tenants rebuilt and re-registered, sorted.
    pub recovered: Vec<String>,
    /// Tenants recovery refused to rebuild, as `(name, reason)` — their
    /// directories are left on disk untouched.
    pub skipped: Vec<(String, String)>,
    /// Tenants whose log had a torn or corrupt tail that was truncated.
    pub truncated_tails: usize,
    /// Total bytes discarded across all truncated tails.
    pub lost_bytes: u64,
}

/// The multi-tenant orientation service (see the [module docs](self)).
#[derive(Default)]
pub struct Service {
    registry: Registry,
    stats: ServiceStats,
    shutdown: AtomicBool,
    /// The durability layer (`None` = ephemeral mode, the default).
    store: Option<Store>,
    /// Tenants rebuilt from disk at boot.
    recovered: AtomicU64,
    /// When set, connections must `AUTH <token>` before any verb other than
    /// `PING` (configured before the service is shared).
    auth_token: Option<String>,
    /// When set, caps each tenant's buffered-edit queue: `EDIT` beyond the
    /// cap is rejected with `overloaded` until a repair drains the buffer.
    tenant_quota: Option<usize>,
    /// Spatial-sharding policy applied to every tenant at creation and
    /// recovery (bit-exact to the global engine; a pure cost knob).
    shard_spec: ShardSpec,
}

impl Service {
    /// An empty, ephemeral service (no durability).
    pub fn new() -> Self {
        Service::default()
    }

    /// Opens a durable service over `store`'s data directory: every tenant
    /// directory is recovered into a live session (snapshot + salvaged WAL
    /// tail, one coalesced replay each) and re-registered, and every
    /// subsequent `CREATE`/`EDIT`/`DROP` is logged.  Structurally broken
    /// tenant directories are skipped (reported in the
    /// [`RecoveryReport`]), torn log tails are truncated — boot never
    /// panics on bad bytes.
    pub fn open_durable(store: Store) -> std::io::Result<(Self, RecoveryReport)> {
        Self::open_durable_sharded(store, ShardSpec::default())
    }

    /// [`Service::open_durable`] with an explicit sharding policy: recovered
    /// tenants are re-tiled under `spec` after their WAL replay (replay
    /// always rebuilds on the global engine), and every later `CREATE`
    /// shards under the same policy.  Sharding is bit-exact, so the policy
    /// never changes what a recovered tenant answers — only what its edits
    /// cost.
    pub fn open_durable_sharded(
        store: Store,
        spec: ShardSpec,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let service = Service {
            store: Some(store),
            shard_spec: spec,
            ..Service::default()
        };
        let recovery = service
            .store
            .as_ref()
            .expect("store was just installed")
            .recover()?;
        let mut report = RecoveryReport::default();
        for tenant in recovery.tenants {
            if tenant.wal_tail != WalTail::Clean {
                report.truncated_tails += 1;
                report.lost_bytes += tenant.lost_bytes;
            }
            let mut session = tenant.session;
            session.set_shard_spec(spec);
            match service
                .registry
                .install_recovered(&tenant.name, session, tenant.wal)
            {
                Ok(_) => report.recovered.push(tenant.name),
                Err(e) => report.skipped.push((tenant.name, e.message)),
            }
        }
        report
            .skipped
            .extend(recovery.skipped.into_iter().map(|s| (s.name, s.reason)));
        service
            .recovered
            .store(report.recovered.len() as u64, Ordering::Relaxed);
        Ok((service, report))
    }

    /// Requires `AUTH <token>` on every connection before any verb other
    /// than `PING`.  `None` (the default) disables authentication.  Set
    /// before the service is shared across threads.
    pub fn set_auth_token(&mut self, token: Option<String>) {
        self.auth_token = token;
    }

    /// Caps each tenant's buffered-edit queue: once `pending` reaches the
    /// quota, further `EDIT`s are rejected with `overloaded` (and a
    /// retry-after hint) until `ORIENT`/`VERIFY` drains the buffer.  `None`
    /// (the default) disables the quota.
    pub fn set_tenant_quota(&mut self, quota: Option<usize>) {
        self.tenant_quota = quota;
    }

    /// The configured per-tenant pending-edit quota, if any.
    pub fn tenant_quota(&self) -> Option<usize> {
        self.tenant_quota
    }

    /// Sets the sharding policy for tenants created from now on (the
    /// `--shards auto|N|off` flag).  Set before the service is shared; for
    /// durable boots prefer [`Service::open_durable_sharded`] so recovered
    /// tenants are re-tiled too.
    pub fn set_shard_spec(&mut self, spec: ShardSpec) {
        self.shard_spec = spec;
    }

    /// The sharding policy applied at tenant creation.
    pub fn shard_spec(&self) -> ShardSpec {
        self.shard_spec
    }

    /// A fresh per-connection state: already authenticated when no token is
    /// configured, otherwise gated until a successful `AUTH`.
    pub fn new_conn(&self) -> ConnState {
        ConnState {
            authenticated: self.auth_token.is_none(),
        }
    }

    /// The durability layer, when the service runs durable.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// The tenant registry (tests and the bench reach through for setup).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Returns `true` once a `SHUTDOWN` request was accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Flips the shutdown flag directly (the wire-level `SHUTDOWN` verb does
    /// the same; this is for hosts that own the service in process).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Handles one request line end to end, returning the response line
    /// (without the trailing newline).  Never panics: malformed input maps
    /// to `ERR` lines (pinned by `tests/protocol_robustness.rs`).  Each call
    /// gets a fresh [`ConnState`], so with a token configured this entry
    /// point can only `PING` — hosts with real connections use
    /// [`Service::handle_line_on`].
    pub fn handle_line(&self, line: &str) -> String {
        let mut conn = self.new_conn();
        self.handle_line_on(line, &mut conn)
    }

    /// Handles one request line against a connection's state (see
    /// [`Service::handle_line`] for the response contract).
    pub fn handle_line_on(&self, line: &str, conn: &mut ConnState) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(line) {
            Ok(request) => self.execute_on(request, conn),
            Err(e) => Response::Err(e),
        };
        if !response.is_ok() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        response.to_line()
    }

    /// Executes one parsed request against a fresh connection state (tests
    /// and in-process hosts that don't track authentication).
    pub fn execute(&self, request: Request) -> Response {
        let mut conn = self.new_conn();
        self.execute_on(request, &mut conn)
    }

    /// Executes one parsed request against a connection's state.
    pub fn execute_on(&self, request: Request, conn: &mut ConnState) -> Response {
        // Authentication gates everything except liveness checks and the
        // AUTH verb itself — an unauthenticated connection learns nothing
        // about the deployment set.
        if !conn.authenticated && !matches!(request, Request::Ping | Request::Auth { .. }) {
            return Response::err(
                ErrorCode::Unauthorized,
                "authenticate with AUTH <token> first",
            );
        }
        if self.shutdown_requested() && !matches!(request, Request::Ping | Request::Stats { .. }) {
            return Response::err(ErrorCode::ShuttingDown, "server is shutting down");
        }
        match request {
            Request::Create {
                name,
                k,
                phi,
                points,
            } => self.create(&name, k, phi, &points),
            Request::Edit { name, op } => self.edit(&name, op),
            Request::Orient { name } => self.orient(&name),
            Request::Verify { name } => self.verify(&name),
            Request::Query { name, id } => self.query(&name, id),
            Request::Stats { name } => self.stats_response(name.as_deref()),
            Request::Drop { name } => self.drop_deployment(&name),
            Request::Recover { name } => self.recover(&name),
            Request::Auth { token } => self.auth(&token, conn),
            Request::Ping => Response::ok("pong"),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                // Clean shutdown promises durability regardless of the sync
                // policy: fsync every tenant's log before acknowledging.
                // Failures downgrade the promise, so they are surfaced.
                // Degraded tenants are skipped — their log can't be synced
                // until RECOVER, and the poison discipline already capped
                // what the log acknowledges.
                for tenant in self.registry.tenants() {
                    if tenant.is_degraded() {
                        continue;
                    }
                    if let Err(e) = tenant.sync_wal() {
                        return Response::Err(storage_error(
                            &format!("wal sync for {:?} at shutdown", tenant.name()),
                            &e,
                        ));
                    }
                }
                Response::ok("shutting-down")
            }
        }
    }

    fn create(&self, name: &str, k: usize, phi: f64, points: &[(f64, f64)]) -> Response {
        if points.len() > MAX_CREATE_POINTS {
            return Response::err(
                ErrorCode::TooLarge,
                format!("CREATE carries more than {MAX_CREATE_POINTS} points"),
            );
        }
        let budget = AntennaBudget::new(k, phi);
        // Reject budgets no registered construction serves *before* building
        // the tenant, so `CREATE` fails fast with a budget error instead of
        // a solver error halfway through session construction.  (k = 0 or
        // k > 5 land here too: no paper construction covers them.)
        if AlgorithmRegistry::paper().best_guarantee(&budget).is_none() {
            return Response::err(
                ErrorCode::BadBudget,
                format!("no registered construction serves k={k} phi={phi:.4}"),
            );
        }
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let created = match &self.store {
            None => self
                .registry
                .create_with_wal(name, budget, &pts, None, self.shard_spec),
            Some(store) => {
                // Fail duplicates fast before touching the disk; the
                // registry re-checks under its write lock, so a race still
                // resolves correctly (the loser cleans its directory up).
                if self.registry.contains(name) {
                    Err(crate::protocol::ProtocolError::new(
                        ErrorCode::DuplicateDeployment,
                        format!("deployment {name:?} already exists"),
                    ))
                } else {
                    match store.create_tenant(name, k, phi, &pts) {
                        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                            Err(crate::protocol::ProtocolError::new(
                                ErrorCode::DuplicateDeployment,
                                format!("deployment {name:?} already exists on disk"),
                            ))
                        }
                        Err(e) => Err(storage_error("create tenant directory", &e)),
                        Ok(wal) => self
                            .registry
                            .create_with_wal(name, budget, &pts, Some(wal), self.shard_spec)
                            .inspect_err(|_| {
                                // The solve or the name race failed after the
                                // directory was written: remove it so the bad
                                // CREATE leaves no durable trace.
                                let _ = store.drop_tenant(name);
                            }),
                    }
                }
            }
        };
        match created {
            Ok(tenant) => {
                let snap = tenant.snapshot();
                Response::ok(format!(
                    "created {name} n={} k={k} phi={phi:.6} algo={} incremental={} valid={}",
                    snap.n,
                    snap.algorithm,
                    snap.incremental,
                    snap.report.is_valid()
                ))
            }
            Err(e) => Response::Err(e),
        }
    }

    fn drop_deployment(&self, name: &str) -> Response {
        // The registry is authoritative: unregister first so no new request
        // can reach the tenant, then remove its directory.  A directory
        // removal failure is reported (the name is free again, but a restart
        // would resurrect the tenant from the leftover files).
        if let Err(e) = self.registry.drop_tenant(name) {
            return Response::Err(e);
        }
        if let Some(store) = &self.store {
            if let Err(e) = store.drop_tenant(name) {
                return Response::Err(storage_error(
                    &format!("dropped {name} from the registry, but removing its directory failed"),
                    &e,
                ));
            }
        }
        Response::ok(format!("dropped {name}"))
    }

    fn with_tenant(&self, name: &str, f: impl FnOnce(&Arc<Tenant>) -> Response) -> Response {
        match self.registry.get(name) {
            Ok(tenant) => {
                let response = f(&tenant);
                if !response.is_ok() {
                    tenant.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                response
            }
            Err(e) => Response::Err(e),
        }
    }

    fn auth(&self, token: &str, conn: &mut ConnState) -> Response {
        match self.auth_token.as_deref() {
            None => {
                conn.authenticated = true;
                Response::ok("auth ok no-token-configured")
            }
            Some(expected) if token_matches(expected, token) => {
                conn.authenticated = true;
                Response::ok("auth ok")
            }
            Some(_) => Response::err(ErrorCode::Unauthorized, "bad token"),
        }
    }

    fn recover(&self, name: &str) -> Response {
        self.with_tenant(name, |tenant| match tenant.recover() {
            Ok(()) => Response::ok(format!(
                "recover {name} degraded=false pending={}",
                tenant.pending()
            )),
            Err(e) => Response::Err(e),
        })
    }

    fn edit(&self, name: &str, op: EditOp) -> Response {
        self.with_tenant(name, |tenant| {
            // The quota is a soft bound read without the tenant mutex: a
            // racing burst can land a few edits past it, but the buffer
            // stays O(quota) and the rejection is cheap (no lock, no I/O).
            if let Some(quota) = self.tenant_quota {
                if tenant.pending() >= quota {
                    tenant
                        .stats
                        .quota_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::err(
                        ErrorCode::Overloaded,
                        format!(
                            "pending-edit quota reached ({quota} buffered); \
                             drain with ORIENT retry-after-ms=100"
                        ),
                    );
                }
            }
            match tenant.buffer_edit(op) {
                Ok((inserted, pending)) => {
                    self.stats.edits_buffered.fetch_add(1, Ordering::Relaxed);
                    match inserted {
                        Some(id) => Response::ok(format!("edit {name} id={id} pending={pending}")),
                        None => Response::ok(format!("edit {name} pending={pending}")),
                    }
                }
                Err(e) => Response::Err(e),
            }
        })
    }

    fn orient(&self, name: &str) -> Response {
        self.with_tenant(name, |tenant| match tenant.flush() {
            Ok(flushed) => {
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                let o = &flushed.outcome;
                Response::ok(format!(
                    "orient {name} n={} applied={} algo={} incremental={} mst_changed={} \
                     rows={} valid={} radius={:.6} radius_over_lmax={:.6} revision={}",
                    flushed.n,
                    o.applied,
                    o.algorithm,
                    o.incremental_orientation,
                    o.mst_changed,
                    o.rows_recomputed,
                    o.report.is_valid(),
                    o.report.max_radius,
                    o.measured_radius_over_lmax,
                    flushed.revision,
                ))
            }
            Err(e) => Response::Err(e),
        })
    }

    fn verify(&self, name: &str) -> Response {
        self.with_tenant(name, |tenant| {
            // A degraded tenant keeps serving reads: report the last
            // published snapshot (stale but self-consistent) instead of
            // flushing, and say so on the wire.
            if tenant.is_degraded() {
                let snap = tenant.snapshot();
                let r = &snap.report;
                return Response::ok(format!(
                    "verify {name} n={} valid={} strongly_connected={} scc={} edges={} \
                     max_radius={:.6} radius_over_lmax={:.6} spread={:.6} antennas={} \
                     violations={} revision={} degraded=true stale=true",
                    snap.n,
                    r.is_valid(),
                    r.is_strongly_connected,
                    r.scc_count,
                    r.edge_count,
                    r.max_radius,
                    r.max_radius_over_lmax,
                    r.max_spread_sum,
                    r.max_antenna_count,
                    r.violations.len(),
                    snap.revision,
                ));
            }
            match tenant.flush() {
                Ok(flushed) => {
                    self.stats.batches.fetch_add(1, Ordering::Relaxed);
                    let r = &flushed.outcome.report;
                    Response::ok(format!(
                        "verify {name} n={} valid={} strongly_connected={} scc={} edges={} \
                     max_radius={:.6} radius_over_lmax={:.6} spread={:.6} antennas={} \
                     violations={} revision={}",
                        flushed.n,
                        r.is_valid(),
                        r.is_strongly_connected,
                        r.scc_count,
                        r.edge_count,
                        r.max_radius,
                        r.max_radius_over_lmax,
                        r.max_spread_sum,
                        r.max_antenna_count,
                        r.violations.len(),
                        flushed.revision,
                    ))
                }
                Err(e) => Response::Err(e),
            }
        })
    }

    fn query(&self, name: &str, id: Option<usize>) -> Response {
        self.with_tenant(name, |tenant| {
            tenant.stats.queries.fetch_add(1, Ordering::Relaxed);
            let snap = tenant.snapshot();
            match id {
                None => Response::ok(format!(
                    "query {name} n={} pending={} revision={} lmax={:.6} mst_weight={:.6} \
                     algo={} valid={} strongly_connected={} edges={}",
                    snap.n,
                    tenant.pending(),
                    snap.revision,
                    snap.lmax,
                    snap.mst_weight,
                    snap.algorithm,
                    snap.report.is_valid(),
                    snap.report.is_strongly_connected,
                    snap.report.edge_count,
                )),
                Some(id) => match snap.position_of(id) {
                    Some(p) => Response::ok(format!(
                        "query {name} id={id} x={:.6} y={:.6} revision={}",
                        p.x, p.y, snap.revision
                    )),
                    None => Response::err(
                        ErrorCode::UnknownSensor,
                        format!(
                            "sensor id {id} is not live in snapshot revision {}",
                            snap.revision
                        ),
                    ),
                },
            }
        })
    }

    fn stats_response(&self, name: Option<&str>) -> Response {
        match name {
            None => {
                let degraded_tenants = self
                    .registry
                    .tenants()
                    .iter()
                    .filter(|t| t.is_degraded())
                    .count();
                Response::ok(format!(
                    "stats deployments={} created={} dropped={} recovered={} requests={} \
                     errors={} edits_buffered={} batches={} shed_requests={} \
                     timed_out_connections={} degraded_tenants={}",
                    self.registry.len(),
                    self.registry.created.load(Ordering::Relaxed),
                    self.registry.dropped.load(Ordering::Relaxed),
                    self.recovered.load(Ordering::Relaxed),
                    self.stats.requests.load(Ordering::Relaxed),
                    self.stats.errors.load(Ordering::Relaxed),
                    self.stats.edits_buffered.load(Ordering::Relaxed),
                    self.stats.batches.load(Ordering::Relaxed),
                    self.stats.shed_requests.load(Ordering::Relaxed),
                    self.stats.timed_out_connections.load(Ordering::Relaxed),
                    degraded_tenants,
                ))
            }
            Some(name) => self.with_tenant(name, |tenant| {
                let s = &tenant.stats;
                let snap = tenant.snapshot();
                let last_snapshot = match s.last_snapshot_ms.load(Ordering::Relaxed) {
                    0 => "none".to_string(),
                    stored => process_ms().saturating_sub(stored - 1).to_string(),
                };
                let shards = match snap.shard_grid {
                    Some((x, y)) => format!("{x}x{y}"),
                    None => "off".to_string(),
                };
                Response::ok(format!(
                    "stats {name} n={} pending={} revision={} edits_buffered={} \
                     edits_applied={} batches={} max_batch={} rows_recomputed={} \
                     mst_changed={} queries={} errors={} durable={} wal_records={} \
                     wal_bytes={} snapshots={} last_snapshot_age_ms={} \
                     quota_rejections={} degraded={} shards={shards} shard_occupied={}",
                    snap.n,
                    tenant.pending(),
                    snap.revision,
                    s.edits_buffered.load(Ordering::Relaxed),
                    s.edits_applied.load(Ordering::Relaxed),
                    s.batches.load(Ordering::Relaxed),
                    s.max_batch.load(Ordering::Relaxed),
                    s.rows_recomputed.load(Ordering::Relaxed),
                    s.mst_changed.load(Ordering::Relaxed),
                    s.queries.load(Ordering::Relaxed),
                    s.errors.load(Ordering::Relaxed),
                    tenant.durable(),
                    s.wal_records.load(Ordering::Relaxed),
                    s.wal_bytes.load(Ordering::Relaxed),
                    s.snapshots.load(Ordering::Relaxed),
                    last_snapshot,
                    s.quota_rejections.load(Ordering::Relaxed),
                    tenant.is_degraded(),
                    snap.shard_occupied.unwrap_or(0),
                ))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::payload_field;
    use antennae_core::bounds::theorem2_spread_threshold;

    fn t2(k: usize) -> f64 {
        theorem2_spread_threshold(k)
    }

    #[test]
    fn end_to_end_session_over_handle_line() {
        let svc = Service::new();
        let phi = t2(2);
        let created = svc.handle_line(&format!("CREATE west 2 {phi} 0 0 1 0 2 0.5 1.5 1.5"));
        assert!(created.starts_with("OK created west n=4"), "{created}");

        let buffered = svc.handle_line("EDIT west INSERT 0.5 0.75");
        assert_eq!(buffered, "OK edit west id=4 pending=1");
        let oriented = svc.handle_line("ORIENT west");
        assert!(
            oriented.starts_with("OK orient west n=5 applied=1"),
            "{oriented}"
        );
        let payload = oriented.strip_prefix("OK ").unwrap();
        assert_eq!(payload_field(payload, "valid"), Some("true"));
        assert_eq!(payload_field(payload, "incremental"), Some("true"));

        let verified = svc.handle_line("VERIFY west");
        assert!(verified.contains("strongly_connected=true"), "{verified}");

        let q = svc.handle_line("QUERY west 4");
        assert!(q.starts_with("OK query west id=4 x=0.5"), "{q}");

        let stats = svc.handle_line("STATS west");
        assert!(stats.contains("edits_applied=1"), "{stats}");

        assert_eq!(svc.handle_line("DROP west"), "OK dropped west");
        assert!(svc
            .handle_line("QUERY west")
            .starts_with("ERR unknown-deployment"));
    }

    #[test]
    fn bad_budgets_fail_fast() {
        let svc = Service::new();
        assert!(svc
            .handle_line("CREATE a 0 1.0")
            .starts_with("ERR bad-budget"));
        assert!(svc
            .handle_line("CREATE a 9 1.0")
            .starts_with("ERR bad-budget"));
        // Nothing was created along the way.
        assert!(svc.registry().is_empty());
    }

    #[test]
    fn shutdown_gates_new_work() {
        let svc = Service::new();
        assert_eq!(svc.handle_line("SHUTDOWN"), "OK shutting-down");
        assert!(svc.shutdown_requested());
        assert!(svc
            .handle_line("CREATE a 2 3.8")
            .starts_with("ERR shutting-down"));
        // Liveness and stats still answer during drain.
        assert_eq!(svc.handle_line("PING"), "OK pong");
        assert!(svc.handle_line("STATS").starts_with("OK stats"));
    }
}
