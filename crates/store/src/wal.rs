//! The per-tenant write-ahead log: an append-only file of length-prefixed,
//! CRC32-checksummed records encoding the protocol-level mutations.
//!
//! ## Record format
//!
//! ```text
//! record   := len:u32le  crc:u32le  payload[len]        (crc = CRC32(payload))
//! payload  := 0x01 k:u32 phi:f64bits n:u32 (x:f64bits y:f64bits)*n   CREATE
//!           | 0x02 x:f64bits y:f64bits                               INSERT
//!           | 0x03 id:u64                                            REMOVE
//!           | 0x04 id:u64 x:f64bits y:f64bits                        MOVE
//! ```
//!
//! All integers are little-endian; coordinates are stored as
//! [`f64::to_bits`] so the round trip is bit-exact (the recovery oracle
//! compares `lmax`/MST weights with `to_bits` equality, so the log cannot
//! afford a decimal detour).
//!
//! ## Failure semantics
//!
//! [`read_wal`] is **total and salvaging**: it walks records until the first
//! anomaly — a truncated header, a length prefix that is zero or exceeds
//! [`MAX_PAYLOAD_BYTES`] (a bit-flip in the prefix reads as garbage), a body
//! shorter than its prefix (torn tail), a CRC mismatch (bit-flip anywhere in
//! the payload), or an undecodable payload — reports how many bytes and
//! records were salvaged, and never panics.  Recovery truncates the file to
//! the salvaged prefix before appending again.
//!
//! On the write side, every I/O failure — disk full, short write, fsync
//! error — **poisons** the writer ([`WalWriter::poisoned`]): the failing
//! record is un-acknowledged (its bytes logically excised), and every
//! subsequent append/sync/rollback fails fast until
//! [`WalWriter::try_recover`] truncates the file back to the acknowledged
//! prefix, re-flushes any acknowledged-but-buffered bytes, and syncs.  The
//! invariant the poison machinery defends: *the log's acknowledged content
//! never includes a record whose append reported failure*, uniformly across
//! sync policies.  All I/O goes through the [`crate::vfs::Vfs`] seam so the
//! fault matrix is exercised deterministically in tests.

use crate::crc::crc32;
use crate::vfs::{RealVfs, Vfs, VfsFile};
use antennae_core::dynamic::Edit;
use antennae_geometry::Point;
use std::path::{Path, PathBuf};

/// Hard cap on one record's payload, in bytes.  A `CREATE` carrying the
/// protocol's maximum of 65 536 seed points needs ~1 MiB; anything above the
/// cap can only be a corrupt length prefix.
pub const MAX_PAYLOAD_BYTES: u32 = 2 * 1024 * 1024;

/// Userspace buffer threshold: the writer hands its buffer to the OS once it
/// grows past this even when the sync policy demands nothing, so an
/// `EveryN`/`Never` log never holds unbounded state in process memory.
const FLUSH_THRESHOLD: usize = 64 * 1024;

const TAG_CREATE: u8 = 0x01;
const TAG_INSERT: u8 = 0x02;
const TAG_REMOVE: u8 = 0x03;
const TAG_MOVE: u8 = 0x04;

/// When appended records are forced to disk (`fsync`).
///
/// Every policy still bounds userspace buffering (see `FLUSH_THRESHOLD`);
/// the policy only controls how much acknowledged work a `kill -9` (or power
/// loss) may take with it:
///
/// * [`SyncPolicy::Always`] — flush + `fsync` after every record; nothing
///   acknowledged is ever lost.
/// * [`SyncPolicy::EveryN`] — flush + `fsync` every `n` records; at most
///   `n − 1` acknowledged edits are lost, amortizing the sync cost across a
///   burst (the durable-mode default).
/// * [`SyncPolicy::Never`] — never `fsync` mid-run (a clean shutdown still
///   syncs on close); a crash loses whatever the OS had not written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append.
    Always,
    /// `fsync` every `n` appends (`n ≥ 1`).
    EveryN(u32),
    /// Only sync on clean close.
    Never,
}

impl Default for SyncPolicy {
    /// The durable-mode default: amortized group commit, `every-n=32`.
    fn default() -> Self {
        SyncPolicy::EveryN(32)
    }
}

impl SyncPolicy {
    /// Parses the `orientd --sync` flag grammar:
    /// `always`, `never`, `every-n` (default stride 32) or `every-n=<N>`.
    pub fn parse(token: &str) -> Option<SyncPolicy> {
        match token {
            "always" => Some(SyncPolicy::Always),
            "never" => Some(SyncPolicy::Never),
            "every-n" => Some(SyncPolicy::EveryN(32)),
            _ => {
                let n: u32 = token.strip_prefix("every-n=")?.parse().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(SyncPolicy::EveryN(n))
                }
            }
        }
    }

    /// The canonical flag spelling (`SyncPolicy::parse` round-trips it).
    pub fn as_flag(&self) -> String {
        match self {
            SyncPolicy::Always => "always".to_string(),
            SyncPolicy::EveryN(n) => format!("every-n={n}"),
            SyncPolicy::Never => "never".to_string(),
        }
    }
}

/// One durable record: the tenant-creating `CREATE` (budget + seed points)
/// or a single edit.  `DROP` needs no record — dropping a tenant removes its
/// directory.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The tenant's birth: antenna budget plus seed deployment.  Always the
    /// first record of a fresh (never-compacted) log.
    Create {
        /// Antennae per sensor.
        k: usize,
        /// Angular spread budget, radians.
        phi: f64,
        /// Seed sensor locations (ids `0..n` in order).
        points: Vec<Point>,
    },
    /// One protocol edit (`INSERT`/`REMOVE`/`MOVE`), logged at `EDIT` time
    /// *before* the edit enters the tenant's buffer.
    Edit(Edit),
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.data.get(self.at..self.at + n)?;
        self.at += n;
        Some(bytes)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.at == self.data.len()
    }
}

impl WalRecord {
    /// Serializes the payload (without the `len`/`crc` frame).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Create { k, phi, points } => {
                out.push(TAG_CREATE);
                push_u32(out, *k as u32);
                push_f64(out, *phi);
                push_u32(out, points.len() as u32);
                for p in points {
                    push_f64(out, p.x);
                    push_f64(out, p.y);
                }
            }
            WalRecord::Edit(Edit::Insert(p)) => {
                out.push(TAG_INSERT);
                push_f64(out, p.x);
                push_f64(out, p.y);
            }
            WalRecord::Edit(Edit::Remove(id)) => {
                out.push(TAG_REMOVE);
                push_u64(out, *id as u64);
            }
            WalRecord::Edit(Edit::Move(id, p)) => {
                out.push(TAG_MOVE);
                push_u64(out, *id as u64);
                push_f64(out, p.x);
                push_f64(out, p.y);
            }
        }
    }

    /// Decodes one payload.  `None` on any structural anomaly: unknown tag,
    /// short fields, trailing bytes, or a point count that disagrees with
    /// the payload length.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor {
            data: payload,
            at: 0,
        };
        let record = match c.u8()? {
            TAG_CREATE => {
                let k = c.u32()? as usize;
                let phi = c.f64()?;
                let n = c.u32()? as usize;
                // Guard the multiplication against a forged count before
                // allocating.
                if payload.len() < 1 + 4 + 8 + 4 || n > (payload.len() - 17) / 16 + 1 {
                    return None;
                }
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    let x = c.f64()?;
                    let y = c.f64()?;
                    points.push(Point::new(x, y));
                }
                WalRecord::Create { k, phi, points }
            }
            TAG_INSERT => WalRecord::Edit(Edit::Insert(Point::new(c.f64()?, c.f64()?))),
            TAG_REMOVE => WalRecord::Edit(Edit::Remove(c.u64()? as usize)),
            TAG_MOVE => {
                let id = c.u64()? as usize;
                WalRecord::Edit(Edit::Move(id, Point::new(c.f64()?, c.f64()?)))
            }
            _ => return None,
        };
        if c.done() {
            Some(record)
        } else {
            None
        }
    }

    /// Serializes the full framed record (`len` + `crc` + payload).
    pub fn encode_framed(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        push_u32(out, payload.len() as u32);
        push_u32(out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
}

/// Why [`read_wal`] stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The file ended exactly at a record boundary.
    Clean,
    /// Fewer than 8 bytes remained after the last good record (a torn
    /// `len`/`crc` header).
    TornHeader,
    /// The length prefix promised more bytes than the file holds (a torn
    /// write at the tail).
    TornBody,
    /// A structurally invalid record: zero/oversized length prefix, CRC
    /// mismatch, or an undecodable payload.
    Corrupt,
}

/// What [`read_wal`] salvaged.
#[derive(Debug, Clone)]
pub struct WalReadOutcome {
    /// Every record up to the first anomaly, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of valid prefix (recovery truncates the file to this).
    pub salvaged_bytes: u64,
    /// Total file size, so callers can report how much was lost.
    pub file_bytes: u64,
    /// How the walk ended.
    pub tail: WalTail,
}

impl WalReadOutcome {
    /// Bytes past the valid prefix (0 on a clean tail).
    pub fn lost_bytes(&self) -> u64 {
        self.file_bytes - self.salvaged_bytes
    }
}

/// Reads a WAL file, salvaging the longest valid record prefix.  A missing
/// file reads as an empty, clean log (compaction creates the next epoch's
/// log lazily, so "no file yet" is a legal state).  Never panics on any
/// byte content.
pub fn read_wal(path: &Path) -> std::io::Result<WalReadOutcome> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    let tail = loop {
        let remaining = data.len() - at;
        if remaining == 0 {
            break WalTail::Clean;
        }
        if remaining < 8 {
            break WalTail::TornHeader;
        }
        let len = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().unwrap());
        if len == 0 || len > MAX_PAYLOAD_BYTES {
            break WalTail::Corrupt;
        }
        let len = len as usize;
        if remaining < 8 + len {
            break WalTail::TornBody;
        }
        let payload = &data[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            break WalTail::Corrupt;
        }
        match WalRecord::decode_payload(payload) {
            Some(record) => records.push(record),
            None => break WalTail::Corrupt,
        }
        at += 8 + len;
    };
    Ok(WalReadOutcome {
        records,
        salvaged_bytes: at as u64,
        file_bytes: data.len() as u64,
        tail,
    })
}

/// The buffered appender.  Records accumulate in a userspace buffer, reach
/// the OS at the latest when the buffer crosses `FLUSH_THRESHOLD`, and
/// reach the disk per the [`SyncPolicy`].  The writer also tracks a
/// **committed** watermark: the serve layer marks it after every successful
/// coalesced repair, and rolls uncommitted records back when a repair
/// rejects its batch — keeping the log's content exactly equal to the edits
/// the live session actually holds.
///
/// ## Poisoning
///
/// Any I/O failure poisons the writer.  While poisoned, the *logical* state
/// (`records`, `written`, `buf`) describes exactly the acknowledged
/// history; the *physical* file may be longer (a record that flushed but
/// failed its sync, a short write's torn prefix).  [`WalWriter::try_recover`]
/// reconciles the two: `set_len(written)`, re-flush `buf`, `sync`.  Until
/// that succeeds, append/sync/rollback fail fast — the serve layer maps
/// this to the tenant's `degraded-read-only` state.
#[derive(Debug)]
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    policy: SyncPolicy,
    /// Appended but not yet written to the OS.
    buf: Vec<u8>,
    /// Bytes handed to the OS (== file length when healthy; while poisoned
    /// the physical file may be longer and recovery truncates to this).
    written: u64,
    since_sync: u32,
    records: u64,
    committed_records: u64,
    committed_bytes: u64,
    /// `Some(reason)` after an I/O failure, until `try_recover` succeeds.
    poison: Option<String>,
}

impl WalWriter {
    /// Creates a fresh log on the real filesystem (fails if the file
    /// exists).
    pub fn create(path: &Path, policy: SyncPolicy) -> std::io::Result<Self> {
        Self::create_with(&RealVfs, path, policy)
    }

    /// Creates a fresh log through `vfs` (fails if the file exists).
    pub fn create_with(vfs: &dyn Vfs, path: &Path, policy: SyncPolicy) -> std::io::Result<Self> {
        let file = vfs.create_append(path)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            buf: Vec::new(),
            written: 0,
            since_sync: 0,
            records: 0,
            committed_records: 0,
            committed_bytes: 0,
            poison: None,
        })
    }

    /// [`WalWriter::open_salvaged_with`] on the real filesystem.
    pub fn open_salvaged(
        path: &Path,
        policy: SyncPolicy,
        valid_bytes: u64,
        valid_records: u64,
    ) -> std::io::Result<Self> {
        Self::open_salvaged_with(&RealVfs, path, policy, valid_bytes, valid_records)
    }

    /// Reopens a recovered log for appending: truncates to the salvaged
    /// `valid_bytes` prefix (discarding any torn/corrupt tail) and resumes
    /// with the salvaged record count.  Creates the file when recovery found
    /// none (a compaction that crashed before creating the next epoch's
    /// log).
    pub fn open_salvaged_with(
        vfs: &dyn Vfs,
        path: &Path,
        policy: SyncPolicy,
        valid_bytes: u64,
        valid_records: u64,
    ) -> std::io::Result<Self> {
        let mut file = vfs.open_append(path)?;
        file.set_len(valid_bytes)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            buf: Vec::new(),
            written: valid_bytes,
            since_sync: 0,
            records: valid_records,
            committed_records: valid_records,
            committed_bytes: valid_bytes,
            poison: None,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (committed or not).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Logical log size in bytes (OS-written plus still-buffered).
    pub fn bytes(&self) -> u64 {
        self.written + self.buf.len() as u64
    }

    /// The poison reason, if the writer is poisoned.
    pub fn poisoned(&self) -> Option<&str> {
        self.poison.as_deref()
    }

    fn check_poison(&self) -> std::io::Result<()> {
        match &self.poison {
            Some(reason) => Err(std::io::Error::other(format!("wal poisoned: {reason}"))),
            None => Ok(()),
        }
    }

    /// Appends one record and applies the sync policy.
    ///
    /// On I/O failure the record is **un-acknowledged** — the writer's
    /// logical state reverts to exactly the pre-append history — and the
    /// writer is poisoned until [`WalWriter::try_recover`] succeeds.  The
    /// caller must surface the error instead of applying the edit: an `OK`
    /// goes out only for records this method returned `Ok` for.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.check_poison()?;
        // The acknowledged history ends here, whatever happens next.
        let acked_end = self.written + self.buf.len() as u64;
        let buf_before = self.buf.len();
        record.encode_framed(&mut self.buf);
        self.records += 1;
        let result = match self.policy {
            SyncPolicy::Always => self.flush_os_inner().and_then(|_| self.file.sync_data()),
            SyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    let r = self.flush_os_inner().and_then(|_| self.file.sync_data());
                    if r.is_ok() {
                        self.since_sync = 0;
                    }
                    r
                } else if self.buf.len() > FLUSH_THRESHOLD {
                    self.flush_os_inner()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => {
                if self.buf.len() > FLUSH_THRESHOLD {
                    self.flush_os_inner()
                } else {
                    Ok(())
                }
            }
        };
        if let Err(e) = result {
            // Excise the failing record from the logical state.  Two cases:
            // the flush never cleared the buffer (record bytes still in
            // `buf` — cut them), or the flush succeeded and the sync failed
            // (record bytes in the OS past `acked_end` — recovery's
            // `set_len` cuts them).  Acknowledged-but-unsynced records from
            // earlier appends stay: below `acked_end` or still in `buf`.
            if self.buf.len() > buf_before {
                self.buf.truncate(buf_before);
            } else {
                debug_assert!(self.buf.is_empty(), "flush clears the whole buffer");
                self.written = acked_end;
            }
            self.records -= 1;
            self.poison = Some(e.to_string());
            return Err(e);
        }
        Ok(())
    }

    /// Marks everything appended so far as committed (called after the
    /// records' edits were successfully applied to the live session).
    pub fn commit(&mut self) {
        self.committed_records = self.records;
        self.committed_bytes = self.bytes();
    }

    /// Discards every record appended since the last [`WalWriter::commit`]
    /// — the mirror of the session rejecting a coalesced batch atomically.
    pub fn rollback_to_committed(&mut self) -> std::io::Result<()> {
        self.check_poison()?;
        if self.committed_bytes >= self.written {
            // The uncommitted tail never left the userspace buffer.
            self.buf
                .truncate((self.committed_bytes - self.written) as usize);
        } else {
            // Part of the tail reached the OS; cut the file back.  The
            // handle is append-mode, so subsequent writes land at the new
            // end without an explicit seek.
            self.buf.clear();
            let target = self.committed_bytes;
            if let Err(e) = self.file.set_len(target) {
                // The file still holds records memory is about to discard:
                // poison with the logical state at the committed watermark,
                // so recovery's own set_len finishes the cut.
                self.written = target;
                self.records = self.committed_records;
                self.poison = Some(format!("rollback truncate failed: {e}"));
                return Err(e);
            }
            self.written = target;
        }
        self.records = self.committed_records;
        self.since_sync = 0;
        Ok(())
    }

    /// Hands the userspace buffer to the OS (no `fsync`, no poison
    /// bookkeeping — callers handle failure).
    fn flush_os_inner(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.written += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Hands the userspace buffer to the OS (no `fsync`).  Failure poisons
    /// the writer: everything buffered is acknowledged history, so the
    /// logical state is untouched and recovery re-flushes it.
    pub fn flush_os(&mut self) -> std::io::Result<()> {
        self.check_poison()?;
        if let Err(e) = self.flush_os_inner() {
            self.poison = Some(e.to_string());
            return Err(e);
        }
        Ok(())
    }

    /// Flush + `fsync`, regardless of policy (clean shutdown, and the final
    /// barrier before a snapshot supersedes this log).  Failure poisons the
    /// writer; no acknowledged state is forgotten (the unflushed bytes stay
    /// in `buf`, flushed-but-unsynced bytes stay below `written`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.check_poison()?;
        if let Err(e) = self.flush_os_inner().and_then(|_| self.file.sync_data()) {
            self.poison = Some(e.to_string());
            return Err(e);
        }
        self.since_sync = 0;
        Ok(())
    }

    /// Attempts to clear a poisoned writer: truncates the physical file to
    /// the acknowledged prefix, re-flushes any acknowledged bytes still in
    /// the userspace buffer, and syncs.  A no-op on a healthy writer.  On
    /// failure the writer stays poisoned (with the fresh reason) and the
    /// attempt is safe to repeat — every step is idempotent.
    pub fn try_recover(&mut self) -> std::io::Result<()> {
        if self.poison.is_none() {
            return Ok(());
        }
        let result = self
            .file
            .set_len(self.written)
            .and_then(|_| self.flush_os_inner())
            .and_then(|_| self.file.sync_data());
        match result {
            Ok(()) => {
                self.poison = None;
                self.since_sync = 0;
                Ok(())
            }
            Err(e) => {
                self.poison = Some(format!("recovery failed: {e}"));
                Err(e)
            }
        }
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a crash skips this by
        // definition and the sync policy bounds what it can lose.  A
        // poisoned writer skips it too — its durable prefix is already
        // exactly the acknowledged history minus what the poison reported.
        if self.poison.is_none() {
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("antennae-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.0.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Create {
                k: 2,
                phi: 3.769_911_184_307_751_7,
                points: vec![Point::new(0.0, 0.0), Point::new(1.5, -2.25)],
            },
            WalRecord::Edit(Edit::Insert(Point::new(0.125, 7.75))),
            WalRecord::Edit(Edit::Remove(1)),
            WalRecord::Edit(Edit::Move(0, Point::new(-3.5, 0.0625))),
        ]
    }

    #[test]
    fn round_trips_every_record_type() {
        let path = tmp("round-trip");
        let mut writer = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        for record in sample_records() {
            writer.append(&record).unwrap();
        }
        writer.commit();
        drop(writer);
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.tail, WalTail::Clean);
        assert_eq!(outcome.records, sample_records());
        assert_eq!(outcome.lost_bytes(), 0);
        assert_eq!(outcome.salvaged_bytes, outcome.file_bytes);
    }

    #[test]
    fn payload_round_trip_is_bit_exact() {
        // Denormals, negative zero, extreme exponents: to_bits round trip.
        let nasty = [0.0f64, -0.0, f64::MIN_POSITIVE / 2.0, 1e300, -1e-300];
        for &x in &nasty {
            for &y in &nasty {
                let record = WalRecord::Edit(Edit::Move(7, Point::new(x, y)));
                let mut payload = Vec::new();
                record.encode_payload(&mut payload);
                let back = WalRecord::decode_payload(&payload).unwrap();
                match back {
                    WalRecord::Edit(Edit::Move(id, p)) => {
                        assert_eq!(id, 7);
                        assert_eq!(p.x.to_bits(), x.to_bits());
                        assert_eq!(p.y.to_bits(), y.to_bits());
                    }
                    other => panic!("wrong decode: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn never_policy_buffers_and_clean_close_persists() {
        let path = tmp("never-close");
        let mut writer = WalWriter::create(&path, SyncPolicy::Never).unwrap();
        for record in sample_records() {
            writer.append(&record).unwrap();
        }
        // Nothing forced out yet (buffer below threshold).
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        drop(writer); // clean close syncs
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.records.len(), 4);
        assert_eq!(outcome.tail, WalTail::Clean);
    }

    #[test]
    fn every_n_syncs_on_stride() {
        let path = tmp("every-n");
        let mut writer = WalWriter::create(&path, SyncPolicy::EveryN(3)).unwrap();
        let record = WalRecord::Edit(Edit::Remove(0));
        writer.append(&record).unwrap();
        writer.append(&record).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0, "pre-stride");
        writer.append(&record).unwrap();
        assert!(
            std::fs::metadata(&path).unwrap().len() > 0,
            "stride hit forces the buffer out"
        );
        std::mem::forget(writer); // simulate kill -9: no Drop sync
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.records.len(), 3);
    }

    #[test]
    fn rollback_discards_uncommitted_records() {
        let path = tmp("rollback");
        let mut writer = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        writer
            .append(&WalRecord::Edit(Edit::Insert(Point::new(1.0, 2.0))))
            .unwrap();
        writer.commit();
        // Two uncommitted appends, one of which already hit the OS
        // (Always syncs every record) — rollback must set_len the file.
        writer.append(&WalRecord::Edit(Edit::Remove(9))).unwrap();
        writer.append(&WalRecord::Edit(Edit::Remove(10))).unwrap();
        assert_eq!(writer.records(), 3);
        writer.rollback_to_committed().unwrap();
        assert_eq!(writer.records(), 1);
        // The log can keep appending after a rollback.
        writer
            .append(&WalRecord::Edit(Edit::Move(0, Point::new(5.0, 5.0))))
            .unwrap();
        writer.commit();
        drop(writer);
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.tail, WalTail::Clean);
        assert_eq!(
            outcome.records,
            vec![
                WalRecord::Edit(Edit::Insert(Point::new(1.0, 2.0))),
                WalRecord::Edit(Edit::Move(0, Point::new(5.0, 5.0))),
            ]
        );
    }

    #[test]
    fn open_salvaged_truncates_and_resumes() {
        let path = tmp("salvage-resume");
        let mut writer = WalWriter::create(&path, SyncPolicy::Always).unwrap();
        writer.append(&WalRecord::Edit(Edit::Remove(1))).unwrap();
        drop(writer);
        let good = std::fs::metadata(&path).unwrap().len();
        // Torn tail: half a header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.tail, WalTail::TornHeader);
        assert_eq!(outcome.salvaged_bytes, good);

        let mut writer = WalWriter::open_salvaged(
            &path,
            SyncPolicy::Always,
            outcome.salvaged_bytes,
            outcome.records.len() as u64,
        )
        .unwrap();
        writer.append(&WalRecord::Edit(Edit::Remove(2))).unwrap();
        drop(writer);
        let outcome = read_wal(&path).unwrap();
        assert_eq!(outcome.tail, WalTail::Clean);
        assert_eq!(
            outcome.records,
            vec![
                WalRecord::Edit(Edit::Remove(1)),
                WalRecord::Edit(Edit::Remove(2)),
            ]
        );
    }

    /// Satellite regression: any sync/write failure poisons the writer
    /// until explicit recovery, uniformly across policies — and the failing
    /// record is never part of the durable history.
    mod poison {
        use super::*;
        use crate::vfs::{FaultKind, FaultScript, FaultSpec, FaultVfs, OpClass};

        fn rec(id: usize) -> WalRecord {
            WalRecord::Edit(Edit::Remove(id))
        }

        fn fault(class: OpClass, at: u64, kind: FaultKind) -> FaultVfs {
            FaultVfs::new(FaultScript::new(vec![FaultSpec { class, at, kind }]))
        }

        fn assert_poison_cycle(
            path: &Path,
            mut writer: WalWriter,
            failing_append: WalRecord,
            expect: Vec<WalRecord>,
        ) {
            // Poisoned: every mutation fails fast with the poison error.
            let err = writer.append(&rec(98)).unwrap_err();
            assert!(err.to_string().contains("wal poisoned"), "{err}");
            let err = writer.sync().unwrap_err();
            assert!(err.to_string().contains("wal poisoned"), "{err}");
            // Recovery clears it (the fault script is exhausted).
            writer.try_recover().unwrap();
            assert!(writer.poisoned().is_none());
            writer.append(&failing_append).unwrap();
            writer.commit();
            drop(writer);
            let outcome = read_wal(path).unwrap();
            assert_eq!(outcome.tail, WalTail::Clean);
            assert_eq!(outcome.records, expect, "durable history");
        }

        #[test]
        fn always_sync_failure_unacks_the_record() {
            let path = tmp("poison-always-sync");
            let vfs = fault(OpClass::Sync, 1, FaultKind::SyncFailure);
            let mut writer = WalWriter::create_with(&vfs, &path, SyncPolicy::Always).unwrap();
            writer.append(&rec(1)).unwrap(); // sync #0: clean
            let err = writer.append(&rec(2)).unwrap_err(); // sync #1: injected
            assert!(err.to_string().contains("fsync failure"), "{err}");
            assert!(writer.poisoned().is_some());
            assert_eq!(writer.records(), 1, "failed record un-acknowledged");
            // Record 2's bytes reached the OS before the sync failed;
            // recovery must excise them.
            assert_poison_cycle(&path, writer, rec(3), vec![rec(1), rec(3)]);
        }

        #[test]
        fn always_disk_full_leaves_no_trace() {
            let path = tmp("poison-always-full");
            let vfs = fault(OpClass::Write, 1, FaultKind::DiskFull);
            let mut writer = WalWriter::create_with(&vfs, &path, SyncPolicy::Always).unwrap();
            writer.append(&rec(1)).unwrap();
            let err = writer.append(&rec(2)).unwrap_err();
            assert!(err.to_string().contains("disk-full"), "{err}");
            assert_eq!(writer.records(), 1);
            assert_poison_cycle(&path, writer, rec(3), vec![rec(1), rec(3)]);
        }

        #[test]
        fn every_n_sync_failure_keeps_acknowledged_unsynced_neighbours() {
            // The boundary case the unification exists for: at every-n=2 the
            // failing sync covers record 1 (acknowledged, never synced) and
            // record 2 (the failing append).  Only record 2 may vanish.
            let path = tmp("poison-everyn");
            let vfs = fault(OpClass::Sync, 0, FaultKind::SyncFailure);
            let mut writer = WalWriter::create_with(&vfs, &path, SyncPolicy::EveryN(2)).unwrap();
            writer.append(&rec(1)).unwrap(); // buffered, no I/O
            let err = writer.append(&rec(2)).unwrap_err(); // stride: flush ok, sync fails
            assert!(err.to_string().contains("fsync failure"), "{err}");
            assert_eq!(writer.records(), 1, "record 1 survives, record 2 does not");
            assert_poison_cycle(&path, writer, rec(3), vec![rec(1), rec(3)]);
        }

        #[test]
        fn never_flush_failure_poisons_and_recovery_preserves_buffer() {
            let path = tmp("poison-never");
            let vfs = fault(OpClass::Write, 0, FaultKind::ShortWrite);
            let mut writer = WalWriter::create_with(&vfs, &path, SyncPolicy::Never).unwrap();
            writer.append(&rec(1)).unwrap(); // buffered: acknowledged
            let err = writer.sync().unwrap_err(); // explicit barrier: torn write
            assert!(err.to_string().contains("short write"), "{err}");
            assert!(writer.poisoned().is_some());
            assert_eq!(writer.records(), 1, "acknowledged record is not forgotten");
            // Recovery truncates the torn prefix and re-flushes the buffer.
            assert_poison_cycle(&path, writer, rec(3), vec![rec(1), rec(3)]);
        }

        #[test]
        fn slow_io_is_not_a_fault() {
            let path = tmp("poison-slow");
            let vfs = fault(OpClass::Write, 0, FaultKind::SlowIo(1));
            let mut writer = WalWriter::create_with(&vfs, &path, SyncPolicy::Always).unwrap();
            writer.append(&rec(1)).unwrap();
            assert!(writer.poisoned().is_none());
            writer.commit();
            drop(writer);
            assert_eq!(read_wal(&path).unwrap().records, vec![rec(1)]);
        }
    }

    #[test]
    fn sync_policy_flag_grammar() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never"), Some(SyncPolicy::Never));
        assert_eq!(SyncPolicy::parse("every-n"), Some(SyncPolicy::EveryN(32)));
        assert_eq!(
            SyncPolicy::parse("every-n=128"),
            Some(SyncPolicy::EveryN(128))
        );
        assert_eq!(SyncPolicy::parse("every-n=0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        for policy in [SyncPolicy::Always, SyncPolicy::Never, SyncPolicy::EveryN(7)] {
            assert_eq!(SyncPolicy::parse(&policy.as_flag()), Some(policy));
        }
    }
}
