//! The directory-level durability API: one [`Store`] per `--data-dir`, one
//! subdirectory per tenant, and [`Store::recover`] to turn a directory tree
//! back into live [`DynamicSolverSession`]s after a restart.
//!
//! Lifecycle of a tenant directory:
//!
//! 1. **Birth** — [`Store::create_tenant`] makes `<root>/<name>/` and writes
//!    `wal.0.log` whose first record is `CREATE` (budget + seed points),
//!    synced unconditionally: the tenant's existence is never policy-soft.
//! 2. **Churn** — the serve layer appends one record per acknowledged `EDIT`
//!    via [`TenantWal::append_edit`], marks [`TenantWal::commit`] after each
//!    successful coalesced repair and [`TenantWal::rollback`] when a repair
//!    rejects its batch, keeping log content equal to applied history.
//! 3. **Compaction** — once the log outgrows the configured thresholds,
//!    [`TenantWal::compact`] snapshots the live state at epoch `e+1`,
//!    starts `wal.<e+1>.log` and deletes `wal.<e>.log` last, so a crash at
//!    any point leaves either (old snapshot, old log) or (new snapshot,
//!    empty new log) — never a double-apply.
//! 4. **Death** — [`Store::drop_tenant`] removes the directory.
//!
//! [`Store::recover`] is total over arbitrary directory contents: torn and
//! corrupt log tails are truncated to the salvaged prefix, stale epochs are
//! swept, and structurally broken tenants (corrupt snapshot, missing
//! `CREATE`) are reported as [`SkippedTenant`]s instead of failing the boot.

use crate::snapshot::{read_snapshot, SnapshotReadOutcome, SnapshotState};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{read_wal, SyncPolicy, WalRecord, WalTail, WalWriter};
use antennae_core::dynamic::{DynamicSolverSession, Edit, SensorId};
use antennae_core::AntennaBudget;
use antennae_geometry::Point;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Tuning for a [`Store`]: how hard the WAL syncs and when it compacts.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// When appended records are fsynced (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Compact once the current log holds at least this many records.
    pub compact_records: u64,
    /// Compact once the current log holds at least this many bytes.
    pub compact_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            sync: SyncPolicy::EveryN(32),
            compact_records: 1024,
            compact_bytes: 1 << 20,
        }
    }
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal.{epoch}.log"))
}

/// Parses `wal.<epoch>.log` file names (used to sweep stale epochs).
fn parse_wal_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("wal.")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// One tenant's durable write handle: the current-epoch [`WalWriter`] plus
/// the compaction machinery.  Lives next to the tenant's live session (the
/// serve layer keeps both under the same mutex).
#[derive(Debug)]
pub struct TenantWal {
    dir: PathBuf,
    epoch: u64,
    writer: WalWriter,
    config: StoreConfig,
    vfs: Arc<dyn Vfs>,
    snapshots: u64,
    last_snapshot: Option<Instant>,
    /// `Some(reason)` after a compaction failed past its sync barrier: the
    /// in-memory epoch and the on-disk epoch may disagree, and only
    /// [`TenantWal::try_recover`]'s reconciliation may mutate again.
    compact_poison: Option<String>,
}

impl TenantWal {
    /// Appends one edit record under the configured sync policy.
    pub fn append_edit(&mut self, edit: &Edit) -> std::io::Result<()> {
        self.check_compact_poison()?;
        self.writer.append(&WalRecord::Edit(*edit))
    }

    fn check_compact_poison(&self) -> std::io::Result<()> {
        match &self.compact_poison {
            Some(reason) => Err(std::io::Error::other(format!("wal poisoned: {reason}"))),
            None => Ok(()),
        }
    }

    /// The poison reason if a previous I/O failure poisoned this handle —
    /// either the writer itself (failed append/sync) or an incomplete
    /// compaction.  The serve layer mirrors this as the tenant's degraded
    /// state.
    pub fn poisoned(&self) -> Option<&str> {
        self.compact_poison.as_deref().or(self.writer.poisoned())
    }

    /// Attempts to clear a poisoned handle.  For a poisoned writer this is
    /// the truncate/flush/sync cycle of [`WalWriter::try_recover`]; for an
    /// incomplete compaction it reconciles with the disk: if the new
    /// snapshot was published, roll the compaction **forward** (durable-sync
    /// the publish, switch to the new epoch's log, drop the superseded one);
    /// otherwise roll it **back** (sweep the leftovers, stay on the current
    /// epoch).  A no-op on a healthy handle; safe to retry on failure.
    pub fn try_recover(&mut self) -> std::io::Result<()> {
        self.writer.try_recover()?;
        if self.compact_poison.is_none() {
            return Ok(());
        }
        let published = matches!(
            read_snapshot(&self.dir.join("snapshot.bin"))?,
            SnapshotReadOutcome::Valid(s) if s.epoch == self.epoch + 1
        );
        if published {
            // The rename happened; make it durable before trusting it, then
            // adopt the new epoch.  The new log holds nothing (the tenant
            // was read-only from the moment the compaction failed), but
            // open it salvaging anyway — a torn create costs nothing here.
            self.vfs.sync_dir(&self.dir)?;
            let next_path = wal_path(&self.dir, self.epoch + 1);
            let salvage = read_wal(&next_path)?;
            let writer = WalWriter::open_salvaged_with(
                &*self.vfs,
                &next_path,
                self.config.sync,
                salvage.salvaged_bytes,
                salvage.records.len() as u64,
            )?;
            let old_path = wal_path(&self.dir, self.epoch);
            self.writer = writer;
            self.epoch += 1;
            self.snapshots += 1;
            self.last_snapshot = Some(Instant::now());
            let _ = std::fs::remove_file(old_path);
        } else {
            // The old (snapshot, log) pair is still authoritative; sweep
            // what the failed attempt left behind.
            let _ = std::fs::remove_file(self.dir.join("snapshot.tmp"));
            let _ = std::fs::remove_file(wal_path(&self.dir, self.epoch + 1));
        }
        self.compact_poison = None;
        Ok(())
    }

    /// Marks every appended record as applied (call after a successful
    /// coalesced repair).
    pub fn commit(&mut self) {
        self.writer.commit();
    }

    /// Discards records appended since the last commit (call when the
    /// session rejected the batch — the repair is atomic, so the log must
    /// forget the batch too).
    pub fn rollback(&mut self) -> std::io::Result<()> {
        self.writer.rollback_to_committed()
    }

    /// Flush + fsync regardless of policy (clean shutdown).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.sync()
    }

    /// Records in the current-epoch log.
    pub fn wal_records(&self) -> u64 {
        self.writer.records()
    }

    /// Bytes in the current-epoch log (buffered included).
    pub fn wal_bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Compactions performed over this handle's lifetime (recovery resets
    /// the count — it is a process-level statistic).
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// When this handle last compacted, if ever.
    pub fn last_snapshot(&self) -> Option<Instant> {
        self.last_snapshot
    }

    /// The current WAL epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` once the current log has outgrown either configured
    /// threshold; the serve layer checks this after every committed flush.
    pub fn needs_compaction(&self) -> bool {
        self.writer.records() >= self.config.compact_records
            || self.writer.bytes() >= self.config.compact_bytes
    }

    /// Compacts: snapshots the live state (`k`/`phi` budget, ascending
    /// `(id, point)` live set, `next_id` horizon) at epoch `e+1`, starts the
    /// next log and deletes the superseded one **last**.  On any error the
    /// old (snapshot, log) pair is still intact and recovery-consistent.
    pub fn compact(
        &mut self,
        k: usize,
        phi: f64,
        next_id: usize,
        live: Vec<(usize, Point)>,
    ) -> std::io::Result<()> {
        self.check_compact_poison()?;
        // Barrier: if the snapshot write crashes midway, recovery falls
        // back to the current log — it must hold every committed record.
        // A failure here poisons the *writer*; any later failure poisons
        // the *compaction* (the disk may or may not have published the new
        // epoch — only try_recover's reconciliation can tell).
        self.writer.sync()?;
        let state = SnapshotState {
            epoch: self.epoch + 1,
            k,
            phi,
            next_id,
            live,
        };
        if let Err(e) = self.publish_compaction(&state) {
            self.compact_poison = Some(format!("compaction failed: {e}"));
            return Err(e);
        }
        Ok(())
    }

    /// The non-idempotent half of a compaction: publish the snapshot,
    /// switch to the next epoch's log, delete the superseded one last.
    fn publish_compaction(&mut self, state: &SnapshotState) -> std::io::Result<()> {
        state.write_atomic_with(&*self.vfs, &self.dir)?;
        let next_path = wal_path(&self.dir, self.epoch + 1);
        // A crashed previous compaction could have left an empty next-epoch
        // log that recovery did not sweep (it only sweeps what it can see);
        // the snapshot supersedes it either way.
        let _ = std::fs::remove_file(&next_path);
        let old_path = wal_path(&self.dir, self.epoch);
        self.writer = WalWriter::create_with(&*self.vfs, &next_path, self.config.sync)?;
        self.epoch += 1;
        self.snapshots += 1;
        self.last_snapshot = Some(Instant::now());
        let _ = std::fs::remove_file(old_path);
        Ok(())
    }
}

/// A tenant [`Store::recover`] rebuilt.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// The tenant's (directory) name.
    pub name: String,
    /// The fully rebuilt live session (budget available via
    /// [`DynamicSolverSession::budget`]).
    pub session: DynamicSolverSession,
    /// The reopened write handle, truncated to the salvaged prefix.
    pub wal: TenantWal,
    /// How the log's tail looked (anything but [`WalTail::Clean`] means a
    /// torn or corrupt tail was cut).
    pub wal_tail: WalTail,
    /// Bytes discarded past the salvaged prefix.
    pub lost_bytes: u64,
}

/// A tenant directory [`Store::recover`] could not rebuild (corrupt
/// snapshot, missing `CREATE`, inconsistent log).  The directory is left on
/// disk untouched for inspection.
#[derive(Debug, Clone)]
pub struct SkippedTenant {
    /// The tenant's (directory) name.
    pub name: String,
    /// Why recovery gave up on it.
    pub reason: String,
}

/// Everything [`Store::recover`] found, tenants sorted by name.
#[derive(Debug)]
pub struct Recovery {
    /// Successfully rebuilt tenants.
    pub tenants: Vec<RecoveredTenant>,
    /// Directories recovery refused to guess about.
    pub skipped: Vec<SkippedTenant>,
}

/// A durable data directory holding one subdirectory per tenant.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    config: StoreConfig,
    vfs: Arc<dyn Vfs>,
}

impl Store {
    /// Opens (creating if needed) a data directory on the real filesystem.
    pub fn open(root: impl Into<PathBuf>, config: StoreConfig) -> std::io::Result<Store> {
        Self::open_with_vfs(root, config, Arc::new(RealVfs))
    }

    /// Opens a data directory whose **write path** goes through `vfs` —
    /// the chaos suite's entry point (see [`crate::vfs::FaultVfs`]).
    /// Recovery-time reads stay on the real filesystem.
    pub fn open_with_vfs(
        root: impl Into<PathBuf>,
        config: StoreConfig,
        vfs: Arc<dyn Vfs>,
    ) -> std::io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Store { root, config, vfs })
    }

    /// The data directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    fn tenant_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Creates a tenant directory and its epoch-0 log, whose first record
    /// is the `CREATE` (budget + seed deployment), synced unconditionally.
    /// Fails with `AlreadyExists` when the directory is already present —
    /// a name collision with a live, dropped-but-undeletable, or
    /// recovery-skipped tenant is never silently merged.
    pub fn create_tenant(
        &self,
        name: &str,
        k: usize,
        phi: f64,
        points: &[Point],
    ) -> std::io::Result<TenantWal> {
        let dir = self.tenant_dir(name);
        std::fs::create_dir(&dir)?;
        let mut writer = WalWriter::create_with(&*self.vfs, &wal_path(&dir, 0), self.config.sync)?;
        writer.append(&WalRecord::Create {
            k,
            phi,
            points: points.to_vec(),
        })?;
        writer.sync()?;
        writer.commit();
        Ok(TenantWal {
            dir,
            epoch: 0,
            writer,
            config: self.config,
            vfs: Arc::clone(&self.vfs),
            snapshots: 0,
            last_snapshot: None,
            compact_poison: None,
        })
    }

    /// Removes a tenant directory (idempotent: a missing directory is ok).
    pub fn drop_tenant(&self, name: &str) -> std::io::Result<()> {
        match std::fs::remove_dir_all(self.tenant_dir(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Walks every tenant directory and rebuilds each into a live session:
    /// snapshot (if any) + salvaged current-epoch log tail, replayed
    /// through **one** coalesced repair
    /// ([`DynamicSolverSession::replay`]).  Torn/corrupt tails are
    /// truncated, stale-epoch logs and leftover `snapshot.tmp` files are
    /// swept, and unrecoverable tenants land in [`Recovery::skipped`]
    /// rather than failing the call.
    pub fn recover(&self) -> std::io::Result<Recovery> {
        let mut tenants = Vec::new();
        let mut skipped = Vec::new();
        let mut names: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue; // stray files in the root are not tenants
            }
            match entry.file_name().into_string() {
                Ok(name) => names.push((name, entry.path())),
                Err(raw) => skipped.push(SkippedTenant {
                    name: raw.to_string_lossy().into_owned(),
                    reason: "non-UTF-8 tenant directory name".to_string(),
                }),
            }
        }
        names.sort();
        for (name, dir) in names {
            match self.recover_tenant(&name, &dir) {
                Ok(Ok(tenant)) => tenants.push(tenant),
                Ok(Err(reason)) => skipped.push(SkippedTenant { name, reason }),
                Err(e) => skipped.push(SkippedTenant {
                    name,
                    reason: format!("i/o error: {e}"),
                }),
            }
        }
        Ok(Recovery { tenants, skipped })
    }

    /// One tenant's recovery.  `Ok(Err(reason))` = structurally
    /// unrecoverable (skip), `Err(_)` = environmental I/O failure.
    fn recover_tenant(
        &self,
        name: &str,
        dir: &Path,
    ) -> std::io::Result<Result<RecoveredTenant, String>> {
        // 1. Snapshot (or its absence) fixes the epoch and the base state.
        let snapshot = match read_snapshot(&dir.join("snapshot.bin"))? {
            SnapshotReadOutcome::Valid(state) => Some(state),
            SnapshotReadOutcome::Missing => None,
            SnapshotReadOutcome::Corrupt(why) => {
                return Ok(Err(format!("corrupt snapshot: {why}")))
            }
        };
        let epoch = snapshot.as_ref().map_or(0, |s| s.epoch);

        // 2. Salvage the current-epoch log.
        let log_path = wal_path(dir, epoch);
        let outcome = read_wal(&log_path)?;
        let mut records = outcome.records.into_iter();

        // 3. Base state: the snapshot, or the CREATE at the head of
        //    wal.0.log for a never-compacted tenant.
        let (budget, base, next_id): (AntennaBudget, Vec<(SensorId, Point)>, SensorId) =
            match &snapshot {
                Some(s) => (
                    AntennaBudget::new(s.k, s.phi),
                    s.live.clone(),
                    s.next_id,
                ),
                None => match records.next() {
                    Some(WalRecord::Create { k, phi, points }) => {
                        let n = points.len();
                        let base = points.into_iter().enumerate().collect();
                        (AntennaBudget::new(k, phi), base, n)
                    }
                    Some(_) => {
                        return Ok(Err(
                            "epoch-0 log does not start with a CREATE record".to_string()
                        ))
                    }
                    None => {
                        return Ok(Err(format!(
                            "no snapshot and no salvageable CREATE record ({:?} tail, {} of {} bytes salvaged)",
                            outcome.tail, outcome.salvaged_bytes, outcome.file_bytes
                        )))
                    }
                },
            };

        // 4. Tail edits: everything after the base.  A CREATE anywhere else
        //    is structurally impossible under our write path — refuse to
        //    guess.
        let mut tail: Vec<Edit> = Vec::new();
        for record in records {
            match record {
                WalRecord::Edit(edit) => tail.push(edit),
                WalRecord::Create { .. } => {
                    return Ok(Err("unexpected CREATE record mid-log".to_string()))
                }
            }
        }
        let salvaged_records = (tail.len() + usize::from(snapshot.is_none())) as u64;

        // 5. One coalesced replay.
        let session = match DynamicSolverSession::replay(budget, &base, next_id, &tail) {
            Ok(session) => session,
            Err(e) => return Ok(Err(format!("replay failed: {e}"))),
        };

        // 6. Sweep stale epochs (crashed compactions) and tmp snapshots.
        let _ = std::fs::remove_file(dir.join("snapshot.tmp"));
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(file_epoch) = entry.file_name().to_str().and_then(parse_wal_epoch) {
                if file_epoch != epoch {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        // 7. Reopen the log for appending, cutting any torn/corrupt tail.
        let writer = WalWriter::open_salvaged_with(
            &*self.vfs,
            &log_path,
            self.config.sync,
            outcome.salvaged_bytes,
            salvaged_records,
        )?;
        Ok(Ok(RecoveredTenant {
            name: name.to_string(),
            session,
            wal: TenantWal {
                dir: dir.to_path_buf(),
                epoch,
                writer,
                config: self.config,
                vfs: Arc::clone(&self.vfs),
                snapshots: 0,
                last_snapshot: None,
                compact_poison: None,
            },
            wal_tail: outcome.tail,
            lost_bytes: outcome.file_bytes - outcome.salvaged_bytes,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("antennae-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 4) as f64 * 3.0, (i / 4) as f64 * 2.0))
            .collect()
    }

    fn assert_sessions_bit_equal(a: &mut DynamicSolverSession, b: &mut DynamicSolverSession) {
        assert_eq!(a.instance().ids(), b.instance().ids());
        assert_eq!(a.instance().next_id(), b.instance().next_id());
        for id in a.instance().ids() {
            let pa = a.instance().point(id).unwrap();
            let pb = b.instance().point(id).unwrap();
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
        }
        assert_eq!(a.instance().lmax().to_bits(), b.instance().lmax().to_bits());
        assert_eq!(
            a.instance().mst_total_weight().to_bits(),
            b.instance().mst_total_weight().to_bits()
        );
        assert_eq!(a.algorithm(), b.algorithm());
        assert_eq!(a.scheme(), b.scheme());
        assert_eq!(a.digraph(), b.digraph());
        assert_eq!(
            a.report().is_strongly_connected,
            b.report().is_strongly_connected
        );
        assert_eq!(
            a.report().max_radius.to_bits(),
            b.report().max_radius.to_bits()
        );
    }

    #[test]
    fn create_append_recover_round_trip() {
        let root = tmp_root("round-trip");
        let store = Store::open(&root, StoreConfig::default()).unwrap();
        let seeds = grid(6);
        let budget = AntennaBudget::new(2, 5.0);

        let mut live =
            DynamicSolverSession::new(DynamicInstance::new(&seeds).unwrap(), budget).unwrap();
        let mut wal = store
            .create_tenant("alpha", budget.k, budget.phi, &seeds)
            .unwrap();
        let edits = vec![
            Edit::Insert(Point::new(10.0, 1.0)),
            Edit::Remove(2),
            Edit::Move(0, Point::new(-1.0, -1.0)),
        ];
        for e in &edits {
            wal.append_edit(e).unwrap();
        }
        live.apply_coalesced(&edits).unwrap();
        wal.commit();
        wal.sync().unwrap();
        drop(wal);

        let recovery = store.recover().unwrap();
        assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
        assert_eq!(recovery.tenants.len(), 1);
        let tenant = &recovery.tenants[0];
        assert_eq!(tenant.name, "alpha");
        assert_eq!(tenant.wal_tail, WalTail::Clean);
        assert_eq!(tenant.lost_bytes, 0);
        assert_eq!(tenant.wal.wal_records(), 4); // CREATE + 3 edits
        assert_sessions_bit_equal(&mut tenant.session.clone(), &mut live.clone());
    }

    #[test]
    fn compaction_supersedes_the_old_log_and_survives_recovery() {
        let root = tmp_root("compaction");
        let store = Store::open(
            &root,
            StoreConfig {
                sync: SyncPolicy::Never,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let seeds = grid(5);
        let budget = AntennaBudget::new(2, 5.0);
        let mut live =
            DynamicSolverSession::new(DynamicInstance::new(&seeds).unwrap(), budget).unwrap();
        let mut wal = store
            .create_tenant("beta", budget.k, budget.phi, &seeds)
            .unwrap();

        // Churn, compact, churn again.
        let first = vec![Edit::Insert(Point::new(9.0, 9.0)), Edit::Remove(1)];
        for e in &first {
            wal.append_edit(e).unwrap();
        }
        live.apply_coalesced(&first).unwrap();
        wal.commit();

        let live_set: Vec<(usize, Point)> = live
            .instance()
            .ids()
            .into_iter()
            .map(|id| (id, live.instance().point(id).unwrap()))
            .collect();
        wal.compact(budget.k, budget.phi, live.instance().next_id(), live_set)
            .unwrap();
        assert_eq!(wal.epoch(), 1);
        assert_eq!(wal.snapshots(), 1);
        assert_eq!(wal.wal_records(), 0);
        assert!(!wal_path(&root.join("beta"), 0).exists());
        assert!(root.join("beta/snapshot.bin").exists());

        let second = vec![Edit::Move(0, Point::new(0.5, 0.5))];
        for e in &second {
            wal.append_edit(e).unwrap();
        }
        live.apply_coalesced(&second).unwrap();
        wal.commit();
        wal.sync().unwrap();
        drop(wal);

        let recovery = store.recover().unwrap();
        assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
        let tenant = &recovery.tenants[0];
        assert_eq!(tenant.wal.epoch(), 1);
        assert_eq!(tenant.wal.wal_records(), 1);
        assert_sessions_bit_equal(&mut tenant.session.clone(), &mut live.clone());
    }

    #[test]
    fn stale_epoch_log_from_crashed_compaction_is_ignored_and_swept() {
        let root = tmp_root("stale-epoch");
        let store = Store::open(&root, StoreConfig::default()).unwrap();
        let seeds = grid(4);
        let budget = AntennaBudget::new(2, 5.0);
        let mut live =
            DynamicSolverSession::new(DynamicInstance::new(&seeds).unwrap(), budget).unwrap();
        let mut wal = store
            .create_tenant("gamma", budget.k, budget.phi, &seeds)
            .unwrap();
        let edits = vec![Edit::Insert(Point::new(7.0, 7.0))];
        for e in &edits {
            wal.append_edit(e).unwrap();
        }
        live.apply_coalesced(&edits).unwrap();
        wal.commit();

        // Simulate a compaction that crashed after the snapshot rename but
        // before deleting the old log: snapshot at epoch 1 exists, both
        // wal.0.log and wal.1.log exist, wal.0.log still holds records that
        // the snapshot already absorbed.
        let live_set: Vec<(usize, Point)> = live
            .instance()
            .ids()
            .into_iter()
            .map(|id| (id, live.instance().point(id).unwrap()))
            .collect();
        SnapshotState {
            epoch: 1,
            k: budget.k,
            phi: budget.phi,
            next_id: live.instance().next_id(),
            live: live_set,
        }
        .write_atomic(&root.join("gamma"))
        .unwrap();
        wal.sync().unwrap();
        drop(wal); // wal.0.log remains — the "crash" skipped the delete

        let recovery = store.recover().unwrap();
        assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
        let tenant = &recovery.tenants[0];
        assert_eq!(tenant.wal.epoch(), 1);
        assert_eq!(tenant.wal.wal_records(), 0, "stale records not re-applied");
        assert_sessions_bit_equal(&mut tenant.session.clone(), &mut live.clone());
        assert!(
            !wal_path(&root.join("gamma"), 0).exists(),
            "stale epoch swept"
        );
    }

    #[test]
    fn duplicate_tenant_dir_is_rejected_at_create() {
        let root = tmp_root("duplicate");
        let store = Store::open(&root, StoreConfig::default()).unwrap();
        store.create_tenant("delta", 2, 5.0, &grid(3)).unwrap();
        let err = store.create_tenant("delta", 2, 5.0, &grid(3)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn drop_tenant_removes_the_directory_and_is_idempotent() {
        let root = tmp_root("drop");
        let store = Store::open(&root, StoreConfig::default()).unwrap();
        store.create_tenant("eps", 2, 5.0, &grid(3)).unwrap();
        assert!(root.join("eps").exists());
        store.drop_tenant("eps").unwrap();
        assert!(!root.join("eps").exists());
        store.drop_tenant("eps").unwrap(); // second drop: no-op
        assert!(store.recover().unwrap().tenants.is_empty());
    }

    #[test]
    fn rollback_keeps_log_equal_to_applied_history() {
        let root = tmp_root("rollback");
        let store = Store::open(&root, StoreConfig::default()).unwrap();
        let seeds = grid(4);
        let budget = AntennaBudget::new(2, 5.0);
        let mut live =
            DynamicSolverSession::new(DynamicInstance::new(&seeds).unwrap(), budget).unwrap();
        let mut wal = store
            .create_tenant("zeta", budget.k, budget.phi, &seeds)
            .unwrap();

        // A batch the session rejects (dead id): log it, watch the repair
        // fail, roll the log back.
        let bad = vec![Edit::Insert(Point::new(1.0, 8.0)), Edit::Remove(99)];
        for e in &bad {
            wal.append_edit(e).unwrap();
        }
        assert!(live.apply_coalesced(&bad).is_err());
        wal.rollback().unwrap();

        let good = vec![Edit::Insert(Point::new(1.0, 8.0))];
        for e in &good {
            wal.append_edit(e).unwrap();
        }
        live.apply_coalesced(&good).unwrap();
        wal.commit();
        wal.sync().unwrap();
        drop(wal);

        let recovery = store.recover().unwrap();
        assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
        assert_sessions_bit_equal(&mut recovery.tenants[0].session.clone(), &mut live.clone());
    }

    use antennae_core::DynamicInstance;
}
