//! Checksummed tenant snapshots.
//!
//! A snapshot freezes everything recovery needs to rebuild a tenant without
//! the WAL records it supersedes: the antenna budget, the live sensor set
//! (with their **original ids** — ids are monotone and never reused, and the
//! replay-equivalence oracle demands the recovered session agree on them),
//! the id horizon `next_id`, and the WAL **epoch** the snapshot corresponds
//! to.
//!
//! ## File format
//!
//! ```text
//! snapshot.bin := "ASNP" ver:u32le len:u32le crc:u32le payload[len]
//! payload      := epoch:u64 k:u32 phi:f64bits next_id:u64
//!                 nlive:u32 (id:u64 x:f64bits y:f64bits)*nlive
//! ```
//!
//! ## Crash-safety
//!
//! [`SnapshotState::write_atomic`] writes `snapshot.tmp`, fsyncs it, renames
//! it over `snapshot.bin` and fsyncs the directory, so the tenant always has
//! either the old complete snapshot or the new complete snapshot — never a
//! torn one.  The epoch stitches the two files together: a snapshot at epoch
//! `e` pairs with `wal.<e>.log`, and any `wal.<e'>.log` with `e' < e` is a
//! leftover from a compaction that crashed after the rename — its records
//! are already baked into the snapshot and must be ignored.

use crate::crc::crc32;
use crate::vfs::{RealVfs, Vfs};
use antennae_geometry::Point;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ASNP";
const VERSION: u32 = 1;

/// Upper bound on a snapshot payload; anything larger than a few hundred
/// thousand sensors can only be a corrupt length prefix.
const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// The durable image of one tenant at a compaction point.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// WAL epoch this snapshot pairs with: replay starts from this state
    /// and applies `wal.<epoch>.log` only.
    pub epoch: u64,
    /// Antennae per sensor.
    pub k: usize,
    /// Angular spread budget, radians.
    pub phi: f64,
    /// The id horizon — the next id the session will assign.  Ids are
    /// monotone and never reused, so this cannot be derived from the live
    /// set once sensors have been removed.
    pub next_id: usize,
    /// Live sensors as `(id, position)`, ids strictly ascending.
    pub live: Vec<(usize, Point)>,
}

/// What [`read_snapshot`] found.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotReadOutcome {
    /// No `snapshot.bin` — the tenant has never compacted; recovery starts
    /// from the `CREATE` record at the head of `wal.0.log`.
    Missing,
    /// The file exists but is structurally invalid (bad magic/version, torn
    /// length, CRC mismatch, undecodable payload).  Recovery skips the
    /// tenant with this reason rather than guessing.
    Corrupt(String),
    /// A complete, checksum-verified snapshot.
    Valid(SnapshotState),
}

impl SnapshotState {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 4 + 8 + 8 + 4 + self.live.len() * 24);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.k as u32).to_le_bytes());
        out.extend_from_slice(&self.phi.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.next_id as u64).to_le_bytes());
        out.extend_from_slice(&(self.live.len() as u32).to_le_bytes());
        for (id, p) in &self.live {
            out.extend_from_slice(&(*id as u64).to_le_bytes());
            out.extend_from_slice(&p.x.to_bits().to_le_bytes());
            out.extend_from_slice(&p.y.to_bits().to_le_bytes());
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<SnapshotState, String> {
        let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
            let bytes = payload
                .get(*at..*at + n)
                .ok_or_else(|| "short payload".to_string())?;
            *at += n;
            Ok(bytes)
        };
        let mut at = 0usize;
        let u64le = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap());
        let u32le = |b: &[u8]| u32::from_le_bytes(b.try_into().unwrap());
        let epoch = u64le(take(&mut at, 8)?);
        let k = u32le(take(&mut at, 4)?) as usize;
        let phi = f64::from_bits(u64le(take(&mut at, 8)?));
        let next_id = u64le(take(&mut at, 8)?) as usize;
        let nlive = u32le(take(&mut at, 4)?) as usize;
        if payload.len() != at + nlive * 24 {
            return Err(format!(
                "live-count {nlive} disagrees with payload length {}",
                payload.len()
            ));
        }
        let mut live = Vec::with_capacity(nlive);
        let mut prev: Option<usize> = None;
        for _ in 0..nlive {
            let id = u64le(take(&mut at, 8)?) as usize;
            let x = f64::from_bits(u64le(take(&mut at, 8)?));
            let y = f64::from_bits(u64le(take(&mut at, 8)?));
            if id >= next_id || prev.is_some_and(|p| p >= id) {
                return Err(format!("live ids not ascending below next_id ({id})"));
            }
            prev = Some(id);
            live.push((id, Point::new(x, y)));
        }
        Ok(SnapshotState {
            epoch,
            k,
            phi,
            next_id,
            live,
        })
    }

    /// Atomically (tmp + fsync + rename + directory fsync) replaces
    /// `<dir>/snapshot.bin` with this state, on the real filesystem.
    pub fn write_atomic(&self, dir: &Path) -> std::io::Result<()> {
        self.write_atomic_with(&RealVfs, dir)
    }

    /// [`SnapshotState::write_atomic`] through a [`Vfs`].  A failure at any
    /// step leaves the previous `snapshot.bin` (if any) intact — the rename
    /// is the commit point — so an injected fault here can cost at most the
    /// compaction, never the tenant.
    pub fn write_atomic_with(&self, vfs: &dyn Vfs, dir: &Path) -> std::io::Result<()> {
        let payload = self.encode_payload();
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let tmp = dir.join("snapshot.tmp");
        let fin = dir.join("snapshot.bin");
        {
            let mut file = vfs.create_truncate(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        vfs.rename(&tmp, &fin)?;
        // Make the rename itself durable.
        vfs.sync_dir(dir)
    }
}

/// Reads `<path>` (normally `<tenant-dir>/snapshot.bin`).  Total: every
/// byte-level anomaly maps to [`SnapshotReadOutcome::Corrupt`], a missing
/// file to [`SnapshotReadOutcome::Missing`]; only environmental I/O errors
/// surface as `Err`.
pub fn read_snapshot(path: &Path) -> std::io::Result<SnapshotReadOutcome> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(SnapshotReadOutcome::Missing)
        }
        Err(e) => return Err(e),
    };
    let corrupt = |why: String| Ok(SnapshotReadOutcome::Corrupt(why));
    if data.len() < 16 {
        return corrupt(format!("file too short ({} bytes)", data.len()));
    }
    if &data[0..4] != MAGIC {
        return corrupt("bad magic".to_string());
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != VERSION {
        return corrupt(format!("unsupported version {version}"));
    }
    let len = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
    if len > MAX_PAYLOAD_BYTES {
        return corrupt(format!("implausible payload length {len}"));
    }
    let len = len as usize;
    if data.len() != 16 + len {
        return corrupt(format!(
            "payload length {len} disagrees with file size {}",
            data.len()
        ));
    }
    let payload = &data[16..];
    if crc32(payload) != crc {
        return corrupt("crc mismatch".to_string());
    }
    match SnapshotState::decode_payload(payload) {
        Ok(state) => Ok(SnapshotReadOutcome::Valid(state)),
        Err(why) => corrupt(why),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "antennae-snapshot-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotState {
        SnapshotState {
            epoch: 3,
            k: 2,
            phi: 2.094_395_102_393_195_5,
            next_id: 9,
            live: vec![
                (0, Point::new(0.0, -0.0)),
                (2, Point::new(1e-3, 250.5)),
                (7, Point::new(-17.25, 3.5)),
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let dir = tmp_dir("round-trip");
        sample().write_atomic(&dir).unwrap();
        match read_snapshot(&dir.join("snapshot.bin")).unwrap() {
            SnapshotReadOutcome::Valid(state) => {
                assert_eq!(state, sample());
                assert_eq!(state.phi.to_bits(), sample().phi.to_bits());
                for ((_, a), (_, b)) in state.live.iter().zip(&sample().live) {
                    assert_eq!(a.x.to_bits(), b.x.to_bits());
                    assert_eq!(a.y.to_bits(), b.y.to_bits());
                }
            }
            other => panic!("expected Valid, got {other:?}"),
        }
        // No tmp file left behind.
        assert!(!dir.join("snapshot.tmp").exists());
    }

    #[test]
    fn missing_file_reads_as_missing() {
        let dir = tmp_dir("missing");
        assert_eq!(
            read_snapshot(&dir.join("snapshot.bin")).unwrap(),
            SnapshotReadOutcome::Missing
        );
    }

    #[test]
    fn rewrite_replaces_previous_snapshot() {
        let dir = tmp_dir("rewrite");
        sample().write_atomic(&dir).unwrap();
        let mut next = sample();
        next.epoch = 4;
        next.live.retain(|(id, _)| *id != 2);
        next.write_atomic(&dir).unwrap();
        match read_snapshot(&dir.join("snapshot.bin")).unwrap() {
            SnapshotReadOutcome::Valid(state) => assert_eq!(state, next),
            other => panic!("expected Valid, got {other:?}"),
        }
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let dir = tmp_dir("flips");
        sample().write_atomic(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        let clean = std::fs::read(&path).unwrap();
        for at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            match read_snapshot(&path).unwrap() {
                SnapshotReadOutcome::Corrupt(_) => {}
                other => panic!("flip at byte {at} slipped through: {other:?}"),
            }
        }
        // Truncations too.
        for cut in [0, 1, 15, 16, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            match read_snapshot(&path).unwrap() {
                SnapshotReadOutcome::Corrupt(_) => {}
                other => panic!("truncation to {cut} slipped through: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_non_ascending_live_ids() {
        // Hand-build a payload with ids out of order; the CRC is valid, so
        // only the structural check can catch it.
        let mut state = sample();
        state.live.swap(0, 2);
        let dir = tmp_dir("bad-ids");
        state.write_atomic(&dir).unwrap();
        match read_snapshot(&dir.join("snapshot.bin")).unwrap() {
            SnapshotReadOutcome::Corrupt(why) => assert!(why.contains("ascending"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
