//! Hand-rolled CRC32 (the IEEE 802.3 polynomial, the same one `cksum`,
//! zlib and the `crc32fast` crate compute).  The container has no network
//! access, so the table is generated at compile time instead of pulling a
//! crate.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built in a `const` context so the whole
/// thing lives in `.rodata`.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`: init `0xFFFF_FFFF`, reflected, final XOR.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"orientd wal record payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
