//! The virtual filesystem seam: every byte the store writes goes through a
//! [`Vfs`], so tests can inject disk faults *deterministically* instead of
//! hoping a full disk shows up in CI.
//!
//! Two implementations ship:
//!
//! * [`RealVfs`] — a zero-state passthrough to `std::fs`.  The production
//!   path; the indirection costs one vtable dispatch per *I/O call* (not per
//!   record — the WAL's userspace buffer already amortizes appends), which
//!   the `store/wal_append` bench pins at noise level.
//! * [`FaultVfs`] — wraps the real filesystem but consults a [`FaultScript`]
//!   before every operation.  A script is a finite list of one-shot
//!   [`FaultSpec`]s addressed by *operation class and index* ("the 3rd
//!   write fails with disk-full", "the 1st fsync fails"), either written
//!   explicitly or generated from a seed.  Once the script is exhausted the
//!   filesystem behaves normally again — which is exactly the window the
//!   `RECOVER` verb needs to prove graceful degradation is reversible.
//!
//! Only the **write side** is virtualized (create/append/truncate/rename/
//! remove/dir-sync).  Recovery-time reads go straight through `std::fs`:
//! read-path corruption is the CRC framing's job and is already covered by
//! the salvaging reader's own tests.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A writable file handle dispensed by a [`Vfs`].  The subset of `File` the
/// store actually uses — keeping the trait this small is what makes the
/// fault matrix exhaustively testable.
pub trait VfsFile: Send + Debug {
    /// Writes the whole buffer (the `Write::write_all` contract).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`: flushes file *content* to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`: flushes content and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations behind the WAL and snapshot writers.
///
/// Contract: a path handed out by `create_append`/`open_append` stays valid
/// for the life of the handle; `rename` + `sync_dir` is the atomic-publish
/// idiom (write tmp, `sync_all`, rename over the target, sync the parent
/// directory so the rename itself is durable).
pub trait Vfs: Send + Sync + Debug {
    /// Opens a fresh append-only file, failing if it already exists.
    fn create_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens (creating when absent) an append-only file.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a write handle that truncates any existing content.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Syncs a directory so a preceding rename/create/remove is durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a stateless passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for RealVfs {
    fn create_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .append(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// Which operation stream a [`FaultSpec`] indexes into.  Writes and syncs
/// are counted separately so a script can say "the 2nd fsync" without
/// knowing how many buffered writes preceded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `write_all` calls.
    Write,
    /// `sync_data`/`sync_all` calls.
    Sync,
    /// Everything else: `set_len`, `rename`, `remove_file`, `sync_dir`,
    /// and file opens.
    Meta,
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an `ENOSPC`-flavoured error before touching
    /// the file: nothing is written.
    DiskFull,
    /// A write lands only a prefix (half, rounded down) before failing —
    /// the classic torn tail.  On non-write operations this behaves like
    /// [`FaultKind::DiskFull`].
    ShortWrite,
    /// The operation fails with an `EIO`-flavoured error.  On a sync this
    /// models the "fsync reported failure, page-cache state unknown" case
    /// the degraded state machine exists for.
    SyncFailure,
    /// The operation succeeds after sleeping this many milliseconds —
    /// latency injection, no data damage.
    SlowIo(u64),
}

/// One scheduled fault: fires exactly once, when the `class` counter
/// reaches `at` (0-based), then is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which operation stream to count.
    pub class: OpClass,
    /// 0-based index into that stream.
    pub at: u64,
    /// What to do when it fires.
    pub kind: FaultKind,
}

/// A finite, deterministic schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    specs: Vec<FaultSpec>,
}

impl FaultScript {
    /// A script from explicit specs.  Later specs at the same `(class, at)`
    /// address are ignored (first wins).
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultScript { specs }
    }

    /// Generates `events` faults pseudo-randomly over the first `horizon`
    /// operations of each class.  Same seed, same script — this is what the
    /// chaos oracle's pinned seed set indexes.
    pub fn seeded(seed: u64, events: usize, horizon: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64*: cheap, deterministic, good enough to scatter
            // faults; this is a schedule generator, not a statistics engine.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut specs = Vec::with_capacity(events);
        for _ in 0..events {
            let class = match next() % 3 {
                0 => OpClass::Write,
                1 => OpClass::Sync,
                _ => OpClass::Meta,
            };
            let at = next() % horizon.max(1);
            let kind = match next() % 4 {
                0 => FaultKind::DiskFull,
                1 => FaultKind::ShortWrite,
                2 => FaultKind::SyncFailure,
                _ => FaultKind::SlowIo(1 + next() % 3),
            };
            specs.push(FaultSpec { class, at, kind });
        }
        FaultScript { specs }
    }

    /// The scheduled specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// `(class, index)` → fault, consumed on fire.
    pending: Mutex<HashMap<(OpClass, u64), FaultKind>>,
    writes: AtomicU64,
    syncs: AtomicU64,
    metas: AtomicU64,
    fired: AtomicU64,
}

impl FaultState {
    /// Advances the `class` counter and returns the fault scheduled for
    /// this index, if any (consuming it).
    fn check(&self, class: OpClass) -> Option<FaultKind> {
        let counter = match class {
            OpClass::Write => &self.writes,
            OpClass::Sync => &self.syncs,
            OpClass::Meta => &self.metas,
        };
        let index = counter.fetch_add(1, Ordering::SeqCst);
        let fault = self.pending.lock().unwrap().remove(&(class, index));
        if fault.is_some() {
            self.fired.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }
}

fn injected(kind: &str) -> io::Error {
    // ErrorKind::Other keeps the injection portable; the message carries the
    // diagnosis and surfaces verbatim in the `degraded` error payload.
    io::Error::other(format!("injected fault: {kind}"))
}

/// A [`Vfs`] that performs real I/O but fires a [`FaultScript`] — the
/// chaos oracle's instrument.  Clones share the script and counters, so a
/// [`FaultVfs`] can be handed to a `Store` while the test keeps a handle
/// for assertions.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// A fault-injecting VFS primed with `script`.
    pub fn new(script: FaultScript) -> Self {
        let mut pending = HashMap::new();
        for spec in script.specs {
            pending.entry((spec.class, spec.at)).or_insert(spec.kind);
        }
        FaultVfs {
            state: Arc::new(FaultState {
                pending: Mutex::new(pending),
                ..FaultState::default()
            }),
        }
    }

    /// How many faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// How many scheduled faults have not fired yet.
    pub fn faults_pending(&self) -> usize {
        self.state.pending.lock().unwrap().len()
    }

    /// Operation counts seen so far, as `(writes, syncs, metas)`.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.state.writes.load(Ordering::SeqCst),
            self.state.syncs.load(Ordering::SeqCst),
            self.state.metas.load(Ordering::SeqCst),
        )
    }

    /// Runs `op` unless a fault is scheduled at the current `class` index.
    /// `SlowIo` sleeps and proceeds; everything else fails the operation.
    fn guard<T>(&self, class: OpClass, op: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        match self.state.check(class) {
            None => op(),
            Some(FaultKind::SlowIo(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                op()
            }
            Some(FaultKind::DiskFull) => Err(injected("disk-full (ENOSPC)")),
            Some(FaultKind::ShortWrite) => Err(injected("short write")),
            Some(FaultKind::SyncFailure) => Err(injected("fsync failure (EIO)")),
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: File,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.check(OpClass::Write) {
            None => self.inner.write_all(buf),
            Some(FaultKind::SlowIo(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write_all(buf)
            }
            Some(FaultKind::DiskFull) => Err(injected("disk-full (ENOSPC)")),
            Some(FaultKind::ShortWrite) => {
                // Land a prefix, then fail: the torn tail the salvaging
                // reader must cut on the next recovery.
                self.inner.write_all(&buf[..buf.len() / 2])?;
                Err(injected("short write"))
            }
            Some(FaultKind::SyncFailure) => Err(injected("fsync failure (EIO)")),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.state.check(OpClass::Sync) {
            None => self.inner.sync_data(),
            Some(FaultKind::SlowIo(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.sync_data()
            }
            Some(_) => Err(injected("fsync failure (EIO)")),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.state.check(OpClass::Sync) {
            None => self.inner.sync_all(),
            Some(FaultKind::SlowIo(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.sync_all()
            }
            Some(_) => Err(injected("fsync failure (EIO)")),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.state.check(OpClass::Meta) {
            None => self.inner.set_len(len),
            Some(FaultKind::SlowIo(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.set_len(len)
            }
            Some(_) => Err(injected("truncate failure (EIO)")),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.guard(OpClass::Meta, || {
            let file = OpenOptions::new()
                .append(true)
                .create_new(true)
                .open(path)?;
            Ok(Box::new(FaultFile {
                inner: file,
                state: Arc::clone(&self.state),
            }) as Box<dyn VfsFile>)
        })
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.guard(OpClass::Meta, || {
            let file = OpenOptions::new().append(true).create(true).open(path)?;
            Ok(Box::new(FaultFile {
                inner: file,
                state: Arc::clone(&self.state),
            }) as Box<dyn VfsFile>)
        })
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.guard(OpClass::Meta, || {
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            Ok(Box::new(FaultFile {
                inner: file,
                state: Arc::clone(&self.state),
            }) as Box<dyn VfsFile>)
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.guard(OpClass::Meta, || std::fs::rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.guard(OpClass::Meta, || std::fs::remove_file(path))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.guard(OpClass::Sync, || File::open(dir)?.sync_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("antennae-vfs-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = tmp("real");
        let path = dir.join("a.log");
        let vfs = RealVfs;
        let mut f = vfs.create_append(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        vfs.rename(&path, &dir.join("b.log")).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(std::fs::read(dir.join("b.log")).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_fires_once_at_its_index_then_clears() {
        let dir = tmp("once");
        let vfs = FaultVfs::new(FaultScript::new(vec![FaultSpec {
            class: OpClass::Write,
            at: 1,
            kind: FaultKind::DiskFull,
        }]));
        let mut f = vfs.create_append(&dir.join("a.log")).unwrap();
        f.write_all(b"one").unwrap(); // write #0: clean
        let err = f.write_all(b"two").unwrap_err(); // write #1: injected
        assert!(err.to_string().contains("disk-full"), "{err}");
        f.write_all(b"three").unwrap(); // write #2: script exhausted
        assert_eq!(vfs.faults_fired(), 1);
        assert_eq!(vfs.faults_pending(), 0);
        assert_eq!(std::fs::read(dir.join("a.log")).unwrap(), b"onethree");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_lands_half_the_buffer() {
        let dir = tmp("short");
        let vfs = FaultVfs::new(FaultScript::new(vec![FaultSpec {
            class: OpClass::Write,
            at: 0,
            kind: FaultKind::ShortWrite,
        }]));
        let mut f = vfs.create_append(&dir.join("a.log")).unwrap();
        let err = f.write_all(b"12345678").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(std::fs::read(dir.join("a.log")).unwrap(), b"1234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_faults_hit_the_sync_stream_not_writes() {
        let dir = tmp("sync-stream");
        let vfs = FaultVfs::new(FaultScript::new(vec![FaultSpec {
            class: OpClass::Sync,
            at: 0,
            kind: FaultKind::SyncFailure,
        }]));
        let mut f = vfs.create_append(&dir.join("a.log")).unwrap();
        f.write_all(b"data").unwrap(); // writes unaffected
        let err = f.sync_data().unwrap_err();
        assert!(err.to_string().contains("fsync failure"), "{err}");
        f.sync_data().unwrap(); // one-shot
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_scripts_are_deterministic() {
        let a = FaultScript::seeded(42, 8, 100);
        let b = FaultScript::seeded(42, 8, 100);
        assert_eq!(a.specs(), b.specs());
        assert_eq!(a.specs().len(), 8);
        let c = FaultScript::seeded(43, 8, 100);
        assert_ne!(a.specs(), c.specs(), "different seed, different script");
        for spec in a.specs() {
            assert!(spec.at < 100);
        }
    }

    #[test]
    fn slow_io_succeeds() {
        let dir = tmp("slow");
        let vfs = FaultVfs::new(FaultScript::new(vec![FaultSpec {
            class: OpClass::Write,
            at: 0,
            kind: FaultKind::SlowIo(1),
        }]));
        let mut f = vfs.create_append(&dir.join("a.log")).unwrap();
        f.write_all(b"slow but fine").unwrap();
        assert_eq!(vfs.faults_fired(), 1);
        assert_eq!(std::fs::read(dir.join("a.log")).unwrap(), b"slow but fine");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
