//! # antennae-store
//!
//! The durability layer under `orientd`: every tenant gets a directory with
//! a **write-ahead log** of its protocol-level mutations and a periodically
//! compacted **snapshot**, and the whole data directory can be **recovered**
//! into fully rebuilt [`DynamicSolverSession`](antennae_core::dynamic::DynamicSolverSession)s
//! after a clean shutdown or a `kill -9`.
//!
//! The crate is deliberately free of external dependencies (the container is
//! offline): the record checksum is a hand-rolled CRC32, the encoding is a
//! fixed little-endian binary layout, and all I/O is `std::fs`.
//!
//! Layout of a data directory:
//!
//! ```text
//! <data-dir>/
//!   <tenant-name>/
//!     snapshot.bin     # absent until the first compaction
//!     wal.<epoch>.log  # epoch 0 until the first compaction
//! ```
//!
//! - [`wal`] — the append-only record format (`[len][crc32][payload]`), the
//!   buffered [`WalWriter`] with its explicit
//!   [`SyncPolicy`], and the salvaging
//!   [`read_wal`] reader that stops cleanly at the first
//!   torn or corrupt record.
//! - [`snapshot`] — the checksummed tenant snapshot (budget + live sensors +
//!   id horizon), written atomically via `tmp` + `rename`, carrying the WAL
//!   **epoch** that makes compaction crash-safe: a snapshot at epoch `e`
//!   supersedes every record in `wal.<e-1>.log`, so a crash between the
//!   snapshot rename and the old log's deletion can never double-apply.
//! - [`store`] — the directory-level API: [`Store::open`](store::Store::open),
//!   per-tenant create/drop, and [`Store::recover`](store::Store::recover),
//!   which replays every tenant through **one** coalesced repair
//!   ([`DynamicSolverSession::replay`](antennae_core::dynamic::DynamicSolverSession::replay)).
//! - [`vfs`] — the filesystem seam every write goes through: [`RealVfs`]
//!   in production, [`FaultVfs`] for deterministic fault injection
//!   (disk-full, fsync failure, short writes, slow I/O) in the chaos
//!   suite.  An injected write/sync failure **poisons** the affected
//!   writer ([`WalWriter::poisoned`](wal::WalWriter::poisoned)) — the
//!   failing record is un-acknowledged and mutations fail fast until
//!   [`TenantWal::try_recover`](store::TenantWal::try_recover) clears the
//!   fault — which the serve layer surfaces as a degraded-read-only
//!   tenant.
//!
//! The correctness bar is the same bit-equality the serve crate's
//! concurrency oracle uses: a recovered tenant's `lmax`, MST weight, scheme,
//! digraph and verification report are compared with `f64::to_bits` /
//! structural equality against the live pre-crash session (root
//! `tests/durability_oracle.rs` and `tests/durable_recovery.rs`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod crc;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use crc::crc32;
pub use snapshot::SnapshotState;
pub use store::{RecoveredTenant, Recovery, SkippedTenant, Store, StoreConfig, TenantWal};
pub use vfs::{FaultKind, FaultScript, FaultSpec, FaultVfs, OpClass, RealVfs, Vfs, VfsFile};
pub use wal::{read_wal, SyncPolicy, WalReadOutcome, WalRecord, WalTail, WalWriter};
