//! The corruption table: every row damages a tenant's on-disk state in a
//! specific way, then asserts recovery (a) never panics, (b) salvages
//! exactly the longest valid record prefix, and (c) rebuilds a session
//! bit-equal to a live session that only ever saw the salvaged records.

use antennae_core::dynamic::{DynamicInstance, DynamicSolverSession, Edit};
use antennae_core::AntennaBudget;
use antennae_geometry::Point;
use antennae_store::wal::read_wal;
use antennae_store::{Store, StoreConfig, SyncPolicy, WalRecord, WalTail};
use std::path::{Path, PathBuf};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "antennae-corruption-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeds() -> Vec<Point> {
    (0..8)
        .map(|i| Point::new((i % 3) as f64 * 4.0, (i / 3) as f64 * 3.0 + (i % 2) as f64))
        .collect()
}

fn churn() -> Vec<Edit> {
    vec![
        Edit::Insert(Point::new(12.0, 1.0)),
        Edit::Remove(3),
        Edit::Move(1, Point::new(-2.0, 5.5)),
        Edit::Insert(Point::new(0.25, 9.75)),
        Edit::Remove(8),
        Edit::Move(0, Point::new(1.5, -1.5)),
    ]
}

/// Builds a durable tenant with a committed churn history, closes the log
/// cleanly, and returns the tenant's directory.
fn build_tenant(root: &Path, name: &str) -> PathBuf {
    let store = Store::open(
        root,
        StoreConfig {
            sync: SyncPolicy::Always,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let budget = AntennaBudget::new(2, 5.0);
    let mut wal = store
        .create_tenant(name, budget.k, budget.phi, &seeds())
        .unwrap();
    let mut live =
        DynamicSolverSession::new(DynamicInstance::new(&seeds()).unwrap(), budget).unwrap();
    for edit in churn() {
        wal.append_edit(&edit).unwrap();
        live.apply(edit).unwrap();
    }
    wal.commit();
    wal.sync().unwrap();
    root.join(name)
}

/// The oracle: a fresh session fed only the salvaged records, built without
/// any store involvement.
fn session_of_records(records: &[WalRecord]) -> DynamicSolverSession {
    let mut records = records.iter();
    let (budget, points) = match records.next() {
        Some(WalRecord::Create { k, phi, points }) => {
            (AntennaBudget::new(*k, *phi), points.clone())
        }
        other => panic!("log must start with CREATE, got {other:?}"),
    };
    let mut session =
        DynamicSolverSession::new(DynamicInstance::new(&points).unwrap(), budget).unwrap();
    for record in records {
        match record {
            WalRecord::Edit(edit) => {
                session.apply(*edit).unwrap();
            }
            WalRecord::Create { .. } => panic!("CREATE mid-log"),
        }
    }
    session
}

fn assert_sessions_bit_equal(a: &mut DynamicSolverSession, b: &mut DynamicSolverSession) {
    assert_eq!(a.instance().ids(), b.instance().ids());
    assert_eq!(a.instance().next_id(), b.instance().next_id());
    for id in a.instance().ids() {
        let pa = a.instance().point(id).unwrap();
        let pb = b.instance().point(id).unwrap();
        assert_eq!(pa.x.to_bits(), pb.x.to_bits());
        assert_eq!(pa.y.to_bits(), pb.y.to_bits());
    }
    assert_eq!(a.instance().lmax().to_bits(), b.instance().lmax().to_bits());
    assert_eq!(
        a.instance().mst_total_weight().to_bits(),
        b.instance().mst_total_weight().to_bits()
    );
    assert_eq!(a.algorithm(), b.algorithm());
    assert_eq!(a.scheme(), b.scheme());
    assert_eq!(a.digraph(), b.digraph());
    assert_eq!(
        a.report().max_radius.to_bits(),
        b.report().max_radius.to_bits()
    );
}

/// Returns the byte offsets at which each record of `wal_bytes` starts
/// (walking the framing, not the checksums — corruption tests need offsets
/// even for bytes they are about to damage).
fn record_offsets(wal_bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at + 8 <= wal_bytes.len() {
        offsets.push(at);
        let len = u32::from_le_bytes(wal_bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    offsets
}

/// One corruption-table row: damage the log with `damage`, recover, and
/// check the salvaged prefix is exactly `expect_records` records with the
/// expected tail kind — and that the recovered session matches the oracle
/// session built from those records alone.
fn run_row(
    name: &str,
    damage: impl FnOnce(&mut Vec<u8>, &[usize]),
    expect_records: usize,
    expect_tail: WalTail,
) {
    let root = tmp_root(name);
    let dir = build_tenant(&root, name);
    let wal_file = dir.join("wal.0.log");
    let mut bytes = std::fs::read(&wal_file).unwrap();
    let offsets = record_offsets(&bytes);
    assert_eq!(offsets.len(), 7, "CREATE + 6 edits");
    damage(&mut bytes, &offsets);
    std::fs::write(&wal_file, &bytes).unwrap();

    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let recovery = store.recover().unwrap();
    assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
    assert_eq!(recovery.tenants.len(), 1);
    let tenant = &recovery.tenants[0];
    assert_eq!(tenant.wal_tail, expect_tail, "tail kind");
    assert_eq!(tenant.wal.wal_records(), expect_records as u64);
    assert!(tenant.lost_bytes > 0, "a corruption row must lose bytes");

    // The truncated file now reads clean and holds exactly the prefix.
    let salvaged = read_wal(&wal_file).unwrap();
    assert_eq!(salvaged.tail, WalTail::Clean, "tail was cut on reopen");
    assert_eq!(salvaged.records.len(), expect_records);

    let mut oracle = session_of_records(&salvaged.records);
    assert_sessions_bit_equal(&mut tenant.session.clone(), &mut oracle);
}

#[test]
fn truncated_tail_salvages_the_prefix() {
    // Cut the file mid-way through the last record's body.
    run_row(
        "truncated-tail",
        |bytes, offsets| bytes.truncate(offsets[6] + 10),
        6,
        WalTail::TornBody,
    );
}

#[test]
fn torn_header_salvages_the_prefix() {
    // Leave only 3 bytes of the last record's header.
    run_row(
        "torn-header",
        |bytes, offsets| bytes.truncate(offsets[6] + 3),
        6,
        WalTail::TornHeader,
    );
}

#[test]
fn flipped_body_byte_stops_at_the_crc_mismatch() {
    // Flip one payload byte of the 5th record (index 4): records 0..=3
    // survive, everything from the flip on is dropped.
    run_row(
        "flipped-body",
        |bytes, offsets| bytes[offsets[4] + 8 + 2] ^= 0x10,
        4,
        WalTail::Corrupt,
    );
}

#[test]
fn flipped_length_prefix_stops_cleanly() {
    // Make the 3rd record's length prefix enormous: the reader must treat
    // it as corrupt (not attempt a giant allocation or read past the end).
    run_row(
        "flipped-length",
        |bytes, offsets| {
            let at = offsets[2];
            bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        },
        2,
        WalTail::Corrupt,
    );
}

#[test]
fn plausible_flipped_length_still_fails_the_crc() {
    // A small length flip stays under MAX_PAYLOAD_BYTES, so the reader
    // frames a wrong-sized payload — the CRC catches it instead.
    run_row(
        "flipped-length-small",
        |bytes, offsets| bytes[offsets[2]] ^= 0x01,
        2,
        WalTail::Corrupt,
    );
}

#[test]
fn zero_length_file_skips_the_tenant_without_panicking() {
    let root = tmp_root("zero-length");
    let dir = build_tenant(&root, "zero-length");
    std::fs::write(dir.join("wal.0.log"), b"").unwrap();
    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let recovery = store.recover().unwrap();
    // No snapshot and no CREATE record: nothing to rebuild from.
    assert!(recovery.tenants.is_empty());
    assert_eq!(recovery.skipped.len(), 1);
    assert!(
        recovery.skipped[0].reason.contains("CREATE"),
        "{}",
        recovery.skipped[0].reason
    );
    // The directory is left in place for inspection.
    assert!(dir.exists());
}

#[test]
fn zero_length_log_with_snapshot_recovers_from_the_snapshot() {
    // After a compaction the log alone may legitimately be empty.
    let root = tmp_root("zero-log-snapshot");
    let store = Store::open(
        &root,
        StoreConfig {
            sync: SyncPolicy::Always,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let budget = AntennaBudget::new(2, 5.0);
    let mut wal = store
        .create_tenant("snappy", budget.k, budget.phi, &seeds())
        .unwrap();
    let mut live =
        DynamicSolverSession::new(DynamicInstance::new(&seeds()).unwrap(), budget).unwrap();
    for edit in churn() {
        wal.append_edit(&edit).unwrap();
        live.apply(edit).unwrap();
    }
    wal.commit();
    let live_set: Vec<(usize, Point)> = live
        .instance()
        .ids()
        .into_iter()
        .map(|id| (id, live.instance().point(id).unwrap()))
        .collect();
    wal.compact(budget.k, budget.phi, live.instance().next_id(), live_set)
        .unwrap();
    drop(wal);

    // Truncate the (already empty) epoch-1 log to zero explicitly.
    std::fs::write(root.join("snappy/wal.1.log"), b"").unwrap();
    let recovery = store.recover().unwrap();
    assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
    assert_sessions_bit_equal(&mut recovery.tenants[0].session.clone(), &mut live.clone());
}

#[test]
fn corrupt_snapshot_skips_the_tenant_with_a_reason() {
    let root = tmp_root("corrupt-snapshot");
    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let budget = AntennaBudget::new(2, 5.0);
    let mut wal = store
        .create_tenant("badsnap", budget.k, budget.phi, &seeds())
        .unwrap();
    let mut live =
        DynamicSolverSession::new(DynamicInstance::new(&seeds()).unwrap(), budget).unwrap();
    for edit in churn() {
        wal.append_edit(&edit).unwrap();
        live.apply(edit).unwrap();
    }
    wal.commit();
    let live_set: Vec<(usize, Point)> = live
        .instance()
        .ids()
        .into_iter()
        .map(|id| (id, live.instance().point(id).unwrap()))
        .collect();
    wal.compact(budget.k, budget.phi, live.instance().next_id(), live_set)
        .unwrap();
    drop(wal);

    let snap = root.join("badsnap/snapshot.bin");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x80;
    std::fs::write(&snap, &bytes).unwrap();

    let recovery = store.recover().unwrap();
    assert!(recovery.tenants.is_empty());
    assert_eq!(recovery.skipped.len(), 1);
    assert!(
        recovery.skipped[0].reason.contains("corrupt snapshot"),
        "{}",
        recovery.skipped[0].reason
    );
}

#[test]
fn recovery_appends_after_a_cut_tail() {
    // After salvage-and-truncate, the reopened handle must append records
    // that a second recovery then reads cleanly.
    let root = tmp_root("append-after-cut");
    let dir = build_tenant(&root, "append-after-cut");
    let wal_file = dir.join("wal.0.log");
    let mut bytes = std::fs::read(&wal_file).unwrap();
    let offsets = record_offsets(&bytes);
    bytes.truncate(offsets[5] + 4);
    std::fs::write(&wal_file, &bytes).unwrap();

    let store = Store::open(&root, StoreConfig::default()).unwrap();
    let mut recovery = store.recover().unwrap();
    let mut tenant = recovery.tenants.remove(0);
    let extra = Edit::Insert(Point::new(42.0, -42.0));
    tenant.wal.append_edit(&extra).unwrap();
    tenant.session.apply(extra).unwrap();
    tenant.wal.commit();
    tenant.wal.sync().unwrap();
    let live = tenant.session;
    drop(tenant.wal);

    let recovery = store.recover().unwrap();
    assert!(recovery.skipped.is_empty(), "{:?}", recovery.skipped);
    assert_eq!(recovery.tenants[0].wal_tail, WalTail::Clean);
    assert_sessions_bit_equal(&mut recovery.tenants[0].session.clone(), &mut live.clone());
}
