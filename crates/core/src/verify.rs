//! Independent verification of orientation schemes.
//!
//! The algorithms in [`crate::algorithms`] are constructive and come with
//! proofs, but every experiment in the harness *also* verifies its output
//! through this module: the induced digraph is rebuilt from the sector
//! coverage model and checked for strong connectivity, and the per-sensor
//! budgets (antenna count, spread sum) and the radius are measured
//! explicitly.  This is the safety net that catches implementation bugs and
//! the tool used by the failure-injection tests.

use crate::antenna::AntennaBudget;
use crate::bounds::SPREAD_EPS;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use antennae_graph::scc::{largest_scc_size, scc_count};
use serde::{Deserialize, Serialize};

/// A violation detected while verifying a scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The scheme does not assign antennae to every sensor.
    MissingAssignments {
        /// Number of sensors in the instance.
        expected: usize,
        /// Number of assignments in the scheme.
        actual: usize,
    },
    /// A sensor uses more antennae than the budget allows.
    TooManyAntennas {
        /// Sensor index.
        sensor: usize,
        /// Number of antennae used.
        used: usize,
        /// Budgeted number.
        allowed: usize,
    },
    /// A sensor's spread sum exceeds the budget.
    SpreadExceeded {
        /// Sensor index.
        sensor: usize,
        /// Spread sum used (radians).
        used: f64,
        /// Budgeted spread (radians).
        allowed: f64,
    },
    /// The induced digraph is not strongly connected.
    NotStronglyConnected {
        /// Number of strongly connected components found.
        components: usize,
        /// Size of the largest component.
        largest_component: usize,
    },
}

/// The result of verifying a scheme against an instance (and optionally a
/// budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Whether the induced digraph is strongly connected.
    pub is_strongly_connected: bool,
    /// Number of strongly connected components of the induced digraph.
    pub scc_count: usize,
    /// Number of directed edges induced by the scheme.
    pub edge_count: usize,
    /// Largest antenna radius used in the scheme (absolute units).
    pub max_radius: f64,
    /// Largest antenna radius divided by `lmax` (the paper's normalization);
    /// `f64::INFINITY` when `lmax` is zero and a positive radius is used.
    pub max_radius_over_lmax: f64,
    /// Largest per-sensor spread sum (radians).
    pub max_spread_sum: f64,
    /// Largest per-sensor antenna count.
    pub max_antenna_count: usize,
    /// All violations found (empty when the scheme is valid).
    pub violations: Vec<Violation>,
}

impl VerificationReport {
    /// Returns `true` when no violations were found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies `scheme` against `instance` without any budget constraints
/// (connectivity and measurements only).
pub fn verify(instance: &Instance, scheme: &OrientationScheme) -> VerificationReport {
    verify_with_budget(instance, scheme, None)
}

/// Verifies `scheme` against `instance`, additionally checking the given
/// per-sensor budget when `budget` is `Some`.
pub fn verify_with_budget(
    instance: &Instance,
    scheme: &OrientationScheme,
    budget: Option<AntennaBudget>,
) -> VerificationReport {
    let mut violations = Vec::new();
    if scheme.len() != instance.len() {
        violations.push(Violation::MissingAssignments {
            expected: instance.len(),
            actual: scheme.len(),
        });
    }
    if let Some(budget) = budget {
        for (i, assignment) in scheme.assignments.iter().enumerate() {
            if assignment.antenna_count() > budget.k {
                violations.push(Violation::TooManyAntennas {
                    sensor: i,
                    used: assignment.antenna_count(),
                    allowed: budget.k,
                });
            }
            if assignment.total_spread() > budget.phi + SPREAD_EPS {
                violations.push(Violation::SpreadExceeded {
                    sensor: i,
                    used: assignment.total_spread(),
                    allowed: budget.phi,
                });
            }
        }
    }

    let digraph = scheme.induced_digraph(instance.points());
    let components = scc_count(&digraph);
    let largest = largest_scc_size(&digraph);
    let strongly_connected = instance.len() <= 1 || components == 1;
    if !strongly_connected {
        violations.push(Violation::NotStronglyConnected {
            components,
            largest_component: largest,
        });
    }

    let max_radius = scheme.max_radius();
    let lmax = instance.lmax();
    let max_radius_over_lmax = if lmax > 0.0 {
        max_radius / lmax
    } else if max_radius > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };

    VerificationReport {
        is_strongly_connected: strongly_connected,
        scc_count: components,
        edge_count: digraph.edge_count(),
        max_radius,
        max_radius_over_lmax,
        max_spread_sum: scheme.max_spread_sum(),
        max_antenna_count: scheme.max_antenna_count(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::{Antenna, SensorAssignment};
    use antennae_geometry::Point;

    fn line_instance() -> Instance {
        Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap()
    }

    fn valid_cycle_scheme(instance: &Instance) -> OrientationScheme {
        let pts = instance.points();
        let n = pts.len();
        let assignments = (0..n)
            .map(|i| {
                let next = (i + 1) % n;
                SensorAssignment::new(vec![Antenna::beam(
                    &pts[i],
                    &pts[next],
                    pts[i].distance(&pts[next]),
                )])
            })
            .collect();
        OrientationScheme::new(assignments)
    }

    #[test]
    fn valid_scheme_passes_verification() {
        let instance = line_instance();
        let scheme = valid_cycle_scheme(&instance);
        let report = verify(&instance, &scheme);
        assert!(report.is_valid());
        assert!(report.is_strongly_connected);
        assert_eq!(report.scc_count, 1);
        assert!((report.max_radius - 2.0).abs() < 1e-12);
        assert!((report.max_radius_over_lmax - 2.0).abs() < 1e-12);
        assert_eq!(report.max_antenna_count, 1);
    }

    #[test]
    fn broken_scheme_is_rejected() {
        // Failure injection: an empty scheme cannot be strongly connected.
        let instance = line_instance();
        let scheme = OrientationScheme::empty(instance.len());
        let report = verify(&instance, &scheme);
        assert!(!report.is_valid());
        assert!(!report.is_strongly_connected);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));
    }

    #[test]
    fn one_way_scheme_is_rejected() {
        // Failure injection: every sensor beams only to the right; the last
        // sensor cannot reach back.
        let instance = line_instance();
        let pts = instance.points();
        let assignments = (0..pts.len())
            .map(|i| {
                if i + 1 < pts.len() {
                    SensorAssignment::new(vec![Antenna::beam(&pts[i], &pts[i + 1], 1.0)])
                } else {
                    SensorAssignment::empty()
                }
            })
            .collect();
        let scheme = OrientationScheme::new(assignments);
        let report = verify(&instance, &scheme);
        assert!(!report.is_strongly_connected);
        assert!(report.scc_count > 1);
    }

    #[test]
    fn budget_violations_are_reported() {
        let instance = line_instance();
        let scheme = valid_cycle_scheme(&instance);
        // The cycle scheme uses 1 antenna of spread 0 per sensor; a budget of
        // zero antennae must flag every sensor.
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(0, 0.0)));
        let count = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::TooManyAntennas { .. }))
            .count();
        assert_eq!(count, 3);

        // A generous budget produces no budget violations.
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(1, 0.0)));
        assert!(report.is_valid());
    }

    #[test]
    fn spread_violations_are_reported() {
        let instance = line_instance();
        let pts = instance.points();
        let wide = SensorAssignment::new(vec![Antenna::new(
            antennae_geometry::Angle::ZERO,
            antennae_geometry::PI,
            5.0,
        )]);
        let assignments = vec![wide.clone(), wide.clone(), wide];
        let scheme = OrientationScheme::new(assignments);
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(1, 1.0)));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpreadExceeded { .. })));
        // The wide antennas do connect everything though.
        assert!(report.is_strongly_connected);
        let _ = pts;
    }

    #[test]
    fn missing_assignments_are_reported() {
        let instance = line_instance();
        let scheme = OrientationScheme::empty(1);
        let report = verify(&instance, &scheme);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingAssignments { expected: 3, actual: 1 })));
    }

    #[test]
    fn single_sensor_is_trivially_connected() {
        let instance = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let scheme = OrientationScheme::empty(1);
        let report = verify(&instance, &scheme);
        assert!(report.is_strongly_connected);
        assert!(report.is_valid());
        assert_eq!(report.max_radius_over_lmax, 0.0);
    }
}
