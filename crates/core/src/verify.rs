//! Independent verification of orientation schemes.
//!
//! The algorithms in [`crate::algorithms`] are constructive and come with
//! proofs, but every experiment in the harness *also* verifies its output
//! through this module: the induced digraph is rebuilt from the sector
//! coverage model and checked for strong connectivity, and the per-sensor
//! budgets (antenna count, spread sum) and the radius are measured
//! explicitly.  This is the safety net that catches implementation bugs and
//! the tool used by the failure-injection tests.
//!
//! # The verification engine
//!
//! Rebuilding the induced digraph is the hot step.  The reference
//! construction ([`OrientationScheme::induced_digraph`]) tests every ordered
//! sensor pair — Θ(n²·k) sector checks — which dominated whole experiment
//! runs once the MST side went sub-quadratic.  [`VerificationEngine`] offers
//! a second, output-identical path: a kd-tree over the sensor locations
//! answers one bounded range query per sensor (*which points lie within my
//! longest antenna's range?*), and only those candidates are tested against
//! the actual sectors — O(n log n + Σ candidates) instead of Θ(n²).
//!
//! The two paths are bit-identical by construction (the range query is a
//! superset filter under the same [`EPS`] tolerance the sector test uses,
//! and candidates come back in the same ascending order the dense loop
//! visits), and the oracle property suite in `tests/verification_oracle.rs`
//! pins that equivalence across stochastic, extremal and degenerate point
//! sets.  [`DigraphStrategy::Auto`] picks the dense path below
//! [`KDTREE_VERIFY_CROSSOVER`] sensors, mirroring the MST engine's
//! crossover design.
//!
//! For many verifications of the *same* instance (the Portfolio policy, a
//! batch budget grid), [`VerificationEngine::session`] builds the kd-tree
//! once and reuses it; [`VerificationEngine::verify_batch`] and
//! [`VerificationSession::verify_schemes`] fan independent verifications out
//! over [`crate::parallel::parallel_map`].

use crate::antenna::AntennaBudget;
use crate::bounds::{radius_over_lmax, SPREAD_EPS};
use crate::instance::Instance;
use crate::parallel::{chunk_ranges, default_threads, parallel_map};
use crate::scheme::OrientationScheme;
use antennae_geometry::{KdTree, Point, EPS};
use antennae_graph::scc::scc_summary;
use antennae_graph::DiGraph;
use serde::{Deserialize, Serialize};

/// A violation detected while verifying a scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The scheme does not assign antennae to every sensor.
    MissingAssignments {
        /// Number of sensors in the instance.
        expected: usize,
        /// Number of assignments in the scheme.
        actual: usize,
    },
    /// A sensor uses more antennae than the budget allows.
    TooManyAntennas {
        /// Sensor index.
        sensor: usize,
        /// Number of antennae used.
        used: usize,
        /// Budgeted number.
        allowed: usize,
    },
    /// A sensor's spread sum exceeds the budget.
    SpreadExceeded {
        /// Sensor index.
        sensor: usize,
        /// Spread sum used (radians).
        used: f64,
        /// Budgeted spread (radians).
        allowed: f64,
    },
    /// The induced digraph is not strongly connected.
    NotStronglyConnected {
        /// Number of strongly connected components found.
        components: usize,
        /// Size of the largest component.
        largest_component: usize,
    },
}

/// The result of verifying a scheme against an instance (and optionally a
/// budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Whether the induced digraph is strongly connected.
    pub is_strongly_connected: bool,
    /// Number of strongly connected components of the induced digraph.
    pub scc_count: usize,
    /// Number of directed edges induced by the scheme.
    pub edge_count: usize,
    /// Largest antenna radius used in the scheme (absolute units).
    pub max_radius: f64,
    /// Largest antenna radius divided by `lmax` (the paper's normalization);
    /// `f64::INFINITY` when `lmax` is zero and a positive radius is used —
    /// see [`crate::bounds::radius_over_lmax`] for the exact degenerate-case
    /// contract shared with the solver.
    pub max_radius_over_lmax: f64,
    /// Largest per-sensor spread sum (radians).
    pub max_spread_sum: f64,
    /// Largest per-sensor antenna count.
    pub max_antenna_count: usize,
    /// All violations found (empty when the scheme is valid).
    pub violations: Vec<Violation>,
}

impl VerificationReport {
    /// Returns `true` when no violations were found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// How the verification engine rebuilds the induced digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DigraphStrategy {
    /// The Θ(n²·k) pairwise reference construction
    /// ([`OrientationScheme::induced_digraph`]) — fastest for small
    /// instances and the oracle the fast path is property-tested against.
    Dense,
    /// Per-sensor kd-tree range queries filtered by exact sector membership
    /// — O(n log n + m)-class, output-identical to [`DigraphStrategy::Dense`].
    KdTree,
    /// [`DigraphStrategy::Dense`] below [`KDTREE_VERIFY_CROSSOVER`] sensors,
    /// [`DigraphStrategy::KdTree`] at or above it.
    #[default]
    Auto,
}

/// Instance size at which [`DigraphStrategy::Auto`] switches from the dense
/// pairwise construction to kd-tree range queries.
///
/// The `verification` bench measures the kd path already ahead at n = 16
/// (6.7 µs vs 11.3 µs on container hardware) and 7×/114× ahead at
/// n = 100/4000 for solver-produced schemes, whose sector radii are Θ(lmax)
/// and keep candidate lists short.  The dense path is kept below this
/// threshold anyway: on instances this small both paths cost single-digit
/// microseconds, the dense oracle allocates nothing, and pathological
/// all-covering schemes (every sector spanning the whole deployment) make
/// the range queries pure overhead.
pub const KDTREE_VERIFY_CROSSOVER: usize = 24;

/// Minimum sensor count before a single digraph rebuild fans its per-sensor
/// range queries out over worker threads (below this, thread-scope setup
/// costs more than the queries).
const PARALLEL_VERIFY_MIN: usize = 1024;

/// Sub-quadratic verification engine: rebuilds induced digraphs through
/// kd-tree range queries (with a dense fallback for small instances) and
/// fans batches of independent verifications out over worker threads.
///
/// The engine is cheap to construct (two words of configuration); the
/// expensive state — the kd-tree over one instance's sensors — lives in the
/// [`VerificationSession`] returned by [`VerificationEngine::session`], so
/// callers verifying many schemes against one instance build it exactly
/// once.
///
/// # Examples
///
/// ```
/// use antennae_core::instance::Instance;
/// use antennae_core::solver::{SelectionPolicy, Solver};
/// use antennae_core::verify::VerificationEngine;
/// use antennae_geometry::Point;
///
/// let instance = Instance::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.2),
///     Point::new(0.4, 0.9),
///     Point::new(1.3, 1.1),
/// ])?;
/// let outcome = Solver::on(&instance)
///     .budget(2, std::f64::consts::PI)
///     .policy(SelectionPolicy::Portfolio)
///     .run()?;
///
/// // One session: the spatial index is built once, then every candidate
/// // scheme of the portfolio is verified against it.
/// let session = VerificationEngine::new().session(&instance);
/// for candidate in &outcome.candidates {
///     let scheme = candidate.scheme.as_ref().expect("portfolio keeps schemes");
///     assert!(session.verify(scheme).is_strongly_connected);
/// }
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VerificationEngine {
    strategy: DigraphStrategy,
    threads: usize,
}

impl Default for VerificationEngine {
    fn default() -> Self {
        VerificationEngine::new()
    }
}

impl VerificationEngine {
    /// An engine with [`DigraphStrategy::Auto`] and the default thread
    /// count.
    pub fn new() -> Self {
        VerificationEngine {
            strategy: DigraphStrategy::Auto,
            threads: default_threads(),
        }
    }

    /// Pins the digraph construction strategy (the oracle tests pin
    /// [`DigraphStrategy::Dense`] and [`DigraphStrategy::KdTree`] to compare
    /// them).
    pub fn with_strategy(mut self, strategy: DigraphStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread count used by the batch entry points and by
    /// large single rebuilds (`1` forces fully sequential verification).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DigraphStrategy {
        self.strategy
    }

    /// Returns `true` when the engine takes the kd-tree path for an
    /// `n`-sensor rebuild under its configured strategy.
    pub fn uses_kdtree(&self, n: usize) -> bool {
        match self.strategy {
            DigraphStrategy::Dense => false,
            DigraphStrategy::KdTree => true,
            DigraphStrategy::Auto => n >= KDTREE_VERIFY_CROSSOVER,
        }
    }

    /// Builds the digraph induced by `scheme` over `points` under the
    /// engine's strategy.
    ///
    /// Output-identical to [`OrientationScheme::induced_digraph`] (same
    /// edges, same adjacency order) regardless of strategy.
    pub fn induced_digraph(&self, points: &[Point], scheme: &OrientationScheme) -> DiGraph {
        if self.uses_kdtree(points.len()) {
            self.kd_induced_digraph(points, scheme, &KdTree::build(points))
        } else {
            scheme.induced_digraph(points)
        }
    }

    /// Verifies `scheme` against `instance` (connectivity and measurements
    /// only).
    pub fn verify(&self, instance: &Instance, scheme: &OrientationScheme) -> VerificationReport {
        self.verify_with_budget(instance, scheme, None)
    }

    /// Verifies `scheme` against `instance`, additionally checking `budget`
    /// when `Some`.
    pub fn verify_with_budget(
        &self,
        instance: &Instance,
        scheme: &OrientationScheme,
        budget: Option<AntennaBudget>,
    ) -> VerificationReport {
        let digraph = self.induced_digraph(instance.points(), scheme);
        report_from_digraph(instance, scheme, budget, &digraph)
    }

    /// Starts an incremental session over `instance`: the kd-tree is built
    /// at most once (and not at all when the strategy resolves to the dense
    /// path) and shared by every verification issued through the session.
    ///
    /// This is the Portfolio / budget-grid case: all candidate schemes of
    /// one instance share the same point set, so the spatial index is
    /// instance state, not scheme state.
    pub fn session<'a>(&self, instance: &'a Instance) -> VerificationSession<'a> {
        let tree = self
            .uses_kdtree(instance.len())
            .then(|| KdTree::build(instance.points()));
        VerificationSession {
            instance,
            tree,
            engine: *self,
        }
    }

    /// Verifies many independent `(instance, scheme)` pairs concurrently
    /// over [`crate::parallel::parallel_map`], preserving input order.
    ///
    /// Each pair is verified under `budget` (when `Some`).  Pairs are
    /// independent, so the per-pair digraph rebuild runs sequentially inside
    /// its worker — the fan-out happens across pairs.
    pub fn verify_batch(
        &self,
        pairs: &[(&Instance, &OrientationScheme)],
        budget: Option<AntennaBudget>,
    ) -> Vec<VerificationReport> {
        let sequential = self.with_threads(1);
        parallel_map(pairs, self.threads, |(instance, scheme)| {
            sequential.verify_with_budget(instance, scheme, budget)
        })
    }

    /// The kd-tree induced-digraph construction: one bounded range query per
    /// sensor (radius = that sensor's longest antenna range, widened by the
    /// sector test's own [`EPS`] tolerance so the candidate set is a
    /// superset), then the exact per-antenna sector test the dense path
    /// applies.  Candidates arrive sorted ascending, so the assembled
    /// adjacency lists match the dense construction's visit order exactly.
    ///
    /// Both paths write the CSR arrays directly — per-sensor candidate lists
    /// become rows of one flat target vector, handed to
    /// [`DiGraph::from_csr`] without any intermediate nested adjacency.  The
    /// parallel path chunks the sensor range over
    /// [`crate::parallel::chunk_ranges`], each chunk emitting a local
    /// `(row sizes, targets)` pair with one reused candidate buffer, and the
    /// chunks are spliced in order; each row's contents are computed by the
    /// same query-and-filter whatever the chunking, so every thread count
    /// assembles the identical digraph.
    fn kd_induced_digraph(
        &self,
        points: &[Point],
        scheme: &OrientationScheme,
        tree: &KdTree,
    ) -> DiGraph {
        let n = points.len().min(scheme.len());
        // One chunk's rows: the number of targets per sensor in the range,
        // plus the flat ascending target list.
        let scan_range = |start: usize, end: usize| -> (Vec<u32>, Vec<u32>) {
            let mut row_sizes = Vec::with_capacity(end - start);
            let mut targets: Vec<u32> = Vec::new();
            let mut buf = Vec::new();
            for u in start..end {
                let assignment = scheme.assignment(u);
                let apex = &points[u];
                tree.within_radius_into(apex, assignment.max_radius() + EPS, &mut buf);
                let before = targets.len();
                for &v in &buf {
                    if v != u && assignment.covers(apex, &points[v]) {
                        targets.push(v as u32);
                    }
                }
                row_sizes.push((targets.len() - before) as u32);
            }
            (row_sizes, targets)
        };
        let chunks: Vec<(Vec<u32>, Vec<u32>)> = if self.threads > 1 && n >= PARALLEL_VERIFY_MIN {
            let ranges = chunk_ranges(n, self.threads);
            parallel_map(&ranges, self.threads, |&(start, end)| {
                scan_range(start, end)
            })
        } else {
            vec![scan_range(0, n)]
        };
        let total: usize = chunks.iter().map(|(_, t)| t.len()).sum();
        let mut offsets: Vec<u32> = Vec::with_capacity(points.len() + 1);
        offsets.push(0);
        let mut targets: Vec<u32> = Vec::with_capacity(total);
        for (row_sizes, chunk_targets) in chunks {
            for size in row_sizes {
                offsets.push(offsets.last().expect("offsets is never empty") + size);
            }
            targets.extend(chunk_targets);
        }
        // Sensors beyond the scheme's assignment list (n..points.len()) have
        // empty rows, exactly as the dense construction produces.
        offsets.resize(points.len() + 1, *offsets.last().expect("non-empty"));
        DiGraph::from_csr(points.len(), offsets, targets)
    }
}

/// An incremental verification session: one instance, one kd-tree, many
/// schemes.  Created by [`VerificationEngine::session`].
///
/// Sessions are `Sync` (the kd-tree is immutable after construction), so a
/// shared session can serve concurrent verifications — this is what
/// [`VerificationSession::verify_schemes`] and the batch pipeline's verified
/// entry points do.
#[derive(Debug, Clone)]
pub struct VerificationSession<'a> {
    instance: &'a Instance,
    tree: Option<KdTree>,
    engine: VerificationEngine,
}

impl VerificationSession<'_> {
    /// The instance this session verifies against.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Builds the digraph induced by `scheme`, reusing the session's
    /// kd-tree.
    pub fn induced_digraph(&self, scheme: &OrientationScheme) -> DiGraph {
        match &self.tree {
            Some(tree) => self
                .engine
                .kd_induced_digraph(self.instance.points(), scheme, tree),
            None => scheme.induced_digraph(self.instance.points()),
        }
    }

    /// Verifies `scheme` (connectivity and measurements only).
    pub fn verify(&self, scheme: &OrientationScheme) -> VerificationReport {
        self.verify_with_budget(scheme, None)
    }

    /// Verifies `scheme`, additionally checking `budget` when `Some`.
    pub fn verify_with_budget(
        &self,
        scheme: &OrientationScheme,
        budget: Option<AntennaBudget>,
    ) -> VerificationReport {
        let digraph = self.induced_digraph(scheme);
        report_from_digraph(self.instance, scheme, budget, &digraph)
    }

    /// Verifies many schemes against the session's instance concurrently
    /// (one kd-tree, [`crate::parallel::parallel_map`] across schemes),
    /// preserving input order.
    pub fn verify_schemes(
        &self,
        schemes: &[&OrientationScheme],
        budget: Option<AntennaBudget>,
    ) -> Vec<VerificationReport> {
        // Each scheme rebuilds its digraph sequentially inside its worker
        // (the fan-out is across schemes), borrowing the session's tree —
        // the index is never copied, no matter how many calls or schemes.
        let sequential = self.engine.with_threads(1);
        parallel_map(schemes, self.engine.threads, |scheme| {
            let digraph = match &self.tree {
                Some(tree) => sequential.kd_induced_digraph(self.instance.points(), scheme, tree),
                None => scheme.induced_digraph(self.instance.points()),
            };
            report_from_digraph(self.instance, scheme, budget, &digraph)
        })
    }
}

/// Assembles a [`VerificationReport`] from an already-built induced digraph
/// — the shared back half of every verification path (including the
/// incrementally maintained digraph in [`crate::dynamic`]).
pub(crate) fn report_from_digraph(
    instance: &Instance,
    scheme: &OrientationScheme,
    budget: Option<AntennaBudget>,
    digraph: &DiGraph,
) -> VerificationReport {
    let mut violations = Vec::new();
    if scheme.len() != instance.len() {
        violations.push(Violation::MissingAssignments {
            expected: instance.len(),
            actual: scheme.len(),
        });
    }
    if let Some(budget) = budget {
        for (i, assignment) in scheme.assignments.iter().enumerate() {
            if assignment.antenna_count() > budget.k {
                violations.push(Violation::TooManyAntennas {
                    sensor: i,
                    used: assignment.antenna_count(),
                    allowed: budget.k,
                });
            }
            if assignment.total_spread() > budget.phi + SPREAD_EPS {
                violations.push(Violation::SpreadExceeded {
                    sensor: i,
                    used: assignment.total_spread(),
                    allowed: budget.phi,
                });
            }
        }
    }

    // One masked-kernel Tarjan pass yields both the component count and the
    // largest size (this used to be two full decompositions).
    let summary = scc_summary(digraph);
    let components = summary.count;
    let largest = summary.largest;
    let strongly_connected = instance.len() <= 1 || components == 1;
    if !strongly_connected {
        violations.push(Violation::NotStronglyConnected {
            components,
            largest_component: largest,
        });
    }

    let max_radius = scheme.max_radius();
    VerificationReport {
        is_strongly_connected: strongly_connected,
        scc_count: components,
        edge_count: digraph.edge_count(),
        max_radius,
        max_radius_over_lmax: radius_over_lmax(max_radius, instance.lmax()),
        max_spread_sum: scheme.max_spread_sum(),
        max_antenna_count: scheme.max_antenna_count(),
        violations,
    }
}

/// Verifies `scheme` against `instance` without any budget constraints
/// (connectivity and measurements only).
///
/// Routes through a default [`VerificationEngine`]
/// ([`DigraphStrategy::Auto`]); pin a strategy or reuse a spatial index via
/// the engine API directly.
pub fn verify(instance: &Instance, scheme: &OrientationScheme) -> VerificationReport {
    verify_with_budget(instance, scheme, None)
}

/// Verifies `scheme` against `instance`, additionally checking the given
/// per-sensor budget when `budget` is `Some`.
///
/// Routes through a default [`VerificationEngine`]
/// ([`DigraphStrategy::Auto`]).
pub fn verify_with_budget(
    instance: &Instance,
    scheme: &OrientationScheme,
    budget: Option<AntennaBudget>,
) -> VerificationReport {
    VerificationEngine::new().verify_with_budget(instance, scheme, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::{Antenna, SensorAssignment};
    use antennae_geometry::Point;

    fn line_instance() -> Instance {
        Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap()
    }

    fn valid_cycle_scheme(instance: &Instance) -> OrientationScheme {
        let pts = instance.points();
        let n = pts.len();
        let assignments = (0..n)
            .map(|i| {
                let next = (i + 1) % n;
                SensorAssignment::new(vec![Antenna::beam(
                    &pts[i],
                    &pts[next],
                    pts[i].distance(&pts[next]),
                )])
            })
            .collect();
        OrientationScheme::new(assignments)
    }

    #[test]
    fn valid_scheme_passes_verification() {
        let instance = line_instance();
        let scheme = valid_cycle_scheme(&instance);
        let report = verify(&instance, &scheme);
        assert!(report.is_valid());
        assert!(report.is_strongly_connected);
        assert_eq!(report.scc_count, 1);
        assert!((report.max_radius - 2.0).abs() < 1e-12);
        assert!((report.max_radius_over_lmax - 2.0).abs() < 1e-12);
        assert_eq!(report.max_antenna_count, 1);
    }

    #[test]
    fn broken_scheme_is_rejected() {
        // Failure injection: an empty scheme cannot be strongly connected.
        let instance = line_instance();
        let scheme = OrientationScheme::empty(instance.len());
        let report = verify(&instance, &scheme);
        assert!(!report.is_valid());
        assert!(!report.is_strongly_connected);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotStronglyConnected { .. })));
    }

    #[test]
    fn one_way_scheme_is_rejected() {
        // Failure injection: every sensor beams only to the right; the last
        // sensor cannot reach back.
        let instance = line_instance();
        let pts = instance.points();
        let assignments = (0..pts.len())
            .map(|i| {
                if i + 1 < pts.len() {
                    SensorAssignment::new(vec![Antenna::beam(&pts[i], &pts[i + 1], 1.0)])
                } else {
                    SensorAssignment::empty()
                }
            })
            .collect();
        let scheme = OrientationScheme::new(assignments);
        let report = verify(&instance, &scheme);
        assert!(!report.is_strongly_connected);
        assert!(report.scc_count > 1);
    }

    #[test]
    fn budget_violations_are_reported() {
        let instance = line_instance();
        let scheme = valid_cycle_scheme(&instance);
        // The cycle scheme uses 1 antenna of spread 0 per sensor; a budget of
        // zero antennae must flag every sensor.
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(0, 0.0)));
        let count = report
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::TooManyAntennas { .. }))
            .count();
        assert_eq!(count, 3);

        // A generous budget produces no budget violations.
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(1, 0.0)));
        assert!(report.is_valid());
    }

    #[test]
    fn spread_violations_are_reported() {
        let instance = line_instance();
        let pts = instance.points();
        let wide = SensorAssignment::new(vec![Antenna::new(
            antennae_geometry::Angle::ZERO,
            antennae_geometry::PI,
            5.0,
        )]);
        let assignments = vec![wide.clone(), wide.clone(), wide];
        let scheme = OrientationScheme::new(assignments);
        let report = verify_with_budget(&instance, &scheme, Some(AntennaBudget::new(1, 1.0)));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpreadExceeded { .. })));
        // The wide antennas do connect everything though.
        assert!(report.is_strongly_connected);
        let _ = pts;
    }

    #[test]
    fn missing_assignments_are_reported() {
        let instance = line_instance();
        let scheme = OrientationScheme::empty(1);
        let report = verify(&instance, &scheme);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingAssignments {
                expected: 3,
                actual: 1
            }
        )));
    }

    #[test]
    fn single_sensor_is_trivially_connected() {
        let instance = Instance::new(vec![Point::new(0.0, 0.0)]).unwrap();
        let scheme = OrientationScheme::empty(1);
        let report = verify(&instance, &scheme);
        assert!(report.is_strongly_connected);
        assert!(report.is_valid());
        assert_eq!(report.max_radius_over_lmax, 0.0);
    }

    #[test]
    fn coincident_points_ratio_is_consistent_across_paths() {
        // Two coincident sensors: lmax = 0.  A positive radius must report
        // an infinite normalized radius from BOTH digraph paths, a zero
        // radius must report 0.
        let instance = Instance::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]).unwrap();
        assert_eq!(instance.lmax(), 0.0);
        let positive = OrientationScheme::new(vec![
            SensorAssignment::new(vec![Antenna::new(antennae_geometry::Angle::ZERO, 0.0, 0.5)]),
            SensorAssignment::new(vec![Antenna::new(antennae_geometry::Angle::ZERO, 0.0, 0.5)]),
        ]);
        let zero = OrientationScheme::empty(2);
        for strategy in [DigraphStrategy::Dense, DigraphStrategy::KdTree] {
            let engine = VerificationEngine::new().with_strategy(strategy);
            let report = engine.verify(&instance, &positive);
            assert_eq!(report.max_radius_over_lmax, f64::INFINITY, "{strategy:?}");
            // Coincident points cover each other (the apex rule), so the
            // pair is strongly connected.
            assert!(report.is_strongly_connected, "{strategy:?}");
            let report = engine.verify(&instance, &zero);
            assert_eq!(report.max_radius_over_lmax, 0.0, "{strategy:?}");
        }
    }

    #[test]
    fn strategies_agree_on_small_schemes() {
        let instance = line_instance();
        let schemes = [
            valid_cycle_scheme(&instance),
            OrientationScheme::empty(instance.len()),
            OrientationScheme::empty(1),
        ];
        for scheme in &schemes {
            let dense = VerificationEngine::new()
                .with_strategy(DigraphStrategy::Dense)
                .verify(&instance, scheme);
            let fast = VerificationEngine::new()
                .with_strategy(DigraphStrategy::KdTree)
                .verify(&instance, scheme);
            assert_eq!(dense, fast);
            let dense_g = VerificationEngine::new()
                .with_strategy(DigraphStrategy::Dense)
                .induced_digraph(instance.points(), scheme);
            let fast_g = VerificationEngine::new()
                .with_strategy(DigraphStrategy::KdTree)
                .induced_digraph(instance.points(), scheme);
            assert_eq!(dense_g, fast_g);
        }
    }

    #[test]
    fn auto_strategy_resolves_by_size() {
        let engine = VerificationEngine::new();
        assert!(!engine.uses_kdtree(KDTREE_VERIFY_CROSSOVER - 1));
        assert!(engine.uses_kdtree(KDTREE_VERIFY_CROSSOVER));
        assert!(!engine
            .with_strategy(DigraphStrategy::Dense)
            .uses_kdtree(1_000_000));
        assert!(engine.with_strategy(DigraphStrategy::KdTree).uses_kdtree(2));
        assert_eq!(engine.strategy(), DigraphStrategy::Auto);
    }

    #[test]
    fn session_reuses_one_tree_across_schemes() {
        let instance = line_instance();
        let cycle = valid_cycle_scheme(&instance);
        let empty = OrientationScheme::empty(instance.len());
        let session = VerificationEngine::new()
            .with_strategy(DigraphStrategy::KdTree)
            .session(&instance);
        assert_eq!(session.instance().len(), 3);
        assert!(session.verify(&cycle).is_strongly_connected);
        assert!(!session.verify(&empty).is_strongly_connected);
        let reports = session.verify_schemes(&[&cycle, &empty], None);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], session.verify(&cycle));
        assert_eq!(reports[1], session.verify(&empty));
        // Dense-resolved sessions build no tree and still agree.
        let dense_session = VerificationEngine::new()
            .with_strategy(DigraphStrategy::Dense)
            .session(&instance);
        assert_eq!(dense_session.verify(&cycle), session.verify(&cycle));
    }

    #[test]
    fn verify_batch_preserves_order_and_matches_single_calls() {
        let a = line_instance();
        let b = Instance::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5)]).unwrap();
        let scheme_a = valid_cycle_scheme(&a);
        let scheme_b = OrientationScheme::empty(b.len());
        let engine = VerificationEngine::new();
        let pairs: Vec<(&Instance, &OrientationScheme)> =
            vec![(&a, &scheme_a), (&b, &scheme_b), (&a, &scheme_a)];
        let reports = engine.verify_batch(&pairs, None);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], engine.verify(&a, &scheme_a));
        assert_eq!(reports[1], engine.verify(&b, &scheme_b));
        assert_eq!(reports[0], reports[2]);
        assert!(reports[0].is_strongly_connected);
        assert!(!reports[1].is_strongly_connected);
    }
}
