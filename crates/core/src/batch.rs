//! Batch orientation pipeline: many `(k, φ_k)` budgets against one point
//! set, or one budget against many instances, sharing MST substrates and a
//! thread pool.
//!
//! [`crate::algorithms::dispatch::orient`] is the single-shot entry point; a
//! caller sweeping a budget grid with it would rebuild the
//! [`Instance`] — and with it the Euclidean MST, the single most expensive
//! step of the whole stack — once per call.  [`BatchOrienter`] hoists that
//! cost out of the loop: the instance (and its degree-5 MST) is built exactly
//! once, then every budget is dispatched against it in parallel through
//! [`crate::parallel::parallel_map`] (the same primitive the simulation
//! crate's sweeps use, re-exported there as `antennae_sim::sweep`).

use crate::algorithms::dispatch::{orient_with_report, OrientationOutcome};
use crate::antenna::AntennaBudget;
use crate::error::OrientError;
use crate::instance::Instance;
use crate::parallel::{default_threads, parallel_map};
use antennae_geometry::Point;

/// Orients many antenna budgets against one sensor deployment, building the
/// Euclidean MST substrate exactly once.
///
/// # Examples
///
/// ```
/// use antennae_core::batch::BatchOrienter;
/// use antennae_core::antenna::AntennaBudget;
/// use antennae_geometry::Point;
///
/// let points = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.2),
///     Point::new(0.4, 0.9),
///     Point::new(1.3, 1.1),
/// ];
/// let batch = BatchOrienter::new(points)?;
///
/// // One MST build serves the whole budget grid.
/// let budgets: Vec<AntennaBudget> =
///     (1..=5).map(|k| AntennaBudget::new(k, std::f64::consts::PI)).collect();
/// let outcomes = batch.orient_budgets(&budgets);
/// assert_eq!(outcomes.len(), 5);
/// for outcome in outcomes {
///     let outcome = outcome.expect("every budget row is orientable");
///     assert!(outcome.scheme.max_radius() > 0.0);
/// }
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchOrienter {
    instance: Instance,
    threads: usize,
}

impl BatchOrienter {
    /// Builds the shared [`Instance`] (one Euclidean MST construction) for
    /// `points` and readies a pipeline with the default thread count.
    pub fn new(points: Vec<Point>) -> Result<Self, OrientError> {
        Ok(Self::from_instance(Instance::new(points)?))
    }

    /// Wraps an already-built instance, reusing its MST substrate.
    pub fn from_instance(instance: Instance) -> Self {
        BatchOrienter {
            instance,
            threads: default_threads(),
        }
    }

    /// Sets the worker-thread count (`1` forces a sequential pipeline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The shared instance every budget is dispatched against.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Orients every budget in `budgets` against the shared instance, in
    /// parallel, returning outcomes in input order.
    pub fn orient_budgets(
        &self,
        budgets: &[AntennaBudget],
    ) -> Vec<Result<OrientationOutcome, OrientError>> {
        parallel_map(budgets, self.threads, |budget| {
            orient_with_report(&self.instance, *budget)
        })
    }

    /// Orients one `budget` against many prebuilt instances, in parallel,
    /// returning outcomes in input order.
    ///
    /// This is the many-deployments-one-budget dual of
    /// [`BatchOrienter::orient_budgets`]; instances are borrowed so their MST
    /// substrates are shared with the caller.
    pub fn orient_instances(
        instances: &[Instance],
        budget: AntennaBudget,
        threads: usize,
    ) -> Vec<Result<OrientationOutcome, OrientError>> {
        parallel_map(instances, threads, |instance| {
            orient_with_report(instance, budget)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dispatch::orient_with_report;
    use crate::verify::verify_with_budget;
    use antennae_geometry::{PI, TAU};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    fn budget_grid() -> Vec<AntennaBudget> {
        let mut budgets = Vec::new();
        for k in 1..=5 {
            for step in 0..=4 {
                budgets.push(AntennaBudget::new(k, TAU * step as f64 / 4.0));
            }
        }
        budgets
    }

    #[test]
    fn batch_matches_single_shot_dispatch() {
        let points = random_points(40, 11);
        let batch = BatchOrienter::new(points.clone()).unwrap();
        let budgets = budget_grid();
        let batched = batch.orient_budgets(&budgets);

        for (budget, outcome) in budgets.iter().zip(batched) {
            let single = orient_with_report(batch.instance(), *budget).unwrap();
            let outcome = outcome.unwrap();
            assert_eq!(outcome.algorithm, single.algorithm, "budget {budget:?}");
            assert_eq!(
                outcome.guaranteed_radius_over_lmax, single.guaranteed_radius_over_lmax,
                "budget {budget:?}"
            );
            let report = verify_with_budget(batch.instance(), &outcome.scheme, Some(*budget));
            assert!(report.is_valid(), "budget {budget:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn sequential_and_parallel_batches_agree() {
        let points = random_points(30, 12);
        let budgets = budget_grid();
        let seq = BatchOrienter::new(points.clone())
            .unwrap()
            .with_threads(1)
            .orient_budgets(&budgets);
        let par = BatchOrienter::new(points)
            .unwrap()
            .with_threads(4)
            .orient_budgets(&budgets);
        for (s, p) in seq.iter().zip(par.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.algorithm, p.algorithm);
            assert_eq!(s.scheme.max_radius(), p.scheme.max_radius());
        }
    }

    #[test]
    fn invalid_budgets_report_errors_in_place() {
        let batch = BatchOrienter::new(random_points(10, 13)).unwrap();
        let budgets = vec![
            AntennaBudget::new(0, PI),
            AntennaBudget::new(2, PI),
            AntennaBudget::new(9, PI),
        ];
        let outcomes = batch.orient_budgets(&budgets);
        assert!(matches!(
            outcomes[0],
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(outcomes[1].is_ok());
        assert!(matches!(
            outcomes[2],
            Err(OrientError::UnsupportedAntennaCount { k: 9 })
        ));
    }

    #[test]
    fn one_budget_many_instances() {
        let instances: Vec<Instance> = (0..6)
            .map(|seed| Instance::new(random_points(25, 20 + seed)).unwrap())
            .collect();
        let outcomes = BatchOrienter::orient_instances(&instances, AntennaBudget::new(3, 0.0), 4);
        assert_eq!(outcomes.len(), instances.len());
        for (instance, outcome) in instances.iter().zip(outcomes) {
            let outcome = outcome.unwrap();
            let report = verify_with_budget(
                instance,
                &outcome.scheme,
                Some(AntennaBudget::new(3, 0.0)),
            );
            assert!(report.is_valid(), "{:?}", report.violations);
        }
    }
}
