//! Batch orientation pipelines: many `(k, φ_k)` budgets against one point
//! set ([`BatchOrienter`]), or one budget against many instances
//! ([`InstanceBatch`]), sharing MST substrates and a thread pool.
//!
//! [`crate::solver::Solver`] is the single-shot entry point; a caller
//! sweeping a budget grid with it would rebuild the [`Instance`] — and with
//! it the Euclidean MST, the single most expensive step of the whole stack —
//! once per call.  The batch types hoist that cost out of the loop: each
//! instance (and its degree-5 MST) is built exactly once, then every solve
//! runs against it in parallel through [`crate::parallel::parallel_map`]
//! (the same primitive the simulation crate's sweeps use, re-exported there
//! as `antennae_sim::sweep`).  Both types accept a
//! [`SelectionPolicy`], so a whole grid can be solved under
//! [`SelectionPolicy::Portfolio`] as easily as under the default
//! [`SelectionPolicy::BestGuarantee`].

use crate::antenna::AntennaBudget;
use crate::error::OrientError;
use crate::instance::Instance;
use crate::parallel::{default_threads, parallel_map};
use crate::solver::{OrientationOutcome, Registry, SelectionPolicy, Solver, VerifiedOutcome};
use crate::verify::VerificationEngine;
use antennae_geometry::Point;
use std::sync::Arc;

/// Orients many antenna budgets against one sensor deployment, building the
/// Euclidean MST substrate exactly once.
///
/// # Examples
///
/// ```
/// use antennae_core::batch::BatchOrienter;
/// use antennae_core::antenna::AntennaBudget;
/// use antennae_geometry::Point;
///
/// let points = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.2),
///     Point::new(0.4, 0.9),
///     Point::new(1.3, 1.1),
/// ];
/// let batch = BatchOrienter::new(points)?;
///
/// // One MST build serves the whole budget grid.
/// let budgets: Vec<AntennaBudget> =
///     (1..=5).map(|k| AntennaBudget::new(k, std::f64::consts::PI)).collect();
/// let outcomes = batch.orient_budgets(&budgets);
/// assert_eq!(outcomes.len(), 5);
/// for outcome in outcomes {
///     let outcome = outcome.expect("every budget row is orientable");
///     assert!(outcome.scheme.max_radius() > 0.0);
/// }
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchOrienter {
    instance: Instance,
    threads: usize,
    policy: SelectionPolicy,
    registry: Arc<Registry>,
    engine: VerificationEngine,
}

impl BatchOrienter {
    /// Builds the shared [`Instance`] (one Euclidean MST construction) for
    /// `points` and readies a pipeline with the default thread count and
    /// [`SelectionPolicy::BestGuarantee`].
    pub fn new(points: Vec<Point>) -> Result<Self, OrientError> {
        Ok(Self::from_instance(Instance::new(points)?))
    }

    /// Wraps an already-built instance, reusing its MST substrate.
    pub fn from_instance(instance: Instance) -> Self {
        BatchOrienter {
            instance,
            threads: default_threads(),
            policy: SelectionPolicy::default(),
            registry: Registry::shared_paper(),
            engine: VerificationEngine::new(),
        }
    }

    /// Sets the worker-thread count (`1` forces a sequential pipeline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the selection policy every budget is solved under.
    pub fn with_policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the algorithm registry every budget is solved against.
    pub fn with_registry(mut self, registry: impl Into<Arc<Registry>>) -> Self {
        self.registry = registry.into();
        self
    }

    /// Replaces the verification engine
    /// [`BatchOrienter::orient_budgets_verified`] routes through (the
    /// default uses the `Auto` digraph strategy).
    pub fn with_engine(mut self, engine: VerificationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The shared instance every budget is solved against.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Solves every budget in `budgets` against the shared instance, in
    /// parallel, returning outcomes in input order.
    pub fn orient_budgets(
        &self,
        budgets: &[AntennaBudget],
    ) -> Vec<Result<OrientationOutcome, OrientError>> {
        // When the outer fan-out saturates the pool the inner solves run
        // sequentially; short batches hand their idle workers to the inner
        // portfolios instead.
        let inner_threads = (self.threads / budgets.len().max(1)).max(1);
        parallel_map(budgets, self.threads, |budget| {
            Solver::on(&self.instance)
                .with_budget(*budget)
                .policy(self.policy)
                .registry(Arc::clone(&self.registry))
                .threads(inner_threads)
                .run()
        })
    }

    /// Solves every budget in `budgets` against the shared instance and
    /// independently verifies every produced scheme (including every
    /// Portfolio candidate) through the configured
    /// [`VerificationEngine`].
    ///
    /// The whole grid shares one
    /// [`crate::verify::VerificationSession`]: the spatial index over the
    /// instance is built exactly once — like the MST substrate — no matter
    /// how many budgets or candidates ride the pipeline.  Each scheme is
    /// verified under the budget it was solved for.
    pub fn orient_budgets_verified(
        &self,
        budgets: &[AntennaBudget],
    ) -> Vec<Result<VerifiedOutcome, OrientError>> {
        let inner_threads = (self.threads / budgets.len().max(1)).max(1);
        // The outer fan-out is across budgets; each budget verifies its own
        // candidates sequentially on the shared session.
        let session = self.engine.with_threads(1).session(&self.instance);
        parallel_map(budgets, self.threads, |budget| {
            Solver::on(&self.instance)
                .with_budget(*budget)
                .policy(self.policy)
                .registry(Arc::clone(&self.registry))
                .threads(inner_threads)
                .run()
                .map(|outcome| VerifiedOutcome::from_session(outcome, &session, Some(*budget)))
        })
    }

    /// Orients one `budget` against many prebuilt instances.
    #[deprecated(
        since = "0.2.0",
        note = "use `InstanceBatch::new(instances).with_threads(threads).orient(budget)`"
    )]
    pub fn orient_instances(
        instances: &[Instance],
        budget: AntennaBudget,
        threads: usize,
    ) -> Vec<Result<OrientationOutcome, OrientError>> {
        InstanceBatch::new(instances)
            .with_threads(threads)
            .orient(budget)
    }
}

/// Orients budgets against many prebuilt instances — the
/// many-deployments dual of [`BatchOrienter`].
///
/// Instances are borrowed, so their MST substrates stay shared with the
/// caller; every `(instance, budget)` solve fans out over
/// [`crate::parallel::parallel_map`] under the configured policy.
///
/// # Examples
///
/// ```
/// use antennae_core::batch::InstanceBatch;
/// use antennae_core::antenna::AntennaBudget;
/// use antennae_core::instance::Instance;
/// use antennae_geometry::Point;
///
/// let deployments: Vec<Instance> = (0..3)
///     .map(|i| {
///         Instance::new(vec![
///             Point::new(0.0, i as f64),
///             Point::new(1.0, 0.3),
///             Point::new(0.2, 1.1),
///         ])
///     })
///     .collect::<Result<_, _>>()?;
/// let outcomes = InstanceBatch::new(&deployments).orient(AntennaBudget::new(3, 0.0));
/// assert_eq!(outcomes.len(), 3);
/// # Ok::<(), antennae_core::error::OrientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBatch<'a> {
    instances: &'a [Instance],
    threads: usize,
    policy: SelectionPolicy,
    registry: Arc<Registry>,
}

impl<'a> InstanceBatch<'a> {
    /// Readies a pipeline over `instances` with the default thread count and
    /// [`SelectionPolicy::BestGuarantee`].
    pub fn new(instances: &'a [Instance]) -> Self {
        InstanceBatch {
            instances,
            threads: default_threads(),
            policy: SelectionPolicy::default(),
            registry: Registry::shared_paper(),
        }
    }

    /// Sets the worker-thread count (`1` forces a sequential pipeline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the selection policy every instance is solved under.
    pub fn with_policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the algorithm registry every instance is solved against.
    pub fn with_registry(mut self, registry: impl Into<Arc<Registry>>) -> Self {
        self.registry = registry.into();
        self
    }

    /// The instances every budget is solved against.
    pub fn instances(&self) -> &[Instance] {
        self.instances
    }

    /// Solves `budget` against every instance, in parallel, returning
    /// outcomes in input order.
    pub fn orient(&self, budget: AntennaBudget) -> Vec<Result<OrientationOutcome, OrientError>> {
        // Same split as `BatchOrienter::orient_budgets`: idle outer workers
        // are handed to the inner solves of short batches.
        let inner_threads = (self.threads / self.instances.len().max(1)).max(1);
        parallel_map(self.instances, self.threads, |instance| {
            Solver::on(instance)
                .with_budget(budget)
                .policy(self.policy)
                .registry(Arc::clone(&self.registry))
                .threads(inner_threads)
                .run()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_with_budget;
    use antennae_geometry::{PI, TAU};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)))
            .collect()
    }

    fn budget_grid() -> Vec<AntennaBudget> {
        let mut budgets = Vec::new();
        for k in 1..=5 {
            for step in 0..=4 {
                budgets.push(AntennaBudget::new(k, TAU * step as f64 / 4.0));
            }
        }
        budgets
    }

    #[test]
    fn batch_matches_single_shot_solves() {
        let points = random_points(40, 11);
        let batch = BatchOrienter::new(points.clone()).unwrap();
        let budgets = budget_grid();
        let batched = batch.orient_budgets(&budgets);

        for (budget, outcome) in budgets.iter().zip(batched) {
            let single = Solver::on(batch.instance())
                .with_budget(*budget)
                .run()
                .unwrap();
            let outcome = outcome.unwrap();
            assert_eq!(outcome.algorithm, single.algorithm, "budget {budget:?}");
            assert_eq!(
                outcome.guaranteed_radius_over_lmax, single.guaranteed_radius_over_lmax,
                "budget {budget:?}"
            );
            let report = verify_with_budget(batch.instance(), &outcome.scheme, Some(*budget));
            assert!(
                report.is_valid(),
                "budget {budget:?}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn sequential_and_parallel_batches_agree() {
        let points = random_points(30, 12);
        let budgets = budget_grid();
        let seq = BatchOrienter::new(points.clone())
            .unwrap()
            .with_threads(1)
            .orient_budgets(&budgets);
        let par = BatchOrienter::new(points)
            .unwrap()
            .with_threads(4)
            .orient_budgets(&budgets);
        for (s, p) in seq.iter().zip(par.iter()) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.algorithm, p.algorithm);
            assert_eq!(s.scheme.max_radius(), p.scheme.max_radius());
        }
    }

    #[test]
    fn invalid_budgets_report_errors_in_place() {
        let batch = BatchOrienter::new(random_points(10, 13)).unwrap();
        let budgets = vec![
            AntennaBudget::new(0, PI),
            AntennaBudget::new(2, PI),
            AntennaBudget::new(9, PI),
        ];
        let outcomes = batch.orient_budgets(&budgets);
        assert!(matches!(
            outcomes[0],
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(outcomes[1].is_ok());
        assert!(matches!(
            outcomes[2],
            Err(OrientError::UnsupportedAntennaCount { k: 9 })
        ));
    }

    #[test]
    fn portfolio_policy_rides_the_batch_pipeline() {
        let batch = BatchOrienter::new(random_points(30, 14))
            .unwrap()
            .with_policy(SelectionPolicy::Portfolio);
        let budgets = vec![AntennaBudget::new(3, 0.0), AntennaBudget::new(2, PI)];
        let best = BatchOrienter::from_instance(batch.instance().clone()).orient_budgets(&budgets);
        for (portfolio, best) in batch.orient_budgets(&budgets).into_iter().zip(best) {
            let (portfolio, best) = (portfolio.unwrap(), best.unwrap());
            assert!(portfolio.candidates.len() > 1);
            assert!(portfolio.measured_radius_over_lmax <= best.measured_radius_over_lmax + 1e-12);
        }
    }

    #[test]
    fn verified_batch_matches_unverified_solves_and_reports_are_sound() {
        let points = random_points(35, 15);
        let batch = BatchOrienter::new(points)
            .unwrap()
            .with_policy(SelectionPolicy::Portfolio);
        let budgets = vec![AntennaBudget::new(2, PI), AntennaBudget::new(3, 0.0)];
        let verified = batch.orient_budgets_verified(&budgets);
        let plain = batch.orient_budgets(&budgets);
        assert_eq!(verified.len(), plain.len());
        for ((budget, verified), plain) in budgets.iter().zip(verified).zip(plain) {
            let (verified, plain) = (verified.unwrap(), plain.unwrap());
            assert_eq!(verified.outcome.algorithm, plain.algorithm);
            assert!(verified.is_valid(), "budget {budget:?}");
            assert_eq!(
                verified.candidate_reports.len(),
                verified.outcome.candidates.len()
            );
            // Every candidate report matches an independent re-verification.
            for (candidate, report) in verified
                .outcome
                .candidates
                .iter()
                .zip(&verified.candidate_reports)
            {
                let scheme = candidate.scheme.as_ref().unwrap();
                assert_eq!(
                    *report,
                    verify_with_budget(batch.instance(), scheme, Some(*budget))
                );
            }
        }
    }

    #[test]
    fn verified_batch_surfaces_per_budget_errors() {
        let batch = BatchOrienter::new(random_points(10, 16)).unwrap();
        let outcomes =
            batch.orient_budgets_verified(&[AntennaBudget::new(0, 0.0), AntennaBudget::new(2, PI)]);
        assert!(matches!(
            outcomes[0],
            Err(OrientError::UnsupportedAntennaCount { k: 0 })
        ));
        assert!(outcomes[1].as_ref().unwrap().is_valid());
    }

    #[test]
    fn one_budget_many_instances() {
        let instances: Vec<Instance> = (0..6)
            .map(|seed| Instance::new(random_points(25, 20 + seed)).unwrap())
            .collect();
        let budget = AntennaBudget::new(3, 0.0);
        let outcomes = InstanceBatch::new(&instances)
            .with_threads(4)
            .orient(budget);
        assert_eq!(outcomes.len(), instances.len());
        for (instance, outcome) in instances.iter().zip(outcomes) {
            let outcome = outcome.unwrap();
            let report = verify_with_budget(instance, &outcome.scheme, Some(budget));
            assert!(report.is_valid(), "{:?}", report.violations);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_orient_instances_shim_matches_instance_batch() {
        let instances: Vec<Instance> = (0..4)
            .map(|seed| Instance::new(random_points(20, 40 + seed)).unwrap())
            .collect();
        let budget = AntennaBudget::new(2, PI);
        let shim = BatchOrienter::orient_instances(&instances, budget, 2);
        let batch = InstanceBatch::new(&instances)
            .with_threads(2)
            .orient(budget);
        for (s, b) in shim.iter().zip(batch.iter()) {
            let (s, b) = (s.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(s.algorithm, b.algorithm);
            assert_eq!(s.scheme.max_radius(), b.scheme.max_radius());
        }
    }
}
