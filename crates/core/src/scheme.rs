//! Orientation schemes and the directed communication graphs they induce.

use crate::antenna::SensorAssignment;
use antennae_geometry::Point;
use antennae_graph::DiGraph;
use serde::{Deserialize, Serialize};

/// A complete orientation: one [`SensorAssignment`] per sensor, indexed
/// exactly like the instance's point slice.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OrientationScheme {
    /// Per-sensor antenna assignments.
    pub assignments: Vec<SensorAssignment>,
}

impl OrientationScheme {
    /// Creates a scheme with `n` empty assignments.
    pub fn empty(n: usize) -> Self {
        OrientationScheme {
            assignments: vec![SensorAssignment::empty(); n],
        }
    }

    /// Creates a scheme from per-sensor assignments.
    pub fn new(assignments: Vec<SensorAssignment>) -> Self {
        OrientationScheme { assignments }
    }

    /// Number of sensors the scheme covers.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Returns `true` when the scheme has no sensors.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The assignment of sensor `i`.
    pub fn assignment(&self, i: usize) -> &SensorAssignment {
        &self.assignments[i]
    }

    /// Largest antenna range used anywhere in the scheme.
    pub fn max_radius(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.max_radius())
            .fold(0.0, f64::max)
    }

    /// Largest per-sensor spread sum used anywhere in the scheme (the
    /// quantity bounded by the paper's `φ_k`).
    pub fn max_spread_sum(&self) -> f64 {
        self.assignments
            .iter()
            .map(|a| a.total_spread())
            .fold(0.0, f64::max)
    }

    /// Largest number of antennae used at any sensor.
    pub fn max_antenna_count(&self) -> usize {
        self.assignments
            .iter()
            .map(|a| a.antenna_count())
            .max()
            .unwrap_or(0)
    }

    /// Builds the induced directed communication graph over `points`:
    /// `u → v` iff some antenna of sensor `u` covers the location of `v`.
    ///
    /// This is the *dense reference construction*: Θ(n² · k) pairwise sector
    /// tests, visited in ascending index order.  It doubles as the oracle
    /// the sub-quadratic [`crate::verify::VerificationEngine`] is
    /// property-tested against — the engine's kd-tree path must reproduce
    /// this construction bit-for-bit (same edges, same adjacency order).
    /// Both paths emit the flat CSR arrays directly (no per-edge insertion,
    /// no nested adjacency).  Callers on a hot path should go through the
    /// engine, which picks the cheaper of the two constructions per
    /// instance size.
    pub fn induced_digraph(&self, points: &[Point]) -> DiGraph {
        let n = points.len().min(self.assignments.len());
        DiGraph::from_adjacency(
            points.len(),
            (0..n).map(|u| {
                let apex = &points[u];
                let assignment = &self.assignments[u];
                points.iter().enumerate().filter_map(move |(v, target)| {
                    (u != v && assignment.covers(apex, target)).then_some(v)
                })
            }),
        )
    }

    /// Scales every antenna radius by `factor` (used by experiments that
    /// re-express schemes in units of `lmax`).
    pub fn scale_radii(&mut self, factor: f64) {
        for assignment in &mut self.assignments {
            for antenna in &mut assignment.antennas {
                antenna.radius *= factor;
            }
        }
    }

    /// Total number of antennae actually mounted across all sensors.
    pub fn total_antennas(&self) -> usize {
        self.assignments.iter().map(|a| a.antenna_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;

    fn line_points() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]
    }

    fn beam_cycle_scheme(points: &[Point]) -> OrientationScheme {
        // Each sensor beams at the next one (cyclically).
        let n = points.len();
        let assignments = (0..n)
            .map(|i| {
                let next = (i + 1) % n;
                let radius = points[i].distance(&points[next]);
                SensorAssignment::new(vec![Antenna::beam(&points[i], &points[next], radius)])
            })
            .collect();
        OrientationScheme::new(assignments)
    }

    #[test]
    fn induced_digraph_of_beam_cycle_is_strongly_connected() {
        let points = line_points();
        let scheme = beam_cycle_scheme(&points);
        let g = scheme.induced_digraph(&points);
        assert!(g.is_strongly_connected());
        // The wrap-around beam from the last to the first sensor passes over
        // the middle one, so it is also covered: 0←2 and 1←2.
        assert!(g.has_edge(2, 0));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn aggregates_over_assignments() {
        let points = line_points();
        let scheme = beam_cycle_scheme(&points);
        assert_eq!(scheme.len(), 3);
        assert_eq!(scheme.total_antennas(), 3);
        assert_eq!(scheme.max_antenna_count(), 1);
        assert!((scheme.max_radius() - 2.0).abs() < 1e-12);
        assert_eq!(scheme.max_spread_sum(), 0.0);
    }

    #[test]
    fn empty_scheme_has_no_edges() {
        let points = line_points();
        let scheme = OrientationScheme::empty(points.len());
        let g = scheme.induced_digraph(&points);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_strongly_connected());
        assert!(!scheme.is_empty());
        assert_eq!(OrientationScheme::empty(0).len(), 0);
    }

    #[test]
    fn scaling_radii_scales_max_radius() {
        let points = line_points();
        let mut scheme = beam_cycle_scheme(&points);
        scheme.scale_radii(0.5);
        assert!((scheme.max_radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_are_handled_gracefully() {
        let points = line_points();
        let scheme = OrientationScheme::empty(2); // fewer assignments than points
        let g = scheme.induced_digraph(&points);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 0);
    }
}
