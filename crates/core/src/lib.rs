//! # antennae-core
//!
//! Antenna-orientation algorithms for **strong connectivity with a bounded
//! angular sum**, reproducing Bhattacharya, Hu, Shi, Kranakis, Krizanc,
//! *"Sensor Network Connectivity with Multiple Directional Antennae of a
//! Given Angular Sum"* (IPPS 2009).
//!
//! ## Problem
//!
//! Each of `n` sensors (points in the plane) carries `k` directional
//! antennae, `1 ≤ k ≤ 5`.  The sum of the angular spreads of the antennae at
//! each sensor is bounded by `φ_k`, and every antenna has the same range
//! (radius) `r`.  Orient all antennae so that the induced directed graph
//! (`u → v` iff `v` lies in one of `u`'s sectors) is strongly connected,
//! while keeping `r` as small as possible.  Ranges are reported in units of
//! `lmax`, the longest edge of a Euclidean MST of the point set, which lower
//! bounds every feasible radius.
//!
//! ## What is implemented
//!
//! | result | module | guarantee (radius / lmax) |
//! |---|---|---|
//! | Lemma 1 (per-node spread bound) | [`algorithms::lemma1`] | spread `2π(d−k)/d` suffices at a degree-`d` node |
//! | Theorem 2 (`φ_k ≥ 2π(5−k)/5`) | [`algorithms::theorem2`] | 1 |
//! | Theorem 3.1 (`k = 2`, `φ₂ ≥ π`) | [`algorithms::theorem3`] | 2·sin(2π/9) |
//! | Theorem 3.2 (`k = 2`, `2π/3 ≤ φ₂ < π`) | [`algorithms::theorem3`] | 2·sin(π/2 − φ₂/4) |
//! | Theorem 5 (`k = 3`, spread 0) | [`algorithms::chains`] | √3 |
//! | Theorem 6 (`k = 4`, spread 0) | [`algorithms::chains`] | √2 |
//! | `k = 5`, spread 0 (folklore) | [`algorithms::chains`] | 1 |
//! | `k = 2`, spread 0 (\[14\] row) | [`algorithms::chains`] | 2 |
//! | `k = 1` baselines (\[4\], \[14\] rows) | [`algorithms::one_antenna`], [`algorithms::hamiltonian`] | 1 / ≈2 (heuristic) |
//!
//! [`algorithms::dispatch::orient`] picks the best algorithm for a given
//! `(k, φ_k)` budget, and [`verify::verify`] independently checks strong
//! connectivity and the radius/spread budgets of any scheme.
//!
//! For whole budget grids or fleets of deployments, [`batch::BatchOrienter`]
//! shares one MST substrate across every dispatch and fans the work out over
//! the order-preserving [`parallel::parallel_map`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod antenna;
pub mod batch;
pub mod bounds;
pub mod error;
pub mod instance;
pub mod parallel;
pub mod scheme;
pub mod verify;

pub use antenna::{Antenna, AntennaBudget, SensorAssignment};
pub use batch::BatchOrienter;
pub use error::OrientError;
pub use instance::Instance;
pub use scheme::OrientationScheme;
pub use verify::{verify, VerificationReport};
