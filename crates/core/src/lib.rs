//! # antennae-core
//!
//! Antenna-orientation algorithms for **strong connectivity with a bounded
//! angular sum**, reproducing Bhattacharya, Hu, Shi, Kranakis, Krizanc,
//! *"Sensor Network Connectivity with Multiple Directional Antennae of a
//! Given Angular Sum"* (IPPS 2009).
//!
//! ## Problem
//!
//! Each of `n` sensors (points in the plane) carries `k` directional
//! antennae, `1 ≤ k ≤ 5`.  The sum of the angular spreads of the antennae at
//! each sensor is bounded by `φ_k`, and every antenna has the same range
//! (radius) `r`.  Orient all antennae so that the induced directed graph
//! (`u → v` iff `v` lies in one of `u`'s sectors) is strongly connected,
//! while keeping `r` as small as possible.  Ranges are reported in units of
//! `lmax`, the longest edge of a Euclidean MST of the point set, which lower
//! bounds every feasible radius.
//!
//! ## What is implemented
//!
//! Every Table 1 construction is a first-class [`solver::Orienter`] held in
//! a [`solver::Registry`] (the [`solver::Registry::paper`] set below); the
//! algorithm internals live one module per theorem:
//!
//! | result | [`solver::Orienter`] | module | guarantee (radius / lmax) |
//! |---|---|---|---|
//! | Lemma 1 (per-node spread bound) | — (primitive used by Theorem 2) | [`algorithms::lemma1`] | spread `2π(d−k)/d` suffices at a degree-`d` node |
//! | Theorem 2 (`φ_k ≥ 2π(5−k)/5`) | [`solver::Theorem2Orienter`] | [`algorithms::theorem2`] | 1 |
//! | Theorem 3.1 (`k = 2`, `φ₂ ≥ π`) | [`solver::Theorem3Orienter`] | [`algorithms::theorem3`] | 2·sin(2π/9) |
//! | Theorem 3.2 (`k = 2`, `2π/3 ≤ φ₂ < π`) | [`solver::Theorem3Orienter`] | [`algorithms::theorem3`] | 2·sin(π/2 − φ₂/4) |
//! | Theorem 5 (`k = 3`, spread 0) | [`solver::ChainsOrienter`] | [`algorithms::chains`] | √3 |
//! | Theorem 6 (`k = 4`, spread 0) | [`solver::ChainsOrienter`] | [`algorithms::chains`] | √2 |
//! | `k = 5`, spread 0 (folklore) | [`solver::ChainsOrienter`] | [`algorithms::chains`] | 1 |
//! | `k = 2`, spread 0 (\[14\] row) | [`solver::ChainsOrienter`] | [`algorithms::chains`] | 2 |
//! | `k = 1`, `φ₁ ≥ 8π/5` (\[4\] row) | [`solver::OneAntennaWideOrienter`] | [`algorithms::one_antenna`] | 1 |
//! | `k = 1` cycle baseline (\[14\] row) | [`solver::HamiltonianOrienter`] | [`algorithms::hamiltonian`] | ≈2 (heuristic) |
//!
//! [`solver::Solver`] is the entry point: it selects among the registered
//! constructions under a [`solver::SelectionPolicy`] — the best proven
//! guarantee (the classic dispatch), one specific algorithm, or a parallel
//! portfolio that keeps the smallest *measured* radius — and
//! [`verify::verify`] independently checks strong connectivity and the
//! radius/spread budgets of any scheme.  Verification itself is served by
//! the sub-quadratic [`verify::VerificationEngine`] (kd-tree range queries
//! with a dense fallback, oracle-tested to be bit-identical to the pairwise
//! construction); [`solver::Solver::run_verified`] and
//! [`batch::BatchOrienter::orient_budgets_verified`] bundle solving with
//! engine-backed verification, sharing one spatial index per instance.
//!
//! For whole budget grids or fleets of deployments, [`batch::BatchOrienter`]
//! and [`batch::InstanceBatch`] share MST substrates across every solve and
//! fan the work out over the order-preserving [`parallel::parallel_map`].
//!
//! Deployments under churn go through [`dynamic::DynamicInstance`] and
//! [`dynamic::DynamicSolverSession`]: insert/remove/move edits incrementally
//! maintain the spatial index, the MST, the orientation scheme and the
//! verification verdict, with every layer oracle-tested against the
//! from-scratch pipeline.
//!
//! Deployments large enough to care are **spatially sharded** through
//! [`shard::ShardedInstance`] and [`dynamic::DynamicInstance::new_sharded`]:
//! per-tile kd/MST forests built in parallel and stitched with a cross-tile
//! Borůvka pass that is bit-exact to the global build, so sharding is a pure
//! cost optimization (see [`shard`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod antenna;
pub mod batch;
pub mod bounds;
pub mod dynamic;
pub mod error;
pub mod instance;
pub mod parallel;
pub mod scheme;
pub mod shard;
pub mod solver;
pub mod verify;

pub use antenna::{Antenna, AntennaBudget, SensorAssignment};
pub use batch::{BatchOrienter, InstanceBatch};
pub use dynamic::{BatchOutcome, DynamicInstance, DynamicSolverSession, Edit, EditOutcome};
pub use error::OrientError;
pub use instance::Instance;
pub use scheme::OrientationScheme;
pub use shard::{ShardReport, ShardSpec, ShardedInstance};
pub use solver::{
    Guarantee, OrientationOutcome, Orienter, Registry, SelectionPolicy, Solver, VerifiedOutcome,
};
pub use verify::{
    verify, DigraphStrategy, VerificationEngine, VerificationReport, VerificationSession,
};
