//! The eight Table 1 constructions as [`Orienter`] trait objects.
//!
//! Each type wraps one algorithm module of [`crate::algorithms`] and encodes
//! the preconditions of its Table 1 row in
//! [`applicability`](Orienter::applicability).  Row scoping follows the
//! paper's table:
//!
//! * the zero-spread chain rows apply to any budget with *at least* their
//!   antenna count (spare antennae simply stay unused), so a `k = 4` budget
//!   can also run the `k = 2` and `k = 3` chains as portfolio candidates;
//! * Theorem 3 is registered for `k = 2` budgets only — exactly its Table 1
//!   row.  For `k ≥ 3` the same spread regimes are covered by Theorem 2's
//!   and the chains' rows, which is also what keeps
//!   [`SelectionPolicy::BestGuarantee`](crate::solver::SelectionPolicy)
//!   bit-identical to the legacy dispatcher.
//!
//! All threshold comparisons use [`bounds::SPREAD_EPS`](crate::bounds::SPREAD_EPS).

use crate::algorithms::{chains, hamiltonian, one_antenna, theorem2, theorem3, AlgorithmKind};
use crate::antenna::AntennaBudget;
use crate::bounds::{theorem2_spread_threshold, SPREAD_EPS};
use crate::error::OrientError;
use crate::instance::Instance;
use crate::scheme::OrientationScheme;
use crate::solver::{Guarantee, Orienter};
use antennae_geometry::PI;

/// Theorem 2: Lemma 1 applied at every MST vertex.  Applicable whenever the
/// spread budget reaches `2π(5−k)/5`; always achieves radius `lmax`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Theorem2Orienter;

impl Orienter for Theorem2Orienter {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Theorem2
    }

    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
        if !(1..=5).contains(&budget.k) {
            return None;
        }
        (budget.phi + SPREAD_EPS >= theorem2_spread_threshold(budget.k))
            .then(|| Guarantee::proven(1.0))
    }

    fn orient(
        &self,
        instance: &Instance,
        budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError> {
        theorem2::orient_theorem2(instance, budget.k)
    }
}

/// Theorem 3: the paper's two-antenna construction for `φ₂ ≥ 2π/3`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Theorem3Orienter;

impl Orienter for Theorem3Orienter {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Theorem3
    }

    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
        let threshold = 2.0 * PI / 3.0;
        if budget.k != 2 || budget.phi + SPREAD_EPS < threshold {
            return None;
        }
        // Budgets within SPREAD_EPS below 2π/3 are treated as sitting on the
        // threshold, so the guarantee is always the proven Theorem 3 bound.
        // (Deliberate divergence from the retired dispatcher, which reported
        // *no* guarantee inside that 1e-9 sliver: treating within-eps as
        // at-threshold is exactly the SPREAD_EPS contract, and the
        // construction run under a sliver budget satisfies the threshold
        // bound.)
        let phi = budget.phi.max(threshold);
        let bound =
            theorem3::guaranteed_radius(phi).expect("phi clamped into the Theorem 3 regime");
        Some(Guarantee::proven(bound))
    }

    fn orient(
        &self,
        instance: &Instance,
        budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError> {
        theorem3::orient_two_antennae(instance, budget.phi).map(|o| o.scheme)
    }
}

/// A zero-spread chain construction with a fixed number of beams: the `[14]`
/// row (`k = 2`), Theorem 5 (`k = 3`), Theorem 6 (`k = 4`) or the folklore
/// `k = 5` scheme.  Applicable to any budget with at least that many
/// antennae (spares stay unused).
#[derive(Debug, Clone, Copy)]
pub struct ChainsOrienter {
    beams: usize,
}

impl ChainsOrienter {
    /// Creates the chain orienter with `beams ∈ 2..=5` zero-spread beams per
    /// sensor.
    ///
    /// # Panics
    ///
    /// Panics when `beams` is outside `2..=5` (the rows of Table 1).
    pub fn new(beams: usize) -> Self {
        assert!(
            (2..=5).contains(&beams),
            "chain constructions exist for 2..=5 beams, got {beams}"
        );
        ChainsOrienter { beams }
    }

    /// The number of beams this row uses.
    pub fn beams(&self) -> usize {
        self.beams
    }
}

impl Orienter for ChainsOrienter {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Chains { k: self.beams }
    }

    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
        (budget.k >= self.beams && budget.k <= 5).then(|| {
            Guarantee::proven(
                chains::guaranteed_radius(self.beams)
                    .expect("constructor restricted beams to 2..=5"),
            )
        })
    }

    fn orient(
        &self,
        instance: &Instance,
        _budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError> {
        chains::orient_chains(instance, self.beams)
    }
}

/// The `[4]` baseline row: a single antenna of spread `8π/5` per sensor
/// covering all MST neighbours (radius `lmax`), leaving any spare antennae
/// unused.
///
/// Registered for `k ≥ 2` budgets whose spread reaches `8π/5`.  For `k = 1`
/// the Theorem 2 row *is* the `[4]` construction (Lemma 1 with one antenna),
/// so admitting this orienter there would only duplicate an identical
/// portfolio candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneAntennaWideOrienter;

impl Orienter for OneAntennaWideOrienter {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::OneAntennaWide
    }

    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
        ((2..=5).contains(&budget.k) && budget.phi + SPREAD_EPS >= theorem2_spread_threshold(1))
            .then(|| Guarantee::proven(1.0))
    }

    fn orient(
        &self,
        instance: &Instance,
        budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError> {
        // The applicability guard puts φ in the wide regime; assert the
        // regime rather than trusting two copies of the threshold check, so
        // the module's Hamiltonian fallback can never silently run under
        // this orienter's proven guarantee.
        let outcome = one_antenna::orient_one_antenna(instance, budget.phi)?;
        if outcome.regime != one_antenna::OneAntennaRegime::WideCoverage {
            return Err(OrientError::Internal(format!(
                "one-antenna-wide ran outside the wide regime (φ = {})",
                budget.phi
            )));
        }
        Ok(outcome.scheme)
    }
}

/// The `[14]` baseline row: one zero-spread beam per sensor along a
/// Hamiltonian cycle.  Applicable to every valid budget; its factor-2
/// guarantee is inherited from prior work rather than re-proved here, so it
/// reports a heuristic guarantee (see DESIGN.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct HamiltonianOrienter;

impl Orienter for HamiltonianOrienter {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Hamiltonian
    }

    fn applicability(&self, budget: &AntennaBudget) -> Option<Guarantee> {
        // The paper models budgets of at most five antennae (the degree
        // bound of the MST substrate); larger k is rejected, not clamped.
        (1..=5).contains(&budget.k).then(Guarantee::heuristic)
    }

    fn orient(
        &self,
        instance: &Instance,
        _budget: AntennaBudget,
    ) -> Result<OrientationScheme, OrientError> {
        hamiltonian::orient_hamiltonian(instance).map(|o| o.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antennae_geometry::TAU;

    #[test]
    fn theorem2_applicability_tracks_the_threshold() {
        let o = Theorem2Orienter;
        for k in 1..=5usize {
            let threshold = theorem2_spread_threshold(k);
            assert_eq!(
                o.applicability(&AntennaBudget::new(k, threshold)),
                Some(Guarantee::proven(1.0))
            );
            // Within SPREAD_EPS below the threshold still counts…
            assert!(o
                .applicability(&AntennaBudget::new(k, threshold - SPREAD_EPS / 2.0))
                .is_some());
            // …but clearly below does not (k = 5's threshold is 0).
            if k < 5 {
                assert!(o
                    .applicability(&AntennaBudget::new(k, threshold - 0.01))
                    .is_none());
            }
        }
        assert!(o.applicability(&AntennaBudget::new(0, TAU)).is_none());
        assert!(o.applicability(&AntennaBudget::new(6, TAU)).is_none());
    }

    #[test]
    fn theorem3_applies_to_exactly_its_table1_row() {
        let o = Theorem3Orienter;
        assert!(o.applicability(&AntennaBudget::new(2, PI)).is_some());
        assert!(o
            .applicability(&AntennaBudget::new(2, 2.0 * PI / 3.0))
            .is_some());
        assert!(o.applicability(&AntennaBudget::new(2, 1.0)).is_none());
        // k ≠ 2 budgets are covered by other rows (keeps BestGuarantee
        // identical to the legacy dispatcher).
        assert!(o.applicability(&AntennaBudget::new(3, PI)).is_none());
        assert!(o.applicability(&AntennaBudget::new(1, PI)).is_none());
        // The guarantee is the Theorem 3 bound, snapped to the threshold
        // within SPREAD_EPS.
        let sliver = o
            .applicability(&AntennaBudget::new(2, 2.0 * PI / 3.0 - SPREAD_EPS / 2.0))
            .unwrap();
        assert!((sliver.radius_over_lmax.unwrap() - 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn chains_apply_to_budgets_with_spare_antennae() {
        for beams in 2..=5usize {
            let o = ChainsOrienter::new(beams);
            assert_eq!(o.beams(), beams);
            for k in 1..=5usize {
                let applicable = o.applicability(&AntennaBudget::new(k, 0.0)).is_some();
                assert_eq!(applicable, k >= beams, "beams={beams} k={k}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn chains_constructor_rejects_invalid_beam_counts() {
        ChainsOrienter::new(6);
    }

    #[test]
    fn baselines_cover_their_rows() {
        let wide = OneAntennaWideOrienter;
        assert_eq!(
            wide.applicability(&AntennaBudget::new(2, 8.0 * PI / 5.0)),
            Some(Guarantee::proven(1.0))
        );
        assert!(wide.applicability(&AntennaBudget::new(2, PI)).is_none());
        // More antennae may leave all but one unused…
        assert!(wide.applicability(&AntennaBudget::new(3, TAU)).is_some());
        // …but at k = 1 the Theorem 2 row already *is* this construction, so
        // the orienter steps aside instead of duplicating the candidate.
        assert!(wide.applicability(&AntennaBudget::new(1, TAU)).is_none());

        let ham = HamiltonianOrienter;
        for k in 1..=5usize {
            let g = ham.applicability(&AntennaBudget::new(k, 0.0)).unwrap();
            assert!(!g.is_proven());
        }
        assert!(ham.applicability(&AntennaBudget::new(0, 0.0)).is_none());
    }
}
